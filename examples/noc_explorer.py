#!/usr/bin/env python3
"""Flit-level NoC explorer (Table III's interconnect, stand-alone).

Drives the 4x4 mesh of 3-stage speculative virtual-channel routers with
uniform-random traffic at increasing injection rates and prints the
latency-vs-load curve, the classic NoC characterization.  Also shows
the analytical model's prediction side by side — the calibration that
justifies using the fast model in the consolidation runs.

Run:
    python examples/noc_explorer.py
"""

from repro.analysis import format_table
from repro.interconnect import (
    AnalyticalMesh,
    FlitNetwork,
    MeshTopology,
    Packet,
)
from repro.sim.rng import RngFactory

PACKETS = 300
DATA_FLITS = 5


def run_flit_level(gap, rng):
    net = FlitNetwork(MeshTopology(4, 4))
    time = 0
    for _ in range(PACKETS):
        src = int(rng.integers(16))
        dst = int(rng.integers(16))
        while dst == src:
            dst = int(rng.integers(16))
        net.run(gap)
        time += gap
        net.inject(Packet(src=src, dst=dst, num_flits=DATA_FLITS,
                          inject_time=time))
    net.drain()
    return net.mean_packet_latency


def run_analytical(gap, rng):
    mesh = AnalyticalMesh(MeshTopology(4, 4))
    time, total = 0, 0
    for _ in range(PACKETS):
        src = int(rng.integers(16))
        dst = int(rng.integers(16))
        while dst == src:
            dst = int(rng.integers(16))
        time += gap
        total += mesh.traverse(src, dst, DATA_FLITS, time).latency
    return total / PACKETS


def main() -> None:
    rows = []
    for gap in (64, 32, 16, 8, 4, 2):
        rate = DATA_FLITS / gap  # flits injected per cycle, chip-wide
        flit = run_flit_level(gap, RngFactory(7).stream("noc"))
        analytical = run_analytical(gap, RngFactory(7).stream("noc"))
        rows.append([f"{rate:.2f}", flit, analytical])
        print(f"injection {rate:5.2f} flits/cyc: flit-level "
              f"{flit:6.1f} cyc, analytical {analytical:6.1f} cyc")

    print()
    print(format_table(
        ["Injection (flits/cyc)", "Flit-level latency", "Analytical latency"],
        rows, title="4x4 mesh latency vs load (uniform random, 5-flit "
                    "data packets)", precision=1))
    print()
    print("Latency climbs as the network saturates; the analytical model "
          "tracks the flit-level reference across the operating range "
          "used by the consolidation simulations.")


if __name__ == "__main__":
    main()

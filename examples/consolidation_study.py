#!/usr/bin/env python3
"""Consolidation interference study (the paper's core question).

For each workload, compares:
  * isolation (4 cores active, fully shared 16 MB L2) — the baseline;
  * every Table IV heterogeneous mix containing it, under affinity and
    round robin on shared-4-way caches.

Prints, per (mix, policy), the workload's normalized runtime, miss
rate, and miss latency — the consolidated view of Figures 8-10 — and
finishes with the paper's takeaways checked against the numbers.

Run:
    python examples/consolidation_study.py [workload]
        workload in {tpcw, tpch, specjbb} (default: specjbb)
"""

import os
import sys

from repro import ExperimentSpec, run_experiment
from repro.analysis import format_table
from repro.core.mixes import HETEROGENEOUS_MIXES

REFS = int(os.environ.get("REPRO_REFS", "8000"))


def spec(mix, policy):
    return ExperimentSpec(mix=mix, sharing="shared-4", policy=policy,
                          measured_refs=REFS, warmup_refs=REFS // 2, seed=1)


def mean(values):
    return sum(values) / len(values)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "specjbb"
    mixes = [name for name, mix in sorted(HETEROGENEOUS_MIXES.items())
             if workload in mix.instance_names()]
    if not mixes:
        raise SystemExit(
            f"{workload!r} appears in no heterogeneous mix "
            "(hint: specweb is homogeneous-only, per the paper)")

    print(f"Baseline: {workload} isolated, fully shared 16MB cache ...")
    base = run_experiment(
        ExperimentSpec(mix=f"iso-{workload}", sharing="shared",
                       policy="affinity", measured_refs=REFS,
                       warmup_refs=REFS // 2, seed=1)).vm_metrics[0]

    rows = []
    for mix in mixes:
        partners = " & ".join(
            f"{w}({c})" for w, c in HETEROGENEOUS_MIXES[mix].components
            if w != workload)
        for policy in ("affinity", "rr"):
            print(f"  running {mix} / {policy} ...")
            result = run_experiment(spec(mix, policy))
            vms = result.metrics_for(workload)
            rows.append([
                mix, partners, policy,
                mean([vm.cycles for vm in vms]) / base.cycles,
                mean([vm.miss_rate for vm in vms]) / base.miss_rate,
                mean([vm.mean_miss_latency for vm in vms])
                / base.mean_miss_latency,
            ])

    print()
    print(format_table(
        ["Mix", "Co-runners", "Policy", "Norm. runtime", "Norm. miss rate",
         "Norm. miss latency"],
        rows, title=f"{workload} under consolidation (vs isolation)"))

    aff = [row for row in rows if row[2] == "affinity"]
    rr = [row for row in rows if row[2] == "rr"]
    print()
    print("Takeaways:")
    print(f"  affinity keeps slowdown at {mean([r[3] for r in aff]):.2f}x "
          f"on average; round robin costs {mean([r[3] for r in rr]):.2f}x")
    print(f"  miss-rate inflation: affinity {mean([r[4] for r in aff]):.2f}x,"
          f" round robin {mean([r[4] for r in rr]):.2f}x — cache sharing"
          " across workloads is the interference channel")


if __name__ == "__main__":
    main()

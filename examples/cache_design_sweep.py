#!/usr/bin/env python3
"""Last-level-cache design-space sweep (Section III's continuum).

Sweeps one workload — isolated, then inside a consolidated mix — over
the five sharing degrees, under affinity and round robin.  This is the
private <-> fully-shared trade-off the paper frames: utilization and
sharing versus interference and hotspots.

Run:
    python examples/cache_design_sweep.py [workload] [mix]
        defaults: tpch mix5
"""

import os
import sys

from repro import ExperimentSpec, run_experiment
from repro.analysis import format_table

REFS = int(os.environ.get("REPRO_REFS", "8000"))
SHARINGS = ("private", "shared-2", "shared-4", "shared-8", "shared")


def run(mix, sharing, policy):
    return run_experiment(ExperimentSpec(
        mix=mix, sharing=sharing, policy=policy,
        measured_refs=REFS, warmup_refs=REFS // 2, seed=1))


def mean(values):
    return sum(values) / len(values)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "tpch"
    mix = sys.argv[2] if len(sys.argv) > 2 else "mix5"

    rows = []
    for sharing in SHARINGS:
        for policy in ("affinity", "rr"):
            print(f"running iso-{workload} {sharing}/{policy} ...")
            iso = run(f"iso-{workload}", sharing, policy).vm_metrics[0]
            mixed_cell = "-"
            mix_obj = run(mix, sharing, policy)
            vms = mix_obj.metrics_for(workload)
            if vms:
                mixed_cell = mean([vm.cycles for vm in vms])
            rows.append([sharing, policy, iso.cycles, iso.miss_rate,
                         iso.mean_miss_latency, mixed_cell])

    print()
    print(format_table(
        ["L2 sharing", "Policy", "Isolated cycles", "Isolated miss rate",
         "Isolated miss latency", f"Cycles in {mix}"],
        rows, title=f"Cache design sweep for {workload}"))

    # point at the crossover the paper highlights for TPC-H
    aff = {row[0]: row[2] for row in rows if row[1] == "affinity"}
    best = min(aff, key=aff.get)
    print()
    print(f"Best isolated design point for {workload} under affinity: "
          f"{best} ({aff[best]:.0f} cycles; fully shared = "
          f"{aff['shared']:.0f}).")
    print("Small-footprint, share-heavy workloads keep their performance "
          "down to one-cache-per-workload; large-footprint workloads "
          "need the aggregate capacity of the shared configurations.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's Section VII future-work agenda, executed.

Four mini-studies that the original paper names but leaves open, all
runnable here:

1. **Over-commitment** — more thread contexts than cores, with real
   quantum switching instead of the random-placement proxy.
2. **Dynamic scheduling** — threads migrated at runtime: random churn
   versus an affinity-healing policy.
3. **Performance isolation** — per-VM way quotas in the shared caches
   (the conclusion's proposal).
4. **Phase alignment** — bursty phased workloads slid against each
   other via start-time staggering.

Run:
    python examples/futurework_studies.py
"""

import os

from repro import ExperimentSpec, run_experiment
from repro.analysis import format_table

REFS = int(os.environ.get("REPRO_REFS", "6000"))


def spec(**kw):
    params = dict(mix="mixC", sharing="shared-4", policy="affinity",
                  measured_refs=REFS, warmup_refs=REFS // 2, seed=1)
    params.update(kw)
    return ExperimentSpec(**params)


def mean_cycles(result):
    return sum(vm.cycles for vm in result.vm_metrics) / len(result.vm_metrics)


def mean_missrate(result):
    return sum(vm.miss_rate for vm in result.vm_metrics) / len(result.vm_metrics)


def main() -> None:
    rows = []

    print("1/4 over-commitment ...")
    rows.append(["baseline (dedicated cores)",
                 mean_cycles(run_experiment(spec())),
                 mean_missrate(run_experiment(spec()))])
    packed = run_experiment(spec(slots_per_core=2))
    rows.append(["over-commit 2 threads/core", mean_cycles(packed),
                 mean_missrate(packed)])

    print("2/4 dynamic scheduling ...")
    churn = run_experiment(spec(policy="random", rebind="random",
                                rebind_interval=60_000))
    heal = run_experiment(spec(policy="random", rebind="affinity",
                               rebind_interval=60_000))
    rows.append(["dynamic random churn", mean_cycles(churn),
                 mean_missrate(churn)])
    rows.append(["dynamic affinity healing", mean_cycles(heal),
                 mean_missrate(heal)])

    print("3/4 performance isolation (mix7: SPECjbb + TPC-W) ...")
    free = run_experiment(spec(mix="mix7", policy="rr"))
    fair = run_experiment(spec(mix="mix7", policy="rr", l2_vm_quota=True))
    jbb = lambda r: sum(vm.miss_rate for vm in r.metrics_for("specjbb")) / 3
    rows.append(["mix7 RR, shared LRU (jbb miss rate)", "-", jbb(free)])
    rows.append(["mix7 RR, way quotas (jbb miss rate)", "-", jbb(fair)])

    print("4/4 phase alignment ...")
    aligned = run_experiment(spec(policy="rr", phase_plan="burst"))
    slid = run_experiment(spec(policy="rr", phase_plan="burst",
                               start_stagger=120_000))
    rows.append(["phased, aligned starts", mean_cycles(aligned),
                 mean_missrate(aligned)])
    rows.append(["phased, staggered starts", mean_cycles(slid),
                 mean_missrate(slid)])

    print()
    print(format_table(["Study", "Mean cycles", "Miss rate"], rows,
                       title="Section VII future-work studies (mixC unless "
                             "noted)"))
    print()
    print("Highlights: affinity healing recovers static affinity's "
          "performance under churn; way quotas cap SPECjbb's miss-rate "
          "inflation without a global slowdown; over-commitment costs "
          "throughput roughly in proportion to the packing factor.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: consolidate four server workloads on a 16-core CMP.

Runs Table IV's Mix 5 (2x SPECjbb + 2x TPC-H) on shared-4-way last
level caches under affinity scheduling, then prints the paper's three
per-VM metrics — normalized runtime, L2 miss rate, and average miss
latency — next to each workload's isolated baseline.

Run:
    python examples/quickstart.py
Environment:
    REPRO_REFS  per-thread references (default 8000 here; more = smoother)
"""

import os

from repro import ExperimentSpec, normalize_result, run_experiment
from repro.analysis import format_table

REFS = int(os.environ.get("REPRO_REFS", "8000"))


def main() -> None:
    spec = ExperimentSpec(
        mix="mix5",
        sharing="shared-4",
        policy="affinity",
        measured_refs=REFS,
        warmup_refs=REFS // 2,
        seed=1,
    )
    print(f"Simulating {spec.mix} on {spec.sharing} L2s, "
          f"{spec.policy} scheduling, {REFS} refs/thread ...")
    result = run_experiment(spec)

    rows = []
    for normalized in normalize_result(result):
        vm = normalized.vm
        rows.append([
            f"vm{vm.vm_id}",
            vm.workload,
            vm.cycles,
            normalized.runtime,          # vs isolation w/ 16MB shared
            vm.miss_rate,
            normalized.miss_latency,     # vs isolation w/ affinity 4-LL$
            f"{100 * vm.c2c_fraction:.0f}%",
        ])
    print()
    print(format_table(
        ["VM", "Workload", "Cycles", "Norm. runtime", "L2 miss rate",
         "Norm. miss latency", "c2c share of misses"],
        rows, title="Mix 5 under affinity scheduling"))

    summary = result.chip_summary
    print()
    print(f"Chip: mesh mean latency {summary.mesh_mean_latency:.1f} cyc "
          f"(queueing {summary.mesh_mean_queueing:.1f}), "
          f"{summary.memory_reads} memory reads, "
          f"{summary.upgrades} upgrade transactions, "
          f"directory cache hit rate "
          f"{100 * summary.directory_cache_hit_rate:.1f}%")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scheduling-policy comparison for one mix (Section III-D in action).

Runs a chosen mix under all four hypervisor scheduling policies and
reports performance, miss behaviour, replication, and interconnect
load — showing *why* affinity wins: it trades chip-wide cache capacity
for zero replication and short dirty-transfer paths.

Run:
    python examples/scheduling_comparison.py [mix]   (default: mixC)
"""

import os
import sys

from repro import ExperimentSpec, run_experiment
from repro.analysis import format_table, measure_replication

REFS = int(os.environ.get("REPRO_REFS", "8000"))
POLICIES = ("affinity", "rr-aff", "random", "rr")


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "mixC"
    rows = []
    for policy in POLICIES:
        print(f"running {mix} / {policy} ...")
        result = run_experiment(ExperimentSpec(
            mix=mix, sharing="shared-4", policy=policy,
            measured_refs=REFS, warmup_refs=REFS // 2, seed=1))
        vms = result.vm_metrics
        replication = measure_replication(result.residency)
        summary = result.chip_summary
        rows.append([
            policy,
            sum(vm.cycles for vm in vms) / len(vms),
            sum(vm.miss_rate for vm in vms) / len(vms),
            sum(vm.mean_miss_latency for vm in vms) / len(vms),
            f"{100 * replication.replicated_fraction:.1f}%",
            summary.mesh_mean_latency,
            summary.intra_domain_transfers,
        ])

    print()
    print(format_table(
        ["Policy", "Mean cycles", "Miss rate", "Miss latency",
         "LLC replication", "Mesh latency", "Intra-domain transfers"],
        rows, title=f"Scheduling policies on {mix} (shared-4-way L2s)"))

    best = min(rows, key=lambda row: row[1])
    worst = max(rows, key=lambda row: row[1])
    print()
    print(f"Best policy: {best[0]}; worst: {worst[0]} "
          f"({worst[1] / best[1]:.2f}x slower).")
    print("Affinity eliminates replication by packing each workload into "
          "one cache; round robin buys capacity at the price of "
          "replicating every read-shared line per cache.")


if __name__ == "__main__":
    main()

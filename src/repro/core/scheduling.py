"""Thread-to-core scheduling policies (Section III-D).

The hypervisor must map each workload's virtual processors onto
physical cores; whenever cores share an L2, that mapping also decides
which threads share a cache.  The paper studies four policies:

* **round robin** — each thread of a workload goes to a *different*
  shared cache, balancing load and maximizing the cache capacity
  visible to the workload (at the cost of replicating its read-shared
  data in every cache it touches);
* **affinity** — all threads of a workload are packed into as few
  caches as possible, maximizing sharing and minimizing replication
  (at the cost of capacity and possible hotspots);
* **round-robin-affinity hybrid** — round robin over caches but with
  at least two threads of the same workload per cache;
* **random** — the assignment an over-committed virtualized system
  drifts into after enough context switches.

A policy converts ``(workloads, placement)`` into per-VM core lists;
it is purely combinatorial and independent of the timing model, which
is what the unit tests exploit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import SchedulingError
from ..machine.placement import DomainPlacement

__all__ = [
    "SchedulingPolicy",
    "RoundRobinScheduler",
    "AffinityScheduler",
    "RrAffinityScheduler",
    "RandomScheduler",
    "make_scheduler",
    "assign_overcommitted",
    "SCHEDULER_NAMES",
]


class SchedulingPolicy:
    """Base class: assign workload threads to physical cores."""

    #: canonical short name, e.g. ``"rr"``
    name: str = ""

    def assign(
        self,
        thread_counts: Sequence[int],
        placement: DomainPlacement,
        rng: Optional[np.random.Generator] = None,
    ) -> List[List[int]]:
        """Produce ``cores[vm][thread] -> core_id``.

        Parameters
        ----------
        thread_counts:
            Threads per workload instance, in VM order.
        placement:
            Domain layout of the target chip.
        rng:
            Random stream; only the random policy uses it.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------

    @staticmethod
    def _check_capacity(thread_counts: Sequence[int], placement: DomainPlacement) -> None:
        total = sum(thread_counts)
        cores = sum(len(d) for d in placement.domains)
        if total > cores:
            raise SchedulingError(
                f"{total} threads do not fit on {cores} cores"
            )
        if any(count <= 0 for count in thread_counts):
            raise SchedulingError("every instance needs at least one thread")

    @staticmethod
    def _free_lists(placement: DomainPlacement) -> List[List[int]]:
        """Mutable per-domain free-core lists, in core-id order."""
        return [sorted(domain) for domain in placement.domains]


class RoundRobinScheduler(SchedulingPolicy):
    """Spread every workload's threads across distinct caches.

    Threads are dealt to domains cyclically; each successive thread of
    a workload lands in the next domain with a free core, so with four
    4-thread workloads on four shared-4-way caches every cache ends up
    with one thread of each workload (Figure 1, left)."""

    name = "rr"

    def assign(self, thread_counts, placement, rng=None):
        self._check_capacity(thread_counts, placement)
        free = self._free_lists(placement)
        num_domains = len(free)
        cursor = 0
        result: List[List[int]] = []
        for count in thread_counts:
            cores: List[int] = []
            for _ in range(count):
                for probe in range(num_domains):
                    domain = (cursor + probe) % num_domains
                    if free[domain]:
                        cores.append(free[domain].pop(0))
                        cursor = domain + 1
                        break
                else:
                    raise SchedulingError("ran out of cores mid-assignment")
            result.append(cores)
        return result


class AffinityScheduler(SchedulingPolicy):
    """Pack each workload into as few caches as possible.

    Domains are consumed in id order, so with four 4-thread workloads
    on shared-4-way caches each workload owns one cache outright
    (Figure 1, right)."""

    name = "affinity"

    def assign(self, thread_counts, placement, rng=None):
        self._check_capacity(thread_counts, placement)
        free = self._free_lists(placement)
        result: List[List[int]] = []
        for count in thread_counts:
            cores: List[int] = []
            remaining = count
            # prefer the domain with the most free cores (fullest fit),
            # breaking ties toward lower ids for determinism
            while remaining > 0:
                best = max(
                    range(len(free)),
                    key=lambda d: (min(len(free[d]), remaining), -d),
                )
                if not free[best]:
                    raise SchedulingError("ran out of cores mid-assignment")
                take = min(remaining, len(free[best]))
                for _ in range(take):
                    cores.append(free[best].pop(0))
                remaining -= take
            result.append(cores)
        return result


class RrAffinityScheduler(SchedulingPolicy):
    """Hybrid: round robin over caches, two threads at a time.

    Each workload's threads are grouped in pairs and the pairs dealt
    round-robin, so at least two threads of the workload share each
    cache they use (Section III-D)."""

    name = "rr-aff"

    #: threads placed together per step
    group = 2

    def assign(self, thread_counts, placement, rng=None):
        self._check_capacity(thread_counts, placement)
        free = self._free_lists(placement)
        num_domains = len(free)
        cursor = 0
        result: List[List[int]] = []
        for count in thread_counts:
            cores: List[int] = []
            remaining = count
            while remaining > 0:
                take = min(self.group, remaining)
                placed = False
                for probe in range(num_domains):
                    domain = (cursor + probe) % num_domains
                    if len(free[domain]) >= take:
                        for _ in range(take):
                            cores.append(free[domain].pop(0))
                        cursor = domain + 1
                        placed = True
                        break
                if not placed:
                    # no domain can take the whole group; fall back to
                    # single placement to finish the assignment
                    for probe in range(num_domains):
                        domain = (cursor + probe) % num_domains
                        if free[domain]:
                            cores.append(free[domain].pop(0))
                            cursor = domain + 1
                            placed = True
                            take = 1
                            break
                if not placed:
                    raise SchedulingError("ran out of cores mid-assignment")
                remaining -= take
            result.append(cores)
        return result


class RandomScheduler(SchedulingPolicy):
    """Uniform random placement (the over-committed-VM drift)."""

    name = "random"

    def assign(self, thread_counts, placement, rng=None):
        self._check_capacity(thread_counts, placement)
        if rng is None:
            raise SchedulingError("the random policy needs an rng")
        all_cores = sorted(
            core for domain in placement.domains for core in domain
        )
        order = list(rng.permutation(len(all_cores)))
        result: List[List[int]] = []
        next_slot = 0
        for count in thread_counts:
            cores = [all_cores[order[next_slot + i]] for i in range(count)]
            next_slot += count
            result.append(cores)
        return result


_SCHEDULERS: Dict[str, type] = {
    cls.name: cls
    for cls in (
        RoundRobinScheduler,
        AffinityScheduler,
        RrAffinityScheduler,
        RandomScheduler,
    )
}

#: aliases accepted by :func:`make_scheduler`
_ALIASES = {
    "round-robin": "rr",
    "roundrobin": "rr",
    "aff": "affinity",
    "aff-rr": "rr-aff",
    "rr-affinity": "rr-aff",
    "hybrid": "rr-aff",
    "rand": "random",
}

SCHEDULER_NAMES = tuple(sorted(_SCHEDULERS))
"""Canonical policy names: ``('affinity', 'random', 'rr', 'rr-aff')``."""


def make_scheduler(name: str) -> SchedulingPolicy:
    """Construct a policy by (possibly aliased) name."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return _SCHEDULERS[key]()
    except KeyError:
        raise SchedulingError(
            f"unknown scheduling policy {name!r}; "
            f"choose from {sorted(_SCHEDULERS) + sorted(_ALIASES)}"
        ) from None


class _ExpandedPlacement:
    """Duck-typed placement whose cores have multiple thread slots.

    Used for over-committed assignment (Section VII): each physical
    core appears ``slots_per_core`` times, so any policy can place more
    threads than cores while keeping its cache-locality logic intact.
    """

    def __init__(self, placement: DomainPlacement, slots_per_core: int):
        self.domains = [
            sorted(domain * slots_per_core) for domain in placement.domains
        ]
        self.domain_of = placement.domain_of


def assign_overcommitted(
    policy: str,
    thread_counts: Sequence[int],
    placement: DomainPlacement,
    slots_per_core: int = 2,
    rng: Optional[np.random.Generator] = None,
) -> List[List[int]]:
    """Assign threads with ``slots_per_core`` thread contexts per core.

    Returns per-VM core lists in which cores may repeat (up to the slot
    limit); pair with :class:`repro.sim.overcommit.OvercommitEngine`.
    """
    if slots_per_core <= 0:
        raise SchedulingError("slots_per_core must be positive")
    expanded = _ExpandedPlacement(placement, slots_per_core)
    return make_scheduler(policy).assign(thread_counts, expanded, rng=rng)

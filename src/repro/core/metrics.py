"""Per-VM metrics (Section V's three measurements).

The paper reports, per virtual machine: normalized runtime (cycle
count), the miss rate *seen by the VM* at the last level cache, and the
average latency of misses in the last private level.  :class:`VMMetrics`
aggregates a VM's thread statistics into exactly those quantities;
normalization against isolation baselines happens in
:mod:`repro.core.isolation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..sim.engine import ThreadStats
from ..sim.records import HitLevel

__all__ = ["VMMetrics", "aggregate_by_workload"]


@dataclass(frozen=True)
class VMMetrics:
    """Aggregated measurements of one virtual machine."""

    vm_id: int
    workload: str
    cycles: int
    refs: int
    reads: int
    writes: int
    instructions: int
    l1_misses: int
    l2_misses: int
    l2_hits: int
    l2_peer_transfers: int
    c2c_clean: int
    c2c_dirty: int
    memory_fetches: int
    miss_latency_cycles: int
    latency_cycles: int
    cache_cycles: int
    network_cycles: int
    directory_cycles: int
    memory_cycles: int

    @classmethod
    def from_threads(
        cls,
        vm_id: int,
        workload: str,
        threads: List[ThreadStats],
        completion_time: int,
    ) -> "VMMetrics":
        """Fold a VM's thread stats into one record."""
        counts = {level: 0 for level in HitLevel}
        for stats in threads:
            for level, count in stats.level_counts.items():
                counts[level] += count
        # Derive the miss totals from the folded counts rather than
        # re-walking every thread's level_counts through the per-thread
        # properties: one pass over the data, and the miss fields stay
        # consistent with the hit-level fields below by construction.
        l1_misses = sum(
            count for level, count in counts.items() if level.is_l1_miss
        )
        l2_misses = sum(
            count for level, count in counts.items() if level.is_l2_miss
        )
        refs = sum(s.refs for s in threads)
        return cls(
            vm_id=vm_id,
            workload=workload,
            cycles=completion_time,
            refs=refs,
            reads=sum(s.reads for s in threads),
            writes=sum(s.writes for s in threads),
            instructions=refs + sum(s.think_cycles for s in threads),
            l1_misses=l1_misses,
            l2_misses=l2_misses,
            l2_hits=counts[HitLevel.L2],
            l2_peer_transfers=counts[HitLevel.L2_PEER],
            c2c_clean=counts[HitLevel.C2C_CLEAN],
            c2c_dirty=counts[HitLevel.C2C_DIRTY],
            memory_fetches=counts[HitLevel.MEMORY],
            miss_latency_cycles=sum(s.miss_latency_cycles for s in threads),
            latency_cycles=sum(s.latency_cycles for s in threads),
            cache_cycles=sum(s.cache_cycles for s in threads),
            network_cycles=sum(s.network_cycles for s in threads),
            directory_cycles=sum(s.directory_cycles for s in threads),
            memory_cycles=sum(s.memory_cycles for s in threads),
        )

    # ------------------------------------------------------------------
    # the paper's metrics
    # ------------------------------------------------------------------

    @property
    def l2_accesses(self) -> int:
        """References reaching the last level cache (= L1 misses)."""
        return self.l1_misses

    @property
    def miss_rate(self) -> float:
        """L2 misses seen by the VM, per L2 access (Section V)."""
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    @property
    def mpki(self) -> float:
        """L2 misses per thousand instructions."""
        return 1000.0 * self.l2_misses / self.instructions if self.instructions else 0.0

    @property
    def mean_miss_latency(self) -> float:
        """Average cycles to satisfy an L1 miss (the paper's
        miss-latency metric, including c2c, L2, and memory legs)."""
        return (
            self.miss_latency_cycles / self.l1_misses if self.l1_misses else 0.0
        )

    @property
    def c2c_transfers(self) -> int:
        return self.c2c_clean + self.c2c_dirty

    @property
    def c2c_fraction(self) -> float:
        """Fraction of L2 misses served by another on-chip cache
        (Table II's 'percent of accesses resulting in a c2c transfer')."""
        return self.c2c_transfers / self.l2_misses if self.l2_misses else 0.0

    @property
    def c2c_clean_fraction(self) -> float:
        return self.c2c_clean / self.c2c_transfers if self.c2c_transfers else 0.0

    @property
    def c2c_dirty_fraction(self) -> float:
        return self.c2c_dirty / self.c2c_transfers if self.c2c_transfers else 0.0

    @property
    def mean_network_per_miss(self) -> float:
        """Average interconnect cycles per L1 miss."""
        return self.network_cycles / self.l1_misses if self.l1_misses else 0.0


def aggregate_by_workload(metrics: List[VMMetrics]) -> Dict[str, List[VMMetrics]]:
    """Group VM metrics by workload name, preserving VM order."""
    grouped: Dict[str, List[VMMetrics]] = {}
    for vm in metrics:
        grouped.setdefault(vm.workload, []).append(vm)
    return grouped

"""Statistical simulation per Alameldeen & Wood (HPCA 2003).

Multithreaded runs are non-deterministic: tiny timing perturbations
change thread interleavings and can flip conclusions drawn from single
runs.  The paper adopts the statistical-simulation remedy — run each
configuration several times with perturbed initial conditions and
compare *distributions*.  Here the perturbation is the experiment seed
(which reseeds every workload generator and the random scheduler), and
:func:`replicate` reports mean, standard deviation, and a confidence
interval for any scalar extracted from a run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, List, Sequence

from ..errors import ConfigurationError
from .experiment import ExperimentResult, ExperimentSpec, run_experiment

__all__ = ["ReplicationSummary", "replicate", "seeds_for"]

#: two-sided Student-t 97.5% quantiles for small sample sizes
#: (index = degrees of freedom); falls back to the normal 1.96.
_T_975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
}


@dataclass(frozen=True)
class ReplicationSummary:
    """Mean and spread of one metric across replicated runs."""

    samples: tuple

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / self.n

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1)."""
        if self.n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((x - mu) ** 2 for x in self.samples) / (self.n - 1)
        )

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the 95% confidence interval on the mean."""
        if self.n < 2:
            return 0.0
        t = _T_975.get(self.n - 1, 1.96)
        return t * self.std / math.sqrt(self.n)

    @property
    def ci95(self) -> tuple:
        h = self.ci95_halfwidth
        return (self.mean - h, self.mean + h)

    @property
    def cov(self) -> float:
        """Coefficient of variation (std / mean)."""
        mu = self.mean
        return self.std / mu if mu else 0.0

    def overlaps(self, other: "ReplicationSummary") -> bool:
        """Whether the two 95% CIs overlap (a conservative
        'statistically indistinguishable' check)."""
        lo_a, hi_a = self.ci95
        lo_b, hi_b = other.ci95
        return lo_a <= hi_b and lo_b <= hi_a


def seeds_for(base_seed: int, n: int) -> List[int]:
    """Deterministic distinct seeds derived from a base seed."""
    if n <= 0:
        raise ConfigurationError("need at least one replication")
    return [base_seed + 1000003 * i for i in range(n)]


def replicate(
    spec: ExperimentSpec,
    extract: Callable[[ExperimentResult], float],
    n: int = 5,
    seeds: Sequence[int] = (),
) -> ReplicationSummary:
    """Run ``spec`` under ``n`` perturbed seeds and summarize a metric.

    Parameters
    ----------
    spec:
        Base experiment (its seed seeds the sequence).
    extract:
        Scalar metric puller, e.g.
        ``lambda r: r.vm_metrics[0].mean_miss_latency``.
    n:
        Number of replications when ``seeds`` is not given.
    seeds:
        Explicit seed list overriding ``n``.
    """
    spec = spec.normalized()
    chosen = list(seeds) if seeds else seeds_for(spec.seed, n)
    samples = []
    for seed in chosen:
        result = run_experiment(replace(spec, seed=seed))
        samples.append(float(extract(result)))
    return ReplicationSummary(samples=tuple(samples))

"""Workload mixes (Table IV).

The paper fills the 16-core machine with four 4-thread workload
instances — never over-committed — in nine heterogeneous and four
homogeneous combinations.  SPECweb only appears in its homogeneous mix
(Mix D) because of a workload-driver limitation the paper reports; we
keep the same experiment matrix for fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from ..workloads.library import get_profile
from ..workloads.profile import WorkloadProfile

__all__ = [
    "Mix",
    "MIXES",
    "HETEROGENEOUS_MIXES",
    "HOMOGENEOUS_MIXES",
    "get_mix",
    "isolated_mix",
]


@dataclass(frozen=True)
class Mix:
    """A consolidated workload combination.

    Attributes
    ----------
    name:
        Table IV's label (``"mix1"`` ... ``"mix9"``, ``"mixA"`` ...
        ``"mixD"``) or ``"iso-<workload>"`` for isolation runs.
    components:
        ``(workload_name, instance_count)`` pairs.
    """

    name: str
    components: Tuple[Tuple[str, int], ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigurationError("a mix needs at least one component")
        for workload, count in self.components:
            if count <= 0:
                raise ConfigurationError(
                    f"component {workload!r} has non-positive count {count}"
                )
            get_profile(workload)  # validates the name

    @property
    def is_homogeneous(self) -> bool:
        return len(self.components) == 1

    @property
    def num_instances(self) -> int:
        return sum(count for _, count in self.components)

    def instance_names(self) -> List[str]:
        """Workload name of every instance, expanded in VM order."""
        names: List[str] = []
        for workload, count in self.components:
            names.extend([workload] * count)
        return names

    def profiles(self) -> List[WorkloadProfile]:
        """Profiles of every instance, expanded in VM order."""
        return [get_profile(name) for name in self.instance_names()]

    def describe(self) -> str:
        """Table IV's notation, e.g. ``"TPC-W (3) & TPC-H (1)"``."""
        pretty = {
            "tpcw": "TPC-W",
            "tpch": "TPC-H",
            "specjbb": "SPECjbb",
            "specweb": "SPECweb",
        }
        return " & ".join(
            f"{pretty.get(w, w)} ({count})" for w, count in self.components
        )


HETEROGENEOUS_MIXES: Dict[str, Mix] = {
    "mix1": Mix("mix1", (("tpcw", 3), ("tpch", 1))),
    "mix2": Mix("mix2", (("tpcw", 2), ("tpch", 2))),
    "mix3": Mix("mix3", (("tpcw", 1), ("tpch", 3))),
    "mix4": Mix("mix4", (("specjbb", 3), ("tpch", 1))),
    "mix5": Mix("mix5", (("specjbb", 2), ("tpch", 2))),
    "mix6": Mix("mix6", (("specjbb", 1), ("tpch", 3))),
    "mix7": Mix("mix7", (("specjbb", 3), ("tpcw", 1))),
    "mix8": Mix("mix8", (("specjbb", 2), ("tpcw", 2))),
    "mix9": Mix("mix9", (("specjbb", 1), ("tpcw", 3))),
}
"""Table IV's heterogeneous mixes 1-9."""

HOMOGENEOUS_MIXES: Dict[str, Mix] = {
    "mixA": Mix("mixA", (("tpcw", 4),)),
    "mixB": Mix("mixB", (("tpch", 4),)),
    "mixC": Mix("mixC", (("specjbb", 4),)),
    "mixD": Mix("mixD", (("specweb", 4),)),
}
"""Table IV's homogeneous mixes A-D."""

MIXES: Dict[str, Mix] = {**HETEROGENEOUS_MIXES, **HOMOGENEOUS_MIXES}
"""All of Table IV, keyed by mix name."""


_CUSTOM_MIXES: Dict[str, Mix] = {}


def register_mix(mix: Mix, overwrite: bool = False) -> Mix:
    """Register a user-defined mix so experiment specs can name it.

    Table IV names cannot be shadowed.  Registration is how the
    future-work studies (bigger machines, different instance counts)
    define their combinations without touching the paper's matrix.
    """
    key = mix.name.lower()
    if key in {k.lower() for k in MIXES}:
        raise ConfigurationError(
            f"mix name {mix.name!r} collides with a Table IV mix"
        )
    if not overwrite and key in _CUSTOM_MIXES:
        raise ConfigurationError(
            f"custom mix {mix.name!r} already registered "
            "(pass overwrite=True to replace it)"
        )
    _CUSTOM_MIXES[key] = mix
    return mix


def get_mix(name: str) -> Mix:
    """Look up a Table IV or registered custom mix (case-insensitive)."""
    key = name.strip().lower()
    lowered = {k.lower(): k for k in MIXES}
    if key in lowered:
        return MIXES[lowered[key]]
    if key in _CUSTOM_MIXES:
        return _CUSTOM_MIXES[key]
    raise ConfigurationError(
        f"unknown mix {name!r}; available: "
        f"{sorted(MIXES) + sorted(_CUSTOM_MIXES)}"
    )


def isolated_mix(workload: str) -> Mix:
    """A single-instance mix for isolation runs (Section V-A)."""
    get_profile(workload)
    return Mix(f"iso-{workload}", ((workload, 1),))

"""Isolation baselines and normalization (Section V).

Every consolidated measurement in the paper is *relative*: cycle counts
are normalized to "a single workload instance run in isolation with
four cores and 16 MB of fully shared last level cache"; homogeneous-mix
miss latencies are normalized to isolation with affinity scheduling;
Figures 10 and 11 normalize to isolation with affinity and a
shared-4-way cache.  This module provides those baselines (memoized via
the experiment cache) and normalization helpers.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from .experiment import ExperimentResult, ExperimentSpec, run_experiment
from .metrics import VMMetrics

__all__ = [
    "run_isolated",
    "isolation_spec",
    "normalized_runtime",
    "normalized_miss_rate",
    "normalized_miss_latency",
    "NormalizedVM",
    "normalize_result",
]


def isolation_spec(
    workload: str,
    sharing: str = "shared",
    policy: str = "affinity",
    template: Optional[ExperimentSpec] = None,
) -> ExperimentSpec:
    """Spec of an isolation run, inheriting run-length/seed/scale from
    ``template`` (typically the consolidated spec being normalized).

    QoS fields are always cleared: a baseline is by definition an
    uncontrolled single-VM run (and the ``target-slowdown`` controller
    fetches these baselines itself, so inheriting ``qos_policy`` would
    recurse).  Scheduling, churn, and heterogeneity fields are cleared
    for the same reason: the baseline is the workload alone on the
    paper's homogeneous, symmetric machine."""
    if template is None:
        return ExperimentSpec(mix=f"iso-{workload}", sharing=sharing, policy=policy)
    return replace(
        template, mix=f"iso-{workload}", sharing=sharing, policy=policy,
        qos_policy="", qos_target=0.0,
        sched_policy="", vm_schedule="", scenario="", core_speeds="",
        l2_asym="",
    )


def run_isolated(
    workload: str,
    sharing: str = "shared",
    policy: str = "affinity",
    template: Optional[ExperimentSpec] = None,
) -> ExperimentResult:
    """Run (or fetch the memoized) isolation experiment."""
    return run_experiment(isolation_spec(workload, sharing, policy, template))


def _baseline_vm(
    workload: str,
    sharing: str,
    policy: str,
    template: Optional[ExperimentSpec],
) -> VMMetrics:
    result = run_isolated(workload, sharing=sharing, policy=policy, template=template)
    return result.vm_metrics[0]


def normalized_runtime(
    vm: VMMetrics,
    template: Optional[ExperimentSpec] = None,
    sharing: str = "shared",
    policy: str = "affinity",
) -> float:
    """Cycle count relative to the workload's isolation run.

    The default baseline is the paper's: isolation with the fully
    shared 16 MB cache.
    """
    base = _baseline_vm(vm.workload, sharing, policy, template)
    return vm.cycles / base.cycles if base.cycles else float("inf")


def normalized_miss_rate(
    vm: VMMetrics,
    template: Optional[ExperimentSpec] = None,
    sharing: str = "shared",
    policy: str = "affinity",
) -> float:
    """Per-VM L2 miss rate relative to the isolation run."""
    base = _baseline_vm(vm.workload, sharing, policy, template)
    return vm.miss_rate / base.miss_rate if base.miss_rate else float("inf")


def normalized_miss_latency(
    vm: VMMetrics,
    template: Optional[ExperimentSpec] = None,
    sharing: str = "shared-4",
    policy: str = "affinity",
) -> float:
    """Mean miss latency relative to isolation.

    The paper's miss-latency figures normalize against affinity
    scheduling with a shared-4-way cache, hence the default.
    """
    base = _baseline_vm(vm.workload, sharing, policy, template)
    if not base.mean_miss_latency:
        return float("inf")
    return vm.mean_miss_latency / base.mean_miss_latency


class NormalizedVM:
    """A VM's metrics with the paper's normalizations applied lazily."""

    def __init__(self, vm: VMMetrics, template: ExperimentSpec):
        self.vm = vm
        self.template = template

    @property
    def workload(self) -> str:
        return self.vm.workload

    @property
    def runtime(self) -> float:
        return normalized_runtime(self.vm, self.template)

    @property
    def miss_rate(self) -> float:
        return normalized_miss_rate(self.vm, self.template)

    @property
    def miss_latency(self) -> float:
        return normalized_miss_latency(self.vm, self.template)


def normalize_result(result: ExperimentResult) -> List[NormalizedVM]:
    """Wrap every VM of a run with its normalization context."""
    return [NormalizedVM(vm, result.spec) for vm in result.vm_metrics]

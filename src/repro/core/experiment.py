"""Experiment specification and runner — the library's main entry point.

One :class:`ExperimentSpec` names everything the paper varies: the
workload mix (Table IV), the L2 sharing degree (Section III), the
scheduling policy (Section III-D), plus seed and run length.
:func:`run_experiment` builds the machine, launches the hypervisor,
drives the engine, and returns an :class:`ExperimentResult` with the
paper's three per-VM metrics and end-of-run cache snapshots.

Scaled simulation
-----------------
``scale`` shrinks every cache capacity *and* every workload footprint
by the same factor (default 1/16).  The paper's phenomena — capacity
pressure, replication, sharing, interference — depend on the ratio of
footprint to capacity, which scaling preserves, while letting a run
reach steady state within a few tens of thousands of references per
thread.  ``scale=1.0`` gives the full-size machine of Table III.

Environment knobs (removed)
---------------------------
The deprecated ``REPRO_REFS`` / ``REPRO_SEED`` environment knobs have
been retired: a set variable now raises
:class:`~repro.errors.ConfigurationError` from :func:`resolve_defaults`
instead of silently steering defaults.  Set
``ExperimentSpec.measured_refs`` / ``ExperimentSpec.seed`` explicitly.

Engine selection
----------------
``ExperimentSpec.engine_mode`` selects the execution kernel through
:func:`repro.sim.factory.make_engine`: ``"reference"`` (the
event-driven engines, the default), ``"batched"`` (the epoch-folded
fast kernel, see ``docs/engines.md``), or ``"auto"`` (batched whenever
the run shape allows it).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set

from ..errors import ConfigurationError
from ..machine.chip import Chip
from ..machine.config import (
    MachineConfig,
    SharingDegree,
    parse_core_speeds,
    parse_domain_assoc,
)
from ..sim.factory import EngineRequest, make_engine, resolve_mode
from ..sim.rng import RngFactory
from ..vm.hypervisor import Hypervisor
from .metrics import VMMetrics
from .mixes import Mix, get_mix, isolated_mix
from .scheduling import assign_overcommitted, make_scheduler

__all__ = [
    "DEFAULT_SCALE",
    "DEFAULT_MEASURED_REFS",
    "DEFAULT_SEED",
    "ExperimentSpec",
    "ChipSummary",
    "ExperimentResult",
    "resolve_defaults",
    "resolve_mix",
    "run_experiment",
    "clear_result_cache",
]

DEFAULT_SCALE = 1.0 / 16.0
"""Default capacity/footprint scale factor (see the module docstring)."""

DEFAULT_MEASURED_REFS = 24000
"""Built-in default for ``measured_refs`` when the spec leaves it
unset."""

DEFAULT_SEED = 1
"""Built-in default experiment seed."""


def _env_default(var: str, fallback: int, field_name: str) -> int:
    """Resolve one defaulted field, rejecting the removed env path."""
    if os.environ.get(var) is not None:
        raise ConfigurationError(
            f"the {var} environment variable has been removed; set "
            f"ExperimentSpec.{field_name} explicitly (it previously "
            f"supplied the default for defaulted specs)"
        )
    return fallback


def default_measured_refs() -> int:
    """Built-in per-thread measured references (24000).

    Raises :class:`~repro.errors.ConfigurationError` if the removed
    ``REPRO_REFS`` environment knob is set.
    """
    return _env_default("REPRO_REFS", DEFAULT_MEASURED_REFS, "measured_refs")


def default_seed() -> int:
    """Built-in default experiment seed (1).

    Raises :class:`~repro.errors.ConfigurationError` if the removed
    ``REPRO_SEED`` environment knob is set.
    """
    return _env_default("REPRO_SEED", DEFAULT_SEED, "seed")


@dataclass(frozen=True)
class ExperimentSpec:
    """One simulation's complete description.

    Attributes
    ----------
    mix:
        A Table IV mix name (``"mix1"``..``"mix9"``, ``"mixA"``..
        ``"mixD"``) or ``"iso-<workload>"`` for an isolation run.
    sharing:
        ``"private"``, ``"shared-2"``, ``"shared-4"``, ``"shared-8"``,
        or ``"shared"``.
    policy:
        ``"rr"``, ``"affinity"``, ``"rr-aff"``, or ``"random"``.
    seed:
        Experiment seed; 0 means "use the environment default".
    measured_refs, warmup_refs:
        Per-thread measurement window; ``None`` means environment /
        derived defaults (warmup defaults to half the measured count).
    scale:
        Capacity/footprint scale factor.
    l2_replacement:
        L2 replacement policy (``"lru"`` default; ``"random"`` and
        ``"fifo"`` for the ablation benches).
    slots_per_core:
        Thread contexts per core.  1 reproduces the paper (never
        over-committed); >1 enables the Section VII over-commit study —
        cores time-multiplex their run queues with a reference quantum
        and context-switch penalty.
    start_stagger:
        Per-VM start-time stagger in cycles (VM ``i`` starts at
        ``i * start_stagger``); the paper's workload-start-time
        methodological variable.
    num_cores:
        Machine size; 16 is the paper's chip, larger squares (e.g. 64)
        serve the scaling study of Section VII.
    l2_vm_quota:
        Enable per-VM way-quota partitioning of shared L2 domains —
        the performance-isolation mechanism the paper's conclusion
        argues for.  Each domain's ways are split equally among the
        VMs scheduled onto it.
    qos_policy:
        Dynamic cache-QoS controller (see :mod:`repro.qos`):
        ``"static-equal"``, ``"missrate-prop"``, ``"ucp"``, or
        ``"target-slowdown"``.  Empty (default) disables the QoS layer
        entirely.  Mutually exclusive with ``l2_vm_quota`` — both claim
        ownership of the way quotas.
    qos_target:
        Per-VM slowdown ceiling for the ``target-slowdown`` feedback
        controller (e.g. ``1.3`` = at most 30% slower than isolation);
        ignored by the other policies.
    qos_epoch:
        Control period in simulated cycles between QoS decisions.
    phase_plan:
        Name of a registered workload phase plan (see
        :mod:`repro.workloads.phases`); empty = steady behaviour.
    rebind, rebind_interval:
        Dynamic thread migration: ``"random"`` (churn) or
        ``"affinity"`` (healing), rebalanced every
        ``rebind_interval`` cycles.  Empty = static binding (the
        paper's methodology).
    dir_cache_entries:
        Per-tile directory-cache capacity override; 0 = the machine
        default (16K entries).
    sched_policy:
        Adaptive scheduling policy (see :mod:`repro.sched`):
        ``"static"`` (the no-op baseline, byte-identical to no
        scheduler), ``"contention"``, ``"adaptive"``, or ``"hetero"``.
        Empty (default) disables the scheduling layer entirely.
        Mutually exclusive with ``rebind`` — both migrate threads.
    sched_epoch:
        Control period in simulated cycles between scheduling
        decisions.
    core_speeds:
        Per-core relative speed classes as a spec string (e.g.
        ``"1.0x8,0.5x8"``: eight fast cores, eight at half speed);
        empty = homogeneous (the paper's machine).  Heterogeneous runs
        stay on the reference engines.
    l2_asym:
        Asymmetric L2 domains as per-domain associativities (e.g.
        ``"16x2,8x2"`` at shared-4: two 16-way and two 8-way domains);
        empty = the uniform Table III geometry.  Incompatible with the
        way-quota owners (``l2_vm_quota`` / ``qos_policy``), which
        assume uniform domain associativity.
    vm_schedule:
        Per-VM arrival/departure times, comma-separated
        ``start[:stop]`` cycles (e.g. ``"0,0:120000,40000"``): VM
        churn for the scheduling layer.  Empty = every VM runs start
        to finish (the paper's methodology).  Requires single-slot,
        statically-bound runs and replaces ``start_stagger``.
    scenario:
        Name of a time-varying consolidation scenario (see
        :mod:`repro.scenarios`).  The scenario supplies the roster
        (``mix`` must be its ``scn-<name>`` mix), per-VM phase plans,
        arrival/departure churn, scripted phase switches, and a load
        curve actuated by a
        :class:`~repro.scenarios.hook.ScenarioHook` at the scenario's
        epoch.  Empty = a static run (the paper's methodology).
        Mutually exclusive with ``phase_plan``, ``vm_schedule``,
        ``start_stagger``, and ``rebind`` — the scenario owns all of
        those axes; composes with ``qos_policy`` and ``sched_policy``.
    engine_mode:
        Execution kernel (see :mod:`repro.sim.factory`):
        ``"reference"`` (event-driven, the default), ``"batched"``
        (epoch-folded fast kernel), or ``"auto"`` (batched whenever the
        run shape allows it; resolved to a concrete mode by
        :func:`resolve_defaults`, so cached results are keyed by the
        kernel that actually ran).
    """

    mix: str
    sharing: str = "shared-4"
    policy: str = "affinity"
    seed: int = 0
    measured_refs: Optional[int] = None
    warmup_refs: Optional[int] = None
    scale: float = DEFAULT_SCALE
    l2_replacement: str = "lru"
    slots_per_core: int = 1
    start_stagger: int = 0
    num_cores: int = 16
    l2_vm_quota: bool = False
    qos_policy: str = ""
    qos_target: float = 0.0
    qos_epoch: int = 10_000
    phase_plan: str = ""
    rebind: str = ""
    rebind_interval: int = 100_000
    dir_cache_entries: int = 0  # 0 = machine default (16K per tile)
    sched_policy: str = ""
    sched_epoch: int = 10_000
    core_speeds: str = ""
    l2_asym: str = ""
    vm_schedule: str = ""
    scenario: str = ""
    engine_mode: str = "reference"

    def normalized(self) -> "ExperimentSpec":
        """Resolve every defaulted field to a concrete value
        (see :func:`resolve_defaults`)."""
        return resolve_defaults(self)

    def _canonical_sharing(self) -> str:
        degree = SharingDegree.from_name(self.sharing)
        return {
            SharingDegree.PRIVATE: "private",
            SharingDegree.SHARED_2: "shared-2",
            SharingDegree.SHARED_4: "shared-4",
            SharingDegree.SHARED_8: "shared-8",
            SharingDegree.SHARED_16: "shared",
        }[degree]

    @property
    def sharing_degree(self) -> SharingDegree:
        return SharingDegree.from_name(self.sharing)


def resolve_defaults(spec: ExperimentSpec) -> ExperimentSpec:
    """Resolve every defaulted field of ``spec`` to a concrete value.

    The removed ``REPRO_REFS`` / ``REPRO_SEED`` environment knobs are
    rejected here with a :class:`~repro.errors.ConfigurationError`
    naming the explicit spec field to set instead (they only ever
    applied to *defaulted* specs, so an explicitly-filled spec never
    consults the environment).  ``engine_mode="auto"`` resolves to a
    concrete engine for the run shape.  The returned spec is
    idempotent under re-resolution and is what the result store hashes
    (see :func:`repro.core.store.spec_key`).
    """
    measured = spec.measured_refs or default_measured_refs()
    warmup = spec.warmup_refs if spec.warmup_refs is not None else measured // 2
    seed = spec.seed or default_seed()
    return replace(
        spec,
        measured_refs=measured,
        warmup_refs=warmup,
        seed=seed,
        sharing=spec._canonical_sharing(),
        engine_mode=resolve_mode(
            spec.engine_mode,
            slots_per_core=spec.slots_per_core,
            rebind=spec.rebind,
            sched=spec.sched_policy,
            heterogeneous=bool(spec.core_speeds or spec.l2_asym),
            vm_schedule=bool(spec.vm_schedule),
            scenario=bool(spec.scenario),
        ),
    )


def resolve_mix(name: str) -> Mix:
    """Map a spec's mix string to a :class:`~repro.core.mixes.Mix`."""
    if name.startswith("iso-"):
        return isolated_mix(name[len("iso-"):])
    if name.startswith("scn-"):
        # scenario rosters resolve through the scenario registry so the
        # mix is always consistent with the scenario that owns it
        from ..scenarios.registry import get_scenario

        return get_scenario(name[len("scn-"):]).to_mix()
    return get_mix(name)


@dataclass(frozen=True)
class ChipSummary:
    """Chip-level statistics of one run."""

    mesh_mean_latency: float
    mesh_mean_queueing: float
    mesh_mean_hops: float
    c2c_clean: int
    c2c_dirty: int
    memory_fetches: int
    coherence_writebacks: int
    invalidations: int
    upgrades: int
    intra_domain_transfers: int
    directory_cache_hit_rate: float
    memory_reads: int
    memory_writebacks: int


@dataclass
class ExperimentResult:
    """Everything measured in one run.

    ``series`` holds the epoch telemetry time-series (the JSON form of
    :func:`repro.obs.series.series_to_dict`) when the run was executed
    with a live telemetry hub and a positive epoch; it is *not* part of
    the result codec (:func:`repro.core.store.result_to_dict`) — the
    serialized result is byte-identical with telemetry on or off, and
    series persist as store sidecar files instead.

    ``qos`` holds the QoS controller's end-of-run account (the
    :meth:`repro.qos.hook.QosHook.summary` dict: policy, control
    epochs, quota adjustments, re-binds, final quotas, violations) for
    runs with ``spec.qos_policy`` set.  Like ``series`` it is excluded
    from the result codec, so a ``static-equal`` run serializes
    byte-identically to the legacy static-quota path.

    ``sched`` holds the scheduling hook's end-of-run account (the
    :meth:`repro.sched.hook.SchedHook.summary` dict: policy, control
    epochs, migrations proposed/applied/refused, final thread->core
    binding) for runs with ``spec.sched_policy`` set; excluded from the
    result codec like ``qos``.

    ``scenario`` holds the scenario hook's end-of-run account (the
    :meth:`repro.scenarios.hook.ScenarioHook.summary` dict: control
    epochs, load adjustments, switches applied, per-window issued
    attribution, per-VM script accounting) for runs with
    ``spec.scenario`` set; excluded from the result codec like ``qos``
    and ``sched``.
    """

    spec: ExperimentSpec
    mix: Mix
    vm_metrics: List[VMMetrics]
    final_time: int
    chip_summary: ChipSummary
    occupancy: List[Dict[int, int]]
    residency: List[Set[int]]
    domain_lines: int
    assignments: List[List[int]] = field(default_factory=list)
    series: Optional[Dict[str, list]] = None
    qos: Optional[Dict[str, object]] = None
    sched: Optional[Dict[str, object]] = None
    scenario: Optional[Dict[str, object]] = None

    def metrics_for(self, workload: str) -> List[VMMetrics]:
        """All VM metrics of one workload, in VM order."""
        return [vm for vm in self.vm_metrics if vm.workload == workload]

    def vm(self, vm_id: int) -> VMMetrics:
        return self.vm_metrics[vm_id]

    @property
    def workloads(self) -> List[str]:
        return [vm.workload for vm in self.vm_metrics]

    def mean_cycles(self, workload: str) -> float:
        """Average completion cycles across a workload's instances."""
        instances = self.metrics_for(workload)
        return sum(vm.cycles for vm in instances) / len(instances)

    def mean_miss_rate(self, workload: str) -> float:
        instances = self.metrics_for(workload)
        return sum(vm.miss_rate for vm in instances) / len(instances)

    def mean_miss_latency(self, workload: str) -> float:
        instances = self.metrics_for(workload)
        return sum(vm.mean_miss_latency for vm in instances) / len(instances)


def _make_rebinder(kind: str, chip: Chip, rng_factory: RngFactory):
    """Build a dynamic-rebinding policy by name."""
    from ..sim.dynamic import AffinityRebinder, RandomRebinder

    kind = kind.strip().lower()
    if kind == "random":
        return RandomRebinder(chip.config.num_cores,
                              rng_factory.stream("rebinder"))
    if kind == "affinity":
        return AffinityRebinder(
            domain_of_core=chip.placement.domain_of,
            cores_of_domain=[list(d) for d in chip.placement.domains],
        )
    raise ConfigurationError(
        f"unknown rebinder {kind!r}; choose 'random' or 'affinity'"
    )


def _parse_vm_schedule(text: str, num_vms: int):
    """Parse ``spec.vm_schedule`` into (start_offsets, stop_times).

    One comma-separated ``start[:stop]`` entry per VM, both in cycles;
    an omitted stop means "runs to completion".
    """
    entries = [token.strip() for token in text.split(",")]
    if len(entries) != num_vms:
        raise ConfigurationError(
            f"vm_schedule has {len(entries)} entries for {num_vms} VMs"
        )
    starts: List[int] = []
    stops: List[Optional[int]] = []
    for vm_index, entry in enumerate(entries):
        start_text, sep, stop_text = entry.partition(":")
        try:
            start = int(start_text)
            stop = int(stop_text) if sep else None
        except ValueError:
            raise ConfigurationError(
                f"vm_schedule entry {entry!r} for VM {vm_index} is not "
                f"'start[:stop]' with integer cycles"
            )
        if start < 0:
            raise ConfigurationError(
                f"vm_schedule start {start} for VM {vm_index} is negative"
            )
        if stop is not None and stop <= start:
            raise ConfigurationError(
                f"vm_schedule stop {stop} for VM {vm_index} must exceed "
                f"its start {start}"
            )
        starts.append(start)
        stops.append(stop)
    return starts, stops


def _apply_vm_quotas(chip: Chip, assignments) -> None:
    """Split each shared domain's ways equally among its resident VMs.

    Delegates to :meth:`repro.qos.controllers.QosController.install`,
    the single owner of initial quota construction — the legacy
    ``l2_vm_quota`` flag and every dynamic QoS policy set up their
    starting split through the same code path.
    """
    from ..qos.controllers import QosController

    QosController.install(chip, assignments)


def clear_result_cache() -> None:
    """Drop memoized experiment results (tests use this).

    Clears the default store's memory tier; any on-disk tier the
    default store was configured with is untouched.
    """
    from .store import get_default_store

    get_default_store().clear_memory()


def run_experiment(
    spec: ExperimentSpec,
    use_cache: bool = True,
    store=None,
    telemetry=None,
    epoch: int = 0,
) -> ExperimentResult:
    """Run one consolidation experiment.

    Results are cached in a :class:`repro.core.store.ResultStore` keyed
    by the fully-resolved spec: the benchmark harness re-uses isolation
    baselines across figures without re-simulating them, and a store
    with a disk tier carries results across processes and sessions.
    ``store=None`` uses the process-wide default store; ``use_cache=False``
    bypasses lookup *and* insertion.

    Telemetry
    ---------
    Pass a live :class:`~repro.obs.telemetry.Telemetry` hub to record
    wall-clock phase spans, and a positive ``epoch`` to additionally
    sample per-VM time series every ``epoch`` simulated cycles through
    an :class:`~repro.obs.probes.EpochProbe` (the series land in
    ``telemetry.series``, on ``result.series``, and — when the store
    has a disk tier — in a ``<key>.series.json`` sidecar).  Telemetry
    never changes simulation outcomes; the epoch probe is read-only
    and the spec (hence the store key) does not include it.  A cache
    hit cannot replay sampling, so epoch-probed runs resolve the store
    *series* tier first and re-simulate if no stored series exists.
    """
    from .store import get_default_store

    if telemetry is None:
        from ..obs.telemetry import NULL_TELEMETRY

        telemetry = NULL_TELEMETRY
    want_series = telemetry.enabled and epoch > 0

    spec = spec.normalized()
    if spec.qos_policy and spec.l2_vm_quota:
        raise ConfigurationError(
            "l2_vm_quota and qos_policy both claim ownership of the way "
            "quotas; use qos_policy='static-equal' for the static split"
        )
    if spec.qos_policy and spec.qos_epoch <= 0:
        raise ConfigurationError("qos_epoch must be positive")
    if spec.sched_policy:
        if spec.sched_epoch <= 0:
            raise ConfigurationError("sched_epoch must be positive")
        if spec.rebind:
            raise ConfigurationError(
                "sched_policy and rebind both migrate threads; "
                "pick one migration mechanism"
            )
    if spec.vm_schedule:
        if spec.slots_per_core > 1:
            raise ConfigurationError(
                "vm_schedule (VM churn) requires single-slot runs"
            )
        if spec.rebind:
            raise ConfigurationError(
                "vm_schedule cannot be combined with the rebind phase "
                "rebinder; use a sched_policy for dynamic placement"
            )
        if spec.start_stagger:
            raise ConfigurationError(
                "vm_schedule supersedes start_stagger; encode the "
                "arrival times in the schedule"
            )
    if spec.l2_asym and (spec.qos_policy or spec.l2_vm_quota):
        raise ConfigurationError(
            "asymmetric L2 domains (l2_asym) are incompatible with the "
            "way-quota owners (qos_policy / l2_vm_quota), which assume "
            "uniform domain associativity"
        )
    scenario = None
    if spec.scenario:
        from ..scenarios.registry import get_scenario

        scenario = get_scenario(spec.scenario)
        if spec.mix != scenario.mix_name:
            raise ConfigurationError(
                f"a scenario spec's mix must be the scenario's own "
                f"roster mix: expected {scenario.mix_name!r}, got "
                f"{spec.mix!r} (use scenario_spec() to build one)"
            )
        for conflicting, label in (
            (spec.phase_plan, "phase_plan"),
            (spec.vm_schedule, "vm_schedule"),
            (spec.start_stagger, "start_stagger"),
            (spec.rebind, "rebind"),
        ):
            if conflicting:
                raise ConfigurationError(
                    f"scenario runs own the {label} axis; encode it in "
                    f"the scenario instead of setting spec.{label}"
                )
        if scenario.has_arrivals and spec.slots_per_core > 1:
            raise ConfigurationError(
                "scenario arrivals require single-slot runs (the "
                "over-commit engine honours start times only for run-"
                "queue heads); departures compose with over-commit"
            )
    if store is None:
        store = get_default_store()
    if use_cache:
        cached = store.get(spec)
        if cached is not None:
            if not want_series:
                return cached
            stored_series = store.get_series(spec)
            if stored_series is not None:
                # replay the stored series into the hub and reuse the
                # cached result — nothing to re-simulate
                from ..obs.series import series_from_dict

                for name, series in series_from_dict(stored_series).items():
                    telemetry.series_for(name).points.extend(series.points)
                cached.series = stored_series
                return cached
            # cached result but no sampled series: fall through and
            # re-simulate (results are deterministic, so this only
            # costs time, never correctness)

    mix = resolve_mix(spec.mix)
    profiles = [profile.scaled(spec.scale) for profile in mix.profiles()]

    machine_params = dict(
        num_cores=spec.num_cores,
        sharing=spec.sharing_degree,
        l2_replacement=spec.l2_replacement,
    )
    if spec.dir_cache_entries:
        machine_params["directory_cache_entries"] = spec.dir_cache_entries
    if spec.core_speeds:
        machine_params["core_speeds"] = parse_core_speeds(
            spec.core_speeds, spec.num_cores)
    if spec.l2_asym:
        machine_params["l2_domain_assoc"] = parse_domain_assoc(
            spec.l2_asym, spec.sharing_degree.num_domains(spec.num_cores))
    config = MachineConfig(**machine_params).scaled(spec.scale)
    chip = Chip(config)
    rng_factory = RngFactory(spec.seed)
    thread_counts = [profile.threads for profile in profiles]
    scheduler_rng = rng_factory.stream("scheduler")
    if spec.slots_per_core > 1:
        assignments = assign_overcommitted(
            spec.policy, thread_counts, chip.placement,
            slots_per_core=spec.slots_per_core, rng=scheduler_rng,
        )
    else:
        assignments = make_scheduler(spec.policy).assign(
            thread_counts, chip.placement, rng=scheduler_rng,
        )
    hypervisor = Hypervisor(chip, rng_factory)
    start_offsets = (
        [i * spec.start_stagger for i in range(len(profiles))]
        if spec.start_stagger else ()
    )
    stop_times = ()
    if spec.vm_schedule:
        start_offsets, stop_times = _parse_vm_schedule(
            spec.vm_schedule, len(profiles))
    phases = None
    if spec.phase_plan:
        from ..workloads.phases import get_phase_plan

        phases = get_phase_plan(spec.phase_plan)
    vm_phases = ()
    if scenario is not None:
        # the scenario owns churn and phase plans: compile its roster
        # into the engine-native start/stop and per-VM plan machinery
        if scenario.has_churn:
            start_offsets = scenario.start_offsets()
            stop_times = scenario.stop_times()
        plans = scenario.vm_phase_plans()
        if any(plan is not None for plan in plans):
            vm_phases = plans
    contexts = hypervisor.launch(
        profiles,
        assignments,
        measured_refs=spec.measured_refs,
        warmup_refs=spec.warmup_refs,
        slots_per_core=spec.slots_per_core,
        start_offsets=start_offsets,
        stop_times=stop_times,
        phases=phases,
        vm_phases=vm_phases,
    )
    hypervisor.check_isolation()
    if spec.l2_vm_quota:
        _apply_vm_quotas(chip, assignments)
    if spec.rebind and spec.slots_per_core > 1:
        raise ConfigurationError(
            "dynamic rebinding and over-commit cannot be combined"
        )
    qos_hook = None
    if spec.qos_policy:
        from ..qos.controllers import TargetSlowdown, make_controller
        from ..qos.hook import QosHook

        controller = make_controller(spec.qos_policy)
        baseline_cpr: Dict[int, float] = {}
        if isinstance(controller, TargetSlowdown):
            # isolated baselines come memoized from the result store;
            # isolation_spec strips the qos fields, so this never
            # recurses into another QoS run
            from .isolation import run_isolated

            per_thread = spec.warmup_refs + spec.measured_refs
            for vm_id, profile in enumerate(profiles):
                iso = run_isolated(profile.name, template=spec)
                baseline_cpr[vm_id] = iso.vm_metrics[0].cycles / per_thread
        qos_hook = QosHook(
            chip, contexts, controller, assignments,
            epoch=spec.qos_epoch, telemetry=telemetry,
            hypervisor=hypervisor, baseline_cpr=baseline_cpr,
            target=spec.qos_target,
            vm_workloads={vm.vm_id: vm.workload_name
                          for vm in hypervisor.vms},
        )
    sched_hook = None
    if spec.sched_policy:
        from ..sched import SchedHook, make_sched_policy

        sched_hook = SchedHook(
            chip, contexts, make_sched_policy(spec.sched_policy),
            epoch=spec.sched_epoch, telemetry=telemetry,
            hypervisor=hypervisor,
            slots_per_core=spec.slots_per_core,
            rng=rng_factory.stream("sched"),
        )
    scenario_hook = None
    if scenario is not None:
        from ..scenarios.hook import ScenarioHook

        scenario_hook = ScenarioHook(
            scenario, hypervisor.vms, contexts,
            rng=rng_factory.stream("scenario"), telemetry=telemetry,
        )
    hooks = [hook for hook in (scenario_hook, qos_hook, sched_hook)
             if hook is not None]
    if not hooks:
        control = None
    elif len(hooks) == 1:
        control = hooks[0]
    else:
        from ..sched import CompositeControl

        # scenario first (load/phase actuation shapes the epoch the
        # controllers sense), then QoS, then the scheduler — quota
        # decisions land before the same epoch's migrations
        control = CompositeControl(hooks)
    rebinder = (
        _make_rebinder(spec.rebind, chip, rng_factory) if spec.rebind else None
    )
    engine = make_engine(
        EngineRequest(
            machine=chip,
            threads=contexts,
            control=control,
            slots_per_core=spec.slots_per_core,
            rebinder=rebinder,
            rebind_interval=spec.rebind_interval,
        ),
        mode=spec.engine_mode,
    )
    probe = None
    if want_series and hasattr(engine, "probe"):
        from ..obs.probes import EpochProbe

        # batched engines expose the inspection surface themselves
        probe_machine = engine if hasattr(engine, "l2_occupancy_share") else chip
        probe = EpochProbe(probe_machine, contexts, epoch, telemetry)
        engine.probe = probe
    with telemetry.span(f"simulate {spec.mix}/{spec.sharing}/{spec.policy}",
                        cat="experiment"):
        engine_result = engine.run()

    vm_metrics: List[VMMetrics] = []
    for vm in hypervisor.vms:
        threads = [
            context.stats for context in contexts if context.vm_id == vm.vm_id
        ]
        vm_metrics.append(
            VMMetrics.from_threads(
                vm.vm_id,
                vm.workload_name,
                threads,
                completion_time=engine_result.vm_completion_times[vm.vm_id],
            )
        )

    if hasattr(engine, "summary_counters"):
        # batched engines track chip-level effects themselves (the chip
        # object never saw the references)
        summary = ChipSummary(**engine.summary_counters())
        occupancy = engine.l2_snapshot_by_vm()
        residency = engine.l2_resident_sets()
    else:
        coherence = chip.coherence.stats
        total_dir_accesses = sum(
            c.hits + c.misses for c in chip.directory.caches
        )
        total_dir_hits = sum(c.hits for c in chip.directory.caches)
        summary = ChipSummary(
            mesh_mean_latency=chip.mesh.mean_latency,
            mesh_mean_queueing=chip.mesh.mean_queueing,
            mesh_mean_hops=chip.mesh.mean_hops,
            c2c_clean=coherence.c2c_clean,
            c2c_dirty=coherence.c2c_dirty,
            memory_fetches=coherence.memory_fetches,
            coherence_writebacks=coherence.writebacks,
            invalidations=coherence.invalidations_sent,
            upgrades=coherence.upgrades,
            intra_domain_transfers=chip.intra_domain_transfers,
            directory_cache_hit_rate=(
                total_dir_hits / total_dir_accesses
                if total_dir_accesses else 0.0
            ),
            memory_reads=chip.memory.total_reads,
            memory_writebacks=chip.memory.total_writebacks,
        )
        occupancy = chip.l2_snapshot_by_vm()
        residency = chip.l2_resident_sets()

    result = ExperimentResult(
        spec=spec,
        mix=mix,
        vm_metrics=vm_metrics,
        final_time=engine_result.final_time,
        chip_summary=summary,
        occupancy=occupancy,
        residency=residency,
        domain_lines=config.l2_geometry().num_lines,
        assignments=assignments,
    )
    if probe is not None:
        from ..obs.series import series_to_dict

        result.series = series_to_dict(telemetry.series)
    if qos_hook is not None:
        result.qos = qos_hook.summary()
    if sched_hook is not None:
        result.sched = sched_hook.summary()
    if scenario_hook is not None:
        result.scenario = scenario_hook.summary()
    if use_cache:
        store.put(spec, result)
        if result.series is not None:
            store.put_series(spec, result.series)
    return result

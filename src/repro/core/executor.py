"""Parallel sweep execution.

A grid of experiments (the cartesian cells of a sweep or an
:class:`~repro.core.suite.ExperimentSuite`) is embarrassingly parallel:
every cell is an independent :func:`~repro.core.experiment.run_experiment`
call with a fully-resolved spec.  :class:`SweepExecutor` fans cells out
over a ``multiprocessing`` pool and funnels results through a
:class:`~repro.core.store.ResultStore`, so that

* a cell already present in the store is never re-simulated — not in
  this process, not in another, not in a later session (disk tier);
* an ``N``-job run is bit-identical to a serial run: specs are
  normalized *in the parent* before dispatch, so every worker sees the
  same explicit seed, and :class:`~repro.sim.rng.RngFactory` streams
  depend only on the spec;
* a failing cell reports its exception (with traceback) in its
  :class:`CellOutcome` instead of aborting the rest of the grid.

Workers are spawn-safe: the worker function is a module-level callable
and its payload is a picklable :class:`ExperimentSpec`, so the executor
works under the ``spawn`` start method (the default here, and the only
safe choice on macOS/Windows or in threaded parents).
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .experiment import ExperimentResult, ExperimentSpec, resolve_defaults

__all__ = ["CellOutcome", "ProgressCallback", "RetryCallback",
           "SweepExecutor"]


@dataclass
class CellOutcome:
    """Accounting for one grid cell.

    Exactly one of :attr:`result` / :attr:`error` is set.  ``wall_time``
    is the cell's own simulation wall-clock in seconds (zero for cache
    hits); ``from_cache`` marks cells satisfied by the store.
    """

    key: tuple
    spec: ExperimentSpec
    result: Optional[ExperimentResult] = None
    error: Optional[str] = None
    wall_time: float = 0.0
    from_cache: bool = False
    retried: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None


ProgressCallback = Callable[[int, int, CellOutcome], None]
"""Called as ``progress(done, total, outcome)`` after every cell."""

RetryCallback = Callable[[tuple, ExperimentSpec, int, str], None]
"""Called as ``on_retry(key, spec, attempt, error)`` before a retry."""


def _run_cell(payload: Tuple):
    """Worker entry point: run one cell, never raise.

    Module-level (hence picklable by reference) so it survives the
    ``spawn`` start method.  Uses ``use_cache=False`` — the parent owns
    the store; workers only compute.  A positive ``epoch`` samples the
    cell through a worker-local telemetry hub; the sampled series ride
    back to the parent on ``result.series`` (plain JSON, picklable).

    The payload is ``(index, spec, epoch)`` or, when the parent traces,
    ``(index, spec, epoch, trace)`` with ``trace`` a plain dict
    (``traceparent``/``log_dir``/``service``) — strings survive the
    pickle boundary, so the worker joins the parent's trace and appends
    a ``cell.simulate`` span to its own per-process span log.
    """
    index, spec, epoch = payload[0], payload[1], payload[2]
    trace = payload[3] if len(payload) > 3 else None
    start = time.perf_counter()
    try:
        from contextlib import nullcontext

        from .experiment import run_experiment

        telemetry = None
        if epoch > 0:
            from ..obs.telemetry import Telemetry

            telemetry = Telemetry()
        span = nullcontext()
        if trace is not None:
            from ..obs.tracing import SpanContext, process_tracer

            tracer = process_tracer(trace["log_dir"], trace["service"])
            span = tracer.start_span(
                "cell.simulate", cat="sim",
                parent=SpanContext.parse(trace.get("traceparent")),
                attrs={"index": index})
        with span:
            result = run_experiment(spec, use_cache=False,
                                    telemetry=telemetry, epoch=epoch)
        return index, result, None, time.perf_counter() - start
    except Exception:
        return index, None, traceback.format_exc(), time.perf_counter() - start


class SweepExecutor:
    """Run a list of ``(key, spec)`` cells, optionally in parallel.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (the default) runs every cell inline in
        the calling process — the exact serial path the library always
        had.
    store:
        The :class:`~repro.core.store.ResultStore` consulted before and
        populated after each cell; ``None`` uses the process-wide
        default store.
    progress:
        Optional ``progress(done, total, outcome)`` callback, invoked in
        the parent as each cell completes (cache hits first).
    mp_context:
        ``multiprocessing`` start method for ``jobs > 1`` (default
        ``"spawn"``).
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` hub.  When
        set, every cold cell records a wall-clock span (named by its
        grid key) into the trace buffer, cache hits record instant
        events, and ``executor.*`` counters account the grid —
        ``repro profile`` exports these as a Chrome trace.
    epoch:
        Positive to epoch-sample every cold cell (worker-local probes;
        see :func:`_run_cell`).  Sampled series come back on each
        ``result.series`` and are persisted as store sidecars.
    retries:
        Per-cell transient-failure retries (default 0 — a failed cell
        is final, the historical behaviour).  A positive count re-runs
        a failed cell up to ``retries`` more times *in the parent*,
        sleeping ``retry_backoff * 2**(attempt-1)`` seconds first; the
        recovery is recorded on :attr:`CellOutcome.retried` and in the
        ``executor.retries`` telemetry counter.  This is what makes a
        sweep resumable past a crashed worker process.
    retry_backoff:
        Base backoff delay in seconds (0 retries instantly — tests).
    on_retry:
        Optional ``on_retry(key, spec, attempt, error)`` callback
        invoked before each retry (the service journals these).
    """

    def __init__(
        self,
        jobs: int = 1,
        store=None,
        progress: Optional[ProgressCallback] = None,
        mp_context: str = "spawn",
        telemetry=None,
        epoch: int = 0,
        retries: int = 0,
        retry_backoff: float = 0.5,
        on_retry: Optional[RetryCallback] = None,
        tracer=None,
    ):
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if epoch < 0:
            raise ConfigurationError(f"epoch must be >= 0, got {epoch}")
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        if retry_backoff < 0:
            raise ConfigurationError(
                f"retry_backoff must be >= 0, got {retry_backoff}")
        if telemetry is None:
            from ..obs.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self.jobs = jobs
        self.store = store
        self.progress = progress
        self.mp_context = mp_context
        self.telemetry = telemetry
        self.epoch = epoch
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.on_retry = on_retry
        self.tracer = tracer

    def run(
        self, cells: Sequence[Tuple[tuple, ExperimentSpec]],
        trace_parent=None,
    ) -> List[CellOutcome]:
        """Execute every cell; returns outcomes in input order.

        The store is consulted first (warm cells cost nothing), then the
        remaining cells run — deduplicated, so two cells whose specs
        resolve identically simulate once and share the result.

        ``trace_parent`` (a :class:`~repro.obs.tracing.SpanContext`)
        parents the grid's distributed-trace spans when a ``tracer``
        was supplied; simulation results are identical either way.
        """
        import contextlib

        from ..obs.trace import WALL_PID, TraceEvent, wall_now_us
        from .store import get_default_store

        telemetry = self.telemetry
        tracer = self.tracer
        store = self.store if self.store is not None else get_default_store()
        resolved = [(key, resolve_defaults(spec)) for key, spec in cells]
        total = len(resolved)
        outcomes: List[Optional[CellOutcome]] = [None] * total
        done = 0

        def record(index: int, outcome: CellOutcome) -> None:
            nonlocal done
            outcomes[index] = outcome
            done += 1
            telemetry.counter("executor.cells_done").inc()
            if not outcome.ok:
                telemetry.counter("executor.failures").inc()
            if self.progress is not None:
                self.progress(done, total, outcome)

        with contextlib.ExitStack() as stack:
            stack.enter_context(
                telemetry.span(f"grid[{total}]", cat="executor"))
            grid_ctx = None
            if tracer is not None:
                grid_span = stack.enter_context(tracer.start_span(
                    "executor.grid", parent=trace_parent, cat="run",
                    attrs={"cells": total}))
                grid_ctx = grid_span.context

            # tier 1: the store
            pending: Dict[ExperimentSpec, List[int]] = {}
            for index, (key, spec) in enumerate(resolved):
                get_start = time.perf_counter()
                cached = store.get(spec)
                if cached is not None:
                    telemetry.counter("executor.cache_hits").inc()
                    telemetry.emit(TraceEvent(
                        name=f"cached {key}", cat="executor", ph="i",
                        ts=wall_now_us(), pid=WALL_PID,
                    ))
                    if grid_ctx is not None:
                        tracer.record_span(
                            "cell.cached", cat="store",
                            duration_s=time.perf_counter() - get_start,
                            parent=grid_ctx, attrs={"key": str(key)})
                    record(index, CellOutcome(key, spec, result=cached,
                                              from_cache=True))
                else:
                    pending.setdefault(spec, []).append(index)

            # tier 2: simulate the distinct cold specs.  When the cells
            # fan out over a pool *and* the tracer has a durable log,
            # context rides in the payload and each worker records its
            # own span (real pid lanes); otherwise the parent records
            # the span from the measured wall time.
            pooled = self.jobs > 1 and len(pending) > 1
            trace_payload = None
            if grid_ctx is not None and pooled and tracer.log_dir is not None:
                trace_payload = {
                    "traceparent": grid_ctx.to_traceparent(),
                    "log_dir": str(tracer.log_dir),
                    "service": f"{tracer.service}-sim",
                }
            jobs = [
                (indices[0], spec, self.epoch) if trace_payload is None
                else (indices[0], spec, self.epoch, trace_payload)
                for spec, indices in pending.items()
            ]
            for index, result, error, wall in self._execute(jobs):
                key, spec = resolved[index]
                result, error, wall, retried = self._maybe_retry(
                    index, spec, key, result, error, wall)
                telemetry.counter("executor.simulated").inc()
                telemetry.histogram(
                    "executor.cell_seconds",
                    bounds=(0.1, 0.5, 1, 2, 5, 10, 30, 60, 300),
                ).observe(wall)
                telemetry.add_span(
                    name=f"cell {key}", cat="executor", duration_s=wall,
                    args={"ok": error is None},
                )
                if grid_ctx is not None and trace_payload is None:
                    tracer.record_span(
                        "cell.simulate", cat="sim", duration_s=wall,
                        parent=grid_ctx,
                        attrs={"key": str(key)},
                        status="ok" if error is None else "error")
                if error is None:
                    put_start = time.perf_counter()
                    store.put(spec, result)
                    if result.series is not None:
                        store.put_series(spec, result.series)
                    if grid_ctx is not None:
                        tracer.record_span(
                            "store.put", cat="store",
                            duration_s=time.perf_counter() - put_start,
                            parent=grid_ctx, attrs={"key": str(key)})
                for cell_index in pending[spec]:
                    cell_key = resolved[cell_index][0]
                    record(cell_index, CellOutcome(
                        cell_key, spec, result=result, error=error,
                        wall_time=wall, from_cache=cell_index != index,
                        retried=retried,
                    ))
        return outcomes  # type: ignore[return-value]

    def _maybe_retry(self, index: int, spec: ExperimentSpec, key: tuple,
                     result, error, wall: float):
        """Re-run a failed cold cell up to ``self.retries`` times.

        Retries run serially in the parent — by then the original
        worker (possibly a crashed process) is gone, and a transient
        failure is exactly one that a clean re-run survives.
        """
        attempt = 0
        while error is not None and attempt < self.retries:
            attempt += 1
            self.telemetry.counter("executor.retries").inc()
            if self.on_retry is not None:
                self.on_retry(key, spec, attempt, error)
            if self.retry_backoff > 0:
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            _index, result, error, retry_wall = _run_cell(
                (index, spec, self.epoch))
            wall += retry_wall
        return result, error, wall, attempt

    def _execute(self, jobs: List[Tuple[int, ExperimentSpec, int]]):
        """Yield ``(index, result, error, wall_time)`` per cold cell."""
        if not jobs:
            return
        if self.jobs == 1 or len(jobs) == 1:
            for payload in jobs:
                yield _run_cell(payload)
            return
        import multiprocessing

        context = multiprocessing.get_context(self.mp_context)
        workers = min(self.jobs, len(jobs))
        with context.Pool(processes=workers) as pool:
            for completed in pool.imap_unordered(_run_cell, jobs):
                yield completed

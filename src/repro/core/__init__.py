"""The consolidation framework — the paper's primary contribution."""

from .experiment import (
    DEFAULT_SCALE,
    ChipSummary,
    ExperimentResult,
    ExperimentSpec,
    clear_result_cache,
    resolve_mix,
    run_experiment,
)
from .isolation import (
    NormalizedVM,
    isolation_spec,
    normalize_result,
    normalized_miss_latency,
    normalized_miss_rate,
    normalized_runtime,
    run_isolated,
)
from .metrics import VMMetrics, aggregate_by_workload
from .mixes import (
    HETEROGENEOUS_MIXES,
    HOMOGENEOUS_MIXES,
    MIXES,
    Mix,
    get_mix,
    isolated_mix,
)
from .scheduling import (
    SCHEDULER_NAMES,
    AffinityScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    RrAffinityScheduler,
    SchedulingPolicy,
    make_scheduler,
)
from .sweeps import (
    ALL_POLICIES,
    ALL_SHARINGS,
    extract_grid,
    sweep,
    sweep_mixes,
    sweep_sharing_policy,
)
from .variability import ReplicationSummary, replicate, seeds_for

__all__ = [
    "DEFAULT_SCALE",
    "ChipSummary",
    "ExperimentResult",
    "ExperimentSpec",
    "clear_result_cache",
    "resolve_mix",
    "run_experiment",
    "NormalizedVM",
    "isolation_spec",
    "normalize_result",
    "normalized_miss_latency",
    "normalized_miss_rate",
    "normalized_runtime",
    "run_isolated",
    "VMMetrics",
    "aggregate_by_workload",
    "HETEROGENEOUS_MIXES",
    "HOMOGENEOUS_MIXES",
    "MIXES",
    "Mix",
    "get_mix",
    "isolated_mix",
    "SCHEDULER_NAMES",
    "AffinityScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "RrAffinityScheduler",
    "SchedulingPolicy",
    "make_scheduler",
    "ALL_POLICIES",
    "ALL_SHARINGS",
    "extract_grid",
    "sweep",
    "sweep_mixes",
    "sweep_sharing_policy",
    "ReplicationSummary",
    "replicate",
    "seeds_for",
]

"""Content-addressed, persistent experiment-result store.

Every completed experiment is a pure function of its fully-resolved
:class:`~repro.core.experiment.ExperimentSpec`, so results are cached
under a *spec key*: a SHA-256 digest of the canonical JSON encoding of
the normalized spec.  A :class:`ResultStore` keeps two tiers:

memory tier
    A plain dict, always present.  This is what the old module-level
    ``_RESULT_CACHE`` in :mod:`repro.core.experiment` used to be; it is
    now the first tier of the process-wide default store.

disk tier (optional)
    A directory of one JSON record per result, named ``<key>.json``.
    Records are schema-versioned, written atomically (temp file +
    ``os.replace`` so concurrent writers can never expose a torn file),
    and validated on read — a corrupt or stale-schema record is treated
    as a miss and counted in :attr:`StoreStats`, never raised to the
    caller.

The store also owns the result<->dict codecs
(:func:`result_to_dict` / :func:`result_from_dict`);
:mod:`repro.analysis.persist` re-exports them for archival files.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from ..errors import ConfigurationError, ReproError
from .experiment import ChipSummary, ExperimentResult, ExperimentSpec
from .metrics import VMMetrics
from .mixes import Mix

__all__ = [
    "RESULT_FORMAT_VERSION",
    "STORE_SCHEMA_VERSION",
    "SPEC_KEY_VERSION",
    "spec_key",
    "result_to_dict",
    "result_from_dict",
    "StoreStats",
    "ResultStore",
    "get_default_store",
    "set_default_store",
]

RESULT_FORMAT_VERSION = 1
"""Version of the result<->dict codec (``format_version`` field)."""

STORE_SCHEMA_VERSION = 1
"""Version of the on-disk store record envelope."""

SPEC_KEY_VERSION = 1
"""Version of the spec-key derivation; bump to invalidate all keys."""


# ----------------------------------------------------------------------
# spec keying
# ----------------------------------------------------------------------

def spec_key(spec: ExperimentSpec) -> str:
    """Stable content key of one experiment.

    The spec is normalized first (every defaulted field resolved), so a
    spec written with explicit values and one written with environment
    defaults hash identically when they describe the same run.
    """
    resolved = spec.normalized()
    payload = {
        "spec_key_version": SPEC_KEY_VERSION,
        "spec": dataclasses.asdict(resolved),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# result <-> dict codecs (moved here from analysis.persist)
# ----------------------------------------------------------------------

def result_to_dict(result: ExperimentResult) -> dict:
    """A JSON-serializable dict capturing the full result."""
    return {
        "format_version": RESULT_FORMAT_VERSION,
        "spec": dataclasses.asdict(result.spec),
        "mix": {
            "name": result.mix.name,
            "components": [list(c) for c in result.mix.components],
        },
        "vm_metrics": [dataclasses.asdict(vm) for vm in result.vm_metrics],
        "final_time": result.final_time,
        "chip_summary": dataclasses.asdict(result.chip_summary),
        "occupancy": [
            {str(vm): lines for vm, lines in domain.items()}
            for domain in result.occupancy
        ],
        "residency": [sorted(domain) for domain in result.residency],
        "domain_lines": result.domain_lines,
        "assignments": result.assignments,
    }


def result_from_dict(payload: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict`
    output."""
    version = payload.get("format_version")
    if version != RESULT_FORMAT_VERSION:
        raise ReproError(
            f"unsupported result format version {version!r} "
            f"(expected {RESULT_FORMAT_VERSION})"
        )
    spec = ExperimentSpec(**payload["spec"])
    mix_payload = payload["mix"]
    mix = Mix(
        mix_payload["name"],
        tuple((workload, count) for workload, count in mix_payload["components"]),
    )
    return ExperimentResult(
        spec=spec,
        mix=mix,
        vm_metrics=[VMMetrics(**vm) for vm in payload["vm_metrics"]],
        final_time=payload["final_time"],
        chip_summary=ChipSummary(**payload["chip_summary"]),
        occupancy=[
            {int(vm): lines for vm, lines in domain.items()}
            for domain in payload["occupancy"]
        ],
        residency=[set(domain) for domain in payload["residency"]],
        domain_lines=payload["domain_lines"],
        assignments=[list(cores) for cores in payload.get("assignments", [])],
    )


# ----------------------------------------------------------------------
# atomic multi-process-safe publication
# ----------------------------------------------------------------------

_TMP_COUNTER = itertools.count()


def _atomic_write(final_path: Path, payload: str) -> None:
    """Publish ``payload`` at ``final_path`` atomically.

    The temp name embeds the writer's pid and a process-local counter,
    so any number of concurrent writers — threads of one service
    process or entirely separate processes sharing a store directory —
    write distinct temp files and race only on the final ``os.replace``,
    which is atomic: readers see the old complete file or the new
    complete file, never a torn one.
    """
    tmp_path = final_path.with_name(
        f".{final_path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp")
    try:
        with open(tmp_path, "w") as handle:
            handle.write(payload)
        os.replace(tmp_path, final_path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------

@dataclasses.dataclass
class StoreStats:
    """Hit/miss accounting of one :class:`ResultStore`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    schema_mismatches: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


class ResultStore:
    """Two-tier (memory + optional disk) experiment-result cache.

    Parameters
    ----------
    path:
        Directory for the persistent tier; ``None`` keeps the store
        memory-only.  The directory is created on first use.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` hub; when set,
        ``store.*`` counters mirror :attr:`StoreStats` so sweeps and
        profiles can report cache behaviour alongside executor spans.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None,
                 telemetry=None):
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists() \
                and not self.path.is_dir():
            raise ConfigurationError(
                f"result store path {self.path} exists and is not a "
                f"directory"
            )
        if telemetry is None:
            from ..obs.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self._memory: Dict[str, ExperimentResult] = {}
        self._memory_series: Dict[str, dict] = {}
        self.stats = StoreStats()
        self.telemetry = telemetry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.path) if self.path else "memory-only"
        return f"ResultStore({where}, {len(self._memory)} in memory)"

    # -- lookup --------------------------------------------------------

    def get(self, spec: ExperimentSpec) -> Optional[ExperimentResult]:
        """Return the stored result for ``spec``, or ``None`` on miss.

        A disk hit is promoted into the memory tier.  Corrupt and
        stale-schema records count as misses.
        """
        return self.get_by_key(spec_key(spec))

    def get_by_key(self, key: str) -> Optional[ExperimentResult]:
        """Return the stored result for a raw spec key, or ``None``.

        The service's ``GET /results/<key>`` endpoint reads through
        this: callers hold keys (from job records), not specs.  Hit
        and miss accounting matches :meth:`get`.
        """
        hit = self._memory.get(key)
        if hit is not None:
            self.stats.memory_hits += 1
            self.telemetry.counter("store.memory_hits").inc()
            return hit
        result = self._read_record(key)
        if result is not None:
            self.stats.disk_hits += 1
            self.telemetry.counter("store.disk_hits").inc()
            self._memory[key] = result
            return result
        self.stats.misses += 1
        self.telemetry.counter("store.misses").inc()
        return None

    def __contains__(self, spec: ExperimentSpec) -> bool:
        key = spec_key(spec)
        if key in self._memory:
            return True
        return self.path is not None and self._record_path(key).exists()

    def __len__(self) -> int:
        """Number of results in the memory tier."""
        return len(self._memory)

    # -- insertion -----------------------------------------------------

    def put(self, spec: ExperimentSpec, result: ExperimentResult) -> str:
        """Store ``result`` under ``spec``'s key; returns the key."""
        key = spec_key(spec)
        self._memory[key] = result
        if self.path is not None:
            self._write_record(key, result)
        self.stats.writes += 1
        self.telemetry.counter("store.writes").inc()
        return key

    # -- telemetry time-series sidecars --------------------------------

    def put_series(self, spec: ExperimentSpec, series: dict) -> str:
        """Store an epoch time-series alongside ``spec``'s result.

        ``series`` is the JSON form produced by
        :func:`repro.obs.series.series_to_dict`.  Series are kept as
        ``<key>.series.json`` sidecar files (disk tier) or a parallel
        memory dict — *outside* the result record, so the result codec
        and spec keys are byte-identical with telemetry on or off.
        """
        key = spec_key(spec)
        self._memory_series[key] = series
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
            payload = json.dumps({
                "store_schema": STORE_SCHEMA_VERSION,
                "spec_key": key,
                "series": series,
            }, indent=2)
            _atomic_write(self._series_path(key), payload)
        return key

    def get_series(self, spec: ExperimentSpec) -> Optional[dict]:
        """The stored time-series for ``spec``, or ``None``.

        A torn or corrupt sidecar is treated exactly like a corrupt
        result record in :meth:`get`: counted (``stats.corrupt`` /
        ``stats.schema_mismatches`` and the matching ``store.*``
        telemetry counters) and reported as a miss, never raised.
        """
        key = spec_key(spec)
        hit = self._memory_series.get(key)
        if hit is not None:
            return hit
        if self.path is None:
            return None
        try:
            raw = self._series_path(key).read_text()
        except OSError:
            return None
        try:
            record = json.loads(raw)
            if not isinstance(record, dict):
                raise ValueError("series record is not an object")
        except (json.JSONDecodeError, ValueError):
            self._count_corrupt()
            return None
        if record.get("store_schema") != STORE_SCHEMA_VERSION:
            self.stats.schema_mismatches += 1
            self.telemetry.counter("store.schema_mismatches").inc()
            return None
        series = record.get("series")
        if record.get("spec_key") != key or not isinstance(series, dict):
            self._count_corrupt()
            return None
        self._memory_series[key] = series
        return series

    def _series_path(self, key: str) -> Path:
        assert self.path is not None
        return self.path / f"{key}.series.json"

    # -- maintenance ---------------------------------------------------

    def clear_memory(self) -> None:
        """Drop the memory tier (the disk tier is untouched)."""
        self._memory.clear()
        self._memory_series.clear()

    def disk_keys(self) -> Iterator[str]:
        """Keys of every record currently in the disk tier."""
        if self.path is None or not self.path.is_dir():
            return iter(())
        return (
            entry.stem
            for entry in sorted(self.path.glob("*.json"))
            if not entry.name.endswith(".series.json")
        )

    # -- disk tier internals -------------------------------------------

    def _record_path(self, key: str) -> Path:
        assert self.path is not None
        return self.path / f"{key}.json"

    def _read_record(self, key: str) -> Optional[ExperimentResult]:
        if self.path is None:
            return None
        record_path = self._record_path(key)
        try:
            raw = record_path.read_text()
        except OSError:
            return None
        try:
            record = json.loads(raw)
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
        except (json.JSONDecodeError, ValueError):
            self._count_corrupt()
            return None
        if record.get("store_schema") != STORE_SCHEMA_VERSION:
            self.stats.schema_mismatches += 1
            self.telemetry.counter("store.schema_mismatches").inc()
            return None
        if record.get("spec_key") != key:
            self._count_corrupt()
            return None
        try:
            return result_from_dict(record["result"])
        except (ReproError, KeyError, TypeError, ValueError):
            self._count_corrupt()
            return None

    def _count_corrupt(self) -> None:
        self.stats.corrupt += 1
        self.telemetry.counter("store.corrupt").inc()

    def _write_record(self, key: str, result: ExperimentResult) -> None:
        assert self.path is not None
        self.path.mkdir(parents=True, exist_ok=True)
        record = {
            "store_schema": STORE_SCHEMA_VERSION,
            "spec_key": key,
            "result": result_to_dict(result),
        }
        payload = json.dumps(record, indent=2)
        _atomic_write(self._record_path(key), payload)


# ----------------------------------------------------------------------
# the process-wide default store
# ----------------------------------------------------------------------

_default_store = ResultStore()


def get_default_store() -> ResultStore:
    """The store :func:`repro.core.experiment.run_experiment` uses when
    none is passed explicitly."""
    return _default_store


def set_default_store(store: ResultStore) -> ResultStore:
    """Replace the process-wide default store; returns the old one."""
    global _default_store
    previous = _default_store
    _default_store = store
    return previous

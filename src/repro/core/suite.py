"""Declarative experiment suites.

An :class:`ExperimentSuite` names a whole grid of experiments: a base
:class:`~repro.core.experiment.ExperimentSpec` plus ordered axes of
spec-field overrides, under a label.  A :class:`SuiteRunner` executes a
suite through a :class:`~repro.core.executor.SweepExecutor` and returns
a :class:`SuiteResult` keyed by axis-value tuples, with per-cell
wall-time and failure accounting.

The paper's canonical grids are available as canned suites —
:func:`sharing_policy_suite` (sharing degree x scheduler, the grid
behind Figures 5-13) and :func:`mixes_suite` (one cell per Table IV
mix) — and by name through :data:`SUITES` / :func:`get_suite`, which
is what ``repro suite <name>`` on the command line resolves against.

Example
-------
>>> from repro import ExperimentSpec, ExperimentSuite, SuiteRunner
>>> suite = ExperimentSuite.build(
...     "small-grid", ExperimentSpec(mix="mix5", measured_refs=1000),
...     sharing=["private", "shared-4"], policy=["rr", "affinity"])
>>> outcome = SuiteRunner(jobs=4).run(suite)       # doctest: +SKIP
>>> outcome.results[("private", "rr")].final_time  # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .executor import CellOutcome, ProgressCallback, SweepExecutor
from .experiment import ExperimentResult, ExperimentSpec

__all__ = [
    "ExperimentSuite",
    "SuiteResult",
    "SuiteRunner",
    "sharing_policy_suite",
    "mixes_suite",
    "qos_suite",
    "sched_suite",
    "SUITES",
    "suite_names",
    "get_suite",
]


@dataclass(frozen=True)
class ExperimentSuite:
    """A named grid: base spec x ordered axes of field overrides."""

    name: str
    base: ExperimentSpec
    axes: Tuple[Tuple[str, Tuple[object, ...]], ...]
    description: str = ""

    @classmethod
    def build(
        cls,
        name: str,
        base: ExperimentSpec,
        description: str = "",
        **axes: Sequence,
    ) -> "ExperimentSuite":
        """Validating constructor; axes keep keyword order."""
        if not axes:
            raise ConfigurationError(
                f"suite {name!r} needs at least one axis"
            )
        valid = set(ExperimentSpec.__dataclass_fields__)
        frozen_axes = []
        for axis_name, values in axes.items():
            if axis_name not in valid:
                raise ConfigurationError(
                    f"{axis_name!r} is not an ExperimentSpec field; "
                    f"valid fields: {sorted(valid)}"
                )
            values = tuple(values)
            if not values:
                raise ConfigurationError(
                    f"axis {axis_name!r} of suite {name!r} is empty"
                )
            frozen_axes.append((axis_name, values))
        return cls(name=name, base=base, axes=tuple(frozen_axes),
                   description=description)

    @property
    def axis_names(self) -> Tuple[str, ...]:
        return tuple(axis_name for axis_name, _values in self.axes)

    def __len__(self) -> int:
        """Number of grid cells."""
        size = 1
        for _axis_name, values in self.axes:
            size *= len(values)
        return size

    def cells(self) -> List[Tuple[tuple, ExperimentSpec]]:
        """Every ``(key, spec)`` cell in cartesian (row-major) order."""
        out: List[Tuple[tuple, ExperimentSpec]] = []

        def recurse(prefix: tuple, remaining: int) -> None:
            if remaining == len(self.axes):
                overrides = dict(zip(self.axis_names, prefix))
                out.append((prefix, replace(self.base, **overrides)))
                return
            _axis_name, values = self.axes[remaining]
            for value in values:
                recurse(prefix + (value,), remaining + 1)

        recurse((), 0)
        return out


@dataclass
class SuiteResult:
    """Everything a suite run produced, keyed by axis-value tuples."""

    suite: ExperimentSuite
    outcomes: Dict[tuple, CellOutcome]

    @property
    def results(self) -> Dict[tuple, ExperimentResult]:
        """Successful cells only."""
        return {
            key: outcome.result
            for key, outcome in self.outcomes.items()
            if outcome.ok
        }

    @property
    def failures(self) -> Dict[tuple, str]:
        """Tracebacks of failed cells (empty when everything ran)."""
        return {
            key: outcome.error
            for key, outcome in self.outcomes.items()
            if not outcome.ok
        }

    @property
    def cached_cells(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.from_cache)

    @property
    def total_wall_time(self) -> float:
        """Summed per-cell simulation time (cache hits contribute 0)."""
        return sum(o.wall_time for o in self.outcomes.values()
                   if not o.from_cache)

    def result(self, *key) -> ExperimentResult:
        """One cell's result; raises if that cell failed."""
        outcome = self.outcomes[tuple(key)]
        if not outcome.ok:
            raise ConfigurationError(
                f"suite cell {tuple(key)!r} failed:\n{outcome.error}"
            )
        return outcome.result

    def grid(
        self, metric: Callable[[ExperimentResult], float]
    ) -> Dict[tuple, float]:
        """Apply a scalar extractor to every successful cell."""
        return {key: float(metric(result))
                for key, result in self.results.items()}


class SuiteRunner:
    """Execute suites through a (possibly parallel) executor.

    Either pass a preconfigured :class:`SweepExecutor`, or let the
    runner build one from ``jobs`` / ``store`` / ``progress``.
    """

    def __init__(
        self,
        executor: Optional[SweepExecutor] = None,
        *,
        jobs: int = 1,
        store=None,
        progress: Optional[ProgressCallback] = None,
    ):
        self.executor = executor or SweepExecutor(
            jobs=jobs, store=store, progress=progress
        )

    def run(
        self,
        suite: ExperimentSuite,
        executor: Optional[SweepExecutor] = None,
    ) -> SuiteResult:
        executor = executor or self.executor
        outcomes = executor.run(suite.cells())
        return SuiteResult(
            suite=suite,
            outcomes={outcome.key: outcome for outcome in outcomes},
        )


# ----------------------------------------------------------------------
# canned suites (the paper's grids)
# ----------------------------------------------------------------------

def sharing_policy_suite(
    mix: str = "mix5",
    sharings: Sequence[str] = None,
    policies: Sequence[str] = ("rr", "affinity"),
    base: Optional[ExperimentSpec] = None,
) -> ExperimentSuite:
    """The paper's canonical grid: L2 sharing degree x scheduler."""
    from .sweeps import ALL_SHARINGS

    sharings = ALL_SHARINGS if sharings is None else sharings
    base = base or ExperimentSpec(mix=mix)
    base = replace(base, mix=mix)
    return ExperimentSuite.build(
        f"sharing-policy/{mix}", base,
        description=(
            "Sharing degree x scheduling policy for one mix "
            "(the grid behind Figs. 5-13)"
        ),
        sharing=list(sharings), policy=list(policies),
    )


def mixes_suite(
    mixes: Iterable[str] = None,
    base: Optional[ExperimentSpec] = None,
) -> ExperimentSuite:
    """One cell per Table IV mix, other parameters held at ``base``."""
    from .mixes import HETEROGENEOUS_MIXES

    mixes = list(HETEROGENEOUS_MIXES) if mixes is None else list(mixes)
    base = base or ExperimentSpec(mix=mixes[0])
    return ExperimentSuite.build(
        "mixes", base,
        description="One experiment per workload mix",
        mix=mixes,
    )


def qos_suite(
    mix: str = "mix5",
    policies: Sequence[str] = None,
    base: Optional[ExperimentSpec] = None,
) -> ExperimentSuite:
    """One cell per cache-QoS policy on a fully shared L2.

    The empty-string cell is the uncontrolled run every policy is
    compared against; ``target-slowdown`` is omitted by default because
    it needs an explicit ``qos_target``.
    """
    if policies is None:
        policies = ["", "static-equal", "missrate-prop", "ucp"]
    base = base or ExperimentSpec(mix=mix)
    # a fully shared L2 puts every VM in one domain, so the policies
    # have capacity to arbitrate; shared-4 + affinity would give each
    # VM a private domain and reduce every policy to a no-op
    base = replace(base, mix=mix, sharing="shared", l2_vm_quota=False)
    return ExperimentSuite.build(
        f"qos/{mix}", base,
        description=(
            "Cache-QoS policy comparison on a fully shared L2 "
            "('' = uncontrolled)"
        ),
        qos_policy=list(policies),
    )


def sched_suite(
    mix: str = "mix5",
    policies: Sequence[str] = None,
    base: Optional[ExperimentSpec] = None,
) -> ExperimentSuite:
    """One cell per scheduling policy on a fully shared L2.

    The empty-string cell is the legacy statically-placed run every
    adaptive policy is compared against (``"static"`` would add the
    hook but never migrate — byte-identical results, useful only for
    overhead measurements).  ``hetero`` is omitted by default because
    it is a no-op on a homogeneous machine; add it with an explicit
    ``core_speeds`` in ``base``.
    """
    if policies is None:
        policies = ["", "contention", "adaptive"]
    base = base or ExperimentSpec(mix=mix)
    # fully shared L2 for the same reason as qos_suite: every VM in
    # one domain, so contention signals have something to measure
    base = replace(base, mix=mix, sharing="shared")
    return ExperimentSuite.build(
        f"sched/{mix}", base,
        description=(
            "Scheduling-policy comparison on a fully shared L2 "
            "('' = static legacy run)"
        ),
        sched_policy=list(policies),
    )


SUITES: Dict[str, Callable[..., ExperimentSuite]] = {
    "sharing-policy": sharing_policy_suite,
    "mixes": mixes_suite,
    "qos": qos_suite,
    "sched": sched_suite,
}
"""Canned suite factories addressable by name (``repro suite <name>``)."""


def suite_names() -> List[str]:
    return sorted(SUITES)


def get_suite(name: str, **params) -> ExperimentSuite:
    """Build a canned suite by registry name."""
    try:
        factory = SUITES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown suite {name!r}; available: {', '.join(suite_names())}"
        ) from None
    return factory(**params)

"""Programmatic experiment sweeps.

The benchmarks and examples repeatedly run grids of experiments —
sharing degree x policy, mix x policy, capacity sweeps.  These helpers
express the grids declaratively, reuse the experiment cache, and
return results keyed by the swept coordinates.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .experiment import ExperimentResult, ExperimentSpec, run_experiment

__all__ = [
    "ALL_SHARINGS",
    "ALL_POLICIES",
    "sweep",
    "sweep_sharing_policy",
    "sweep_mixes",
    "extract_grid",
]

ALL_SHARINGS: Tuple[str, ...] = (
    "private", "shared-2", "shared-4", "shared-8", "shared",
)
ALL_POLICIES: Tuple[str, ...] = ("rr", "affinity", "rr-aff", "random")


def sweep(
    base: ExperimentSpec,
    **axes: Sequence,
) -> Dict[tuple, ExperimentResult]:
    """Run the cartesian product of spec-field overrides.

    Example
    -------
    >>> grid = sweep(ExperimentSpec(mix="mixC", measured_refs=1000),
    ...              policy=["rr", "affinity"],
    ...              sharing=["shared-4", "private"])  # doctest: +SKIP

    Returns results keyed by tuples of axis values in keyword order.
    """
    if not axes:
        raise ConfigurationError("sweep needs at least one axis")
    field_names = list(axes)
    valid = set(ExperimentSpec.__dataclass_fields__)
    for name in field_names:
        if name not in valid:
            raise ConfigurationError(
                f"{name!r} is not an ExperimentSpec field; "
                f"valid fields: {sorted(valid)}"
            )
    results: Dict[tuple, ExperimentResult] = {}

    def recurse(prefix: tuple, remaining: List[str]) -> None:
        if not remaining:
            overrides = dict(zip(field_names, prefix))
            results[prefix] = run_experiment(replace(base, **overrides))
            return
        axis = remaining[0]
        for value in axes[axis]:
            recurse(prefix + (value,), remaining[1:])

    recurse((), field_names)
    return results


def sweep_sharing_policy(
    mix: str,
    sharings: Sequence[str] = ALL_SHARINGS,
    policies: Sequence[str] = ("rr", "affinity"),
    base: Optional[ExperimentSpec] = None,
) -> Dict[Tuple[str, str], ExperimentResult]:
    """The paper's canonical grid: sharing degree x scheduler."""
    base = base or ExperimentSpec(mix=mix)
    base = replace(base, mix=mix)
    return sweep(base, sharing=list(sharings), policy=list(policies))


def sweep_mixes(
    mixes: Iterable[str],
    base: Optional[ExperimentSpec] = None,
) -> Dict[Tuple[str], ExperimentResult]:
    """One run per mix, other parameters held at ``base``'s values."""
    base = base or ExperimentSpec(mix="mixA")
    return sweep(base, mix=list(mixes))


def extract_grid(
    results: Dict[tuple, ExperimentResult],
    metric: Callable[[ExperimentResult], float],
) -> Dict[tuple, float]:
    """Apply a scalar extractor to every cell of a sweep result."""
    return {key: float(metric(result)) for key, result in results.items()}

"""Programmatic experiment sweeps.

The benchmarks and examples repeatedly run grids of experiments —
sharing degree x policy, mix x policy, capacity sweeps.  These helpers
express the grids declaratively and return results keyed by the swept
coordinates.

Since the executor redesign, every sweep routes through
:class:`~repro.core.executor.SweepExecutor`: pass ``jobs=N`` to fan the
grid out over ``N`` worker processes, and ``store=`` (or configure the
default store with a disk tier) to make completed cells persistent —
re-running a sweep with a warm store re-simulates nothing.  The
functional surface is unchanged: the same dict of
:class:`~repro.core.experiment.ExperimentResult` keyed by axis-value
tuples, and a cell failure raises :class:`~repro.errors.SweepError`
after the rest of the grid has completed.

The declarative layer on top of this — named suites with canned paper
grids — lives in :mod:`repro.core.suite`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from ..errors import ConfigurationError, SweepError
from .executor import ProgressCallback, SweepExecutor
from .experiment import ExperimentResult, ExperimentSpec

__all__ = [
    "ALL_SHARINGS",
    "ALL_POLICIES",
    "sweep",
    "sweep_sharing_policy",
    "sweep_mixes",
    "extract_grid",
]

ALL_SHARINGS: Tuple[str, ...] = (
    "private", "shared-2", "shared-4", "shared-8", "shared",
)
ALL_POLICIES: Tuple[str, ...] = ("rr", "affinity", "rr-aff", "random")


def _run_cells(cells, *, jobs, store, progress, executor):
    """Execute cells and convert failures into one SweepError."""
    executor = executor or SweepExecutor(jobs=jobs, store=store,
                                         progress=progress)
    outcomes = executor.run(cells)
    failures = {o.key: o.error for o in outcomes if not o.ok}
    if failures:
        raise SweepError(failures)
    return {o.key: o.result for o in outcomes}


def sweep(
    base: ExperimentSpec,
    *,
    jobs: int = 1,
    store=None,
    progress: Optional[ProgressCallback] = None,
    executor: Optional[SweepExecutor] = None,
    **axes: Sequence,
) -> Dict[tuple, ExperimentResult]:
    """Run the cartesian product of spec-field overrides.

    Example
    -------
    >>> grid = sweep(ExperimentSpec(mix="mixC", measured_refs=1000),
    ...              jobs=4,
    ...              policy=["rr", "affinity"],
    ...              sharing=["shared-4", "private"])  # doctest: +SKIP

    Returns results keyed by tuples of axis values in keyword order.
    ``jobs``, ``store``, ``progress`` and ``executor`` configure the
    underlying :class:`~repro.core.executor.SweepExecutor`; any cell
    failure raises :class:`~repro.errors.SweepError` once the whole
    grid has been attempted.
    """
    from .suite import ExperimentSuite

    if not axes:
        raise ConfigurationError("sweep needs at least one axis")
    suite = ExperimentSuite.build("sweep", base, **axes)
    return _run_cells(suite.cells(), jobs=jobs, store=store,
                      progress=progress, executor=executor)


def sweep_sharing_policy(
    mix: str,
    sharings: Sequence[str] = ALL_SHARINGS,
    policies: Sequence[str] = ("rr", "affinity"),
    base: Optional[ExperimentSpec] = None,
    *,
    jobs: int = 1,
    store=None,
    progress: Optional[ProgressCallback] = None,
    executor: Optional[SweepExecutor] = None,
) -> Dict[Tuple[str, str], ExperimentResult]:
    """The paper's canonical grid: sharing degree x scheduler.

    A thin wrapper over the :func:`repro.core.suite.sharing_policy_suite`
    canned suite, kept for its stable dict-returning signature.
    """
    from .suite import sharing_policy_suite

    suite = sharing_policy_suite(mix, sharings=sharings, policies=policies,
                                 base=base)
    return _run_cells(suite.cells(), jobs=jobs, store=store,
                      progress=progress, executor=executor)


def sweep_mixes(
    mixes: Iterable[str],
    base: Optional[ExperimentSpec] = None,
    *,
    jobs: int = 1,
    store=None,
    progress: Optional[ProgressCallback] = None,
    executor: Optional[SweepExecutor] = None,
) -> Dict[Tuple[str], ExperimentResult]:
    """One run per mix, other parameters held at ``base``'s values."""
    from .suite import mixes_suite

    suite = mixes_suite(list(mixes), base=base)
    return _run_cells(suite.cells(), jobs=jobs, store=store,
                      progress=progress, executor=executor)


def extract_grid(
    results: Dict[tuple, ExperimentResult],
    metric: Callable[[ExperimentResult], float],
) -> Dict[tuple, float]:
    """Apply a scalar extractor to every cell of a sweep result."""
    return {key: float(metric(result)) for key, result in results.items()}

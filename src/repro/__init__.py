"""repro — a reproduction of *An Evaluation of Server Consolidation
Workloads for Multi-Core Designs* (Enright Jerger, Vantrease, Lipasti;
IISWC 2007).

The package simulates multi-threaded commercial workloads (TPC-W,
TPC-H, SPECjbb, SPECweb) consolidated on a 16-core CMP with a
configurable last-level-cache sharing degree and thread-scheduling
policy, and reproduces every table and figure of the paper's
evaluation.

Quickstart
----------
>>> from repro import ExperimentSpec, run_experiment
>>> result = run_experiment(ExperimentSpec(mix="mix5", sharing="shared-4",
...                                        policy="affinity",
...                                        measured_refs=2000))
>>> [vm.workload for vm in result.vm_metrics]
['specjbb', 'specjbb', 'tpch', 'tpch']

See ``examples/`` for full studies and ``benchmarks/`` for the
per-table/figure reproduction harness.

Stability
---------
The names re-exported here are the package's stable surface; the ones
used in every study are :func:`run_experiment`,
:class:`ExperimentSpec`, :func:`resolve_defaults`, and the engine
factory :func:`make_engine` / :class:`EngineRequest` (see
``docs/engines.md``).  They follow the package version: breaking
changes bump the major version and go through a deprecation cycle.
Anything importable only from a submodule is internal and may change
without notice.
"""

from .core import (
    DEFAULT_SCALE,
    CellOutcome,
    ExperimentResult,
    ExperimentSpec,
    ExperimentSuite,
    MIXES,
    Mix,
    ResultStore,
    SuiteResult,
    SuiteRunner,
    SweepExecutor,
    VMMetrics,
    clear_result_cache,
    get_default_store,
    get_mix,
    get_suite,
    isolated_mix,
    make_scheduler,
    mixes_suite,
    normalize_result,
    normalized_miss_latency,
    normalized_miss_rate,
    normalized_runtime,
    replicate,
    resolve_defaults,
    run_experiment,
    run_isolated,
    set_default_store,
    sharing_policy_suite,
    spec_key,
    suite_names,
    sweep,
    sweep_mixes,
    sweep_sharing_policy,
)
from .errors import (
    CheckpointError,
    CoherenceError,
    ConfigurationError,
    ReproError,
    SchedulingError,
    ServiceError,
    SimulationError,
    SweepError,
    WorkloadError,
)
from .machine import Chip, MachineConfig, SharingDegree
from .obs import (
    EpochProbe,
    NullTelemetry,
    Telemetry,
    TimeSeries,
    TraceBuffer,
    TraceEvent,
    export_chrome_trace,
)
from .qos import (
    QosController,
    QosHook,
    QosReport,
    controller_names,
    make_controller,
    qos_report,
)
from .service import (
    Job,
    JobQueue,
    JobScheduler,
    JobState,
    ServiceClient,
    ServiceServer,
)
from .sim import EngineRequest, engine_modes, make_engine, register_engine
from .workloads import (
    WORKLOADS,
    WorkloadProfile,
    get_profile,
    measure_workload_statistics,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_SCALE",
    "CellOutcome",
    "ExperimentResult",
    "ExperimentSpec",
    "ExperimentSuite",
    "MIXES",
    "Mix",
    "ResultStore",
    "SuiteResult",
    "SuiteRunner",
    "SweepExecutor",
    "VMMetrics",
    "clear_result_cache",
    "get_default_store",
    "get_mix",
    "get_suite",
    "isolated_mix",
    "make_scheduler",
    "mixes_suite",
    "normalize_result",
    "normalized_miss_latency",
    "normalized_miss_rate",
    "normalized_runtime",
    "replicate",
    "resolve_defaults",
    "run_experiment",
    "run_isolated",
    "set_default_store",
    "sharing_policy_suite",
    "spec_key",
    "suite_names",
    "sweep",
    "sweep_mixes",
    "sweep_sharing_policy",
    "EngineRequest",
    "engine_modes",
    "make_engine",
    "register_engine",
    "SweepError",
    "CheckpointError",
    "CoherenceError",
    "ConfigurationError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "WorkloadError",
    "Chip",
    "MachineConfig",
    "SharingDegree",
    "EpochProbe",
    "NullTelemetry",
    "Telemetry",
    "TimeSeries",
    "TraceBuffer",
    "TraceEvent",
    "export_chrome_trace",
    "Job",
    "JobQueue",
    "JobScheduler",
    "JobState",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "QosController",
    "QosHook",
    "QosReport",
    "controller_names",
    "make_controller",
    "qos_report",
    "WORKLOADS",
    "WorkloadProfile",
    "get_profile",
    "measure_workload_statistics",
    "workload_names",
    "__version__",
]

"""Command-line interface.

``python -m repro <command>`` drives the library without writing code:

``run``
    One consolidation experiment; prints the per-VM metric table and
    optionally saves the full result as JSON.  ``--telemetry``
    ``--epoch N`` additionally samples per-VM time series every N
    simulated cycles and prints a phase timeline.
``sweep``
    A sharing-degree x scheduling-policy sweep for one mix; ``--jobs N``
    fans the grid out over worker processes and ``--store PATH`` keeps a
    persistent result store so re-runs simulate nothing.
    ``--telemetry`` records executor spans and store counters;
    ``--epoch N`` epoch-samples every cold cell into store sidecars.
``qos``
    One experiment under a dynamic cache-QoS policy (``--policy ucp``,
    ``--policy target-slowdown --target 1.3``, ...) with a scorecard:
    per-VM slowdown, weighted/harmonic speedup, fairness, violations.
``sched``
    Compare scheduling policies on one mix (the paper's static
    placements vs. the adaptive policies of :mod:`repro.sched`), with
    per-policy weighted/harmonic speedup, fairness, and migration
    counts plus a best-static vs. best-adaptive verdict; takes the
    heterogeneity / over-commit / churn shape flags.
``suite``
    Run a canned experiment suite by name (``repro suite list`` shows
    the registry); takes the same ``--jobs`` / ``--store`` flags.
``trace``
    Run one experiment with epoch probes and event tracing enabled and
    export a Chrome-trace JSON (loadable in Perfetto /
    ``chrome://tracing``).
``profile``
    Run a suite with wall-clock executor spans and export the Chrome
    trace of where the sweep spent its time.
``serve``
    Run the long-lived simulation service: an HTTP job API over a
    shared result store with a durable job journal (see
    ``docs/service.md``); ``--concurrency N`` runs N jobs at once.
``fleet``
    Run N worker services behind a consistent-hash routing front end
    with health checks, journal-replay failover and aggregated
    ``/metrics`` (see ``docs/service.md``).
``submit``
    Submit an experiment grid to a running service (and optionally
    wait for the results).
``jobs``
    List a running service's jobs, or show one job's record.
``loadgen``
    Open-loop Poisson load generation against a running service or
    fleet: offered-rate sweep, exact p50/p95/p99 latency, records
    appended to ``BENCH_service.json``.
``bench``
    Run the fixed benchmark basket and append machine-readable
    records to ``BENCH_kernel.json`` / ``BENCH_sweep.json`` /
    ``BENCH_service.json`` (the repo-root performance trajectory);
    ``--quick`` runs a seconds-long CI-sized basket.
``stats``
    The Table II characterization of one workload.
``workloads``
    The workload registry (Table I prose + model parameters).
``mixes``
    The Table IV mix matrix.

Run sizes and seeds are explicit flags (``--refs``, ``--seed``); the
old ``REPRO_REFS`` / ``REPRO_SEED`` environment knobs were removed
and now raise a configuration error when set.  Simulation commands
take ``--engine`` to pick the kernel (``auto``, ``reference``,
``batched`` — see ``docs/engines.md``).  Telemetry never changes
simulation results (see ``docs/observability.md``).

Exit codes are uniform across commands: ``0`` success, ``2`` library
error (bad configuration, failed sweep cells, service rejection),
``3`` I/O error (unreadable/unwritable files, unreachable service),
``130`` interrupted.  Argparse keeps its own ``2`` for usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.report import format_kv, format_series, format_table
from .core.experiment import ExperimentSpec, run_experiment
from .core.isolation import normalize_result
from .core.mixes import MIXES
from .errors import ReproError
from .workloads.calibrate import measure_workload_statistics
from .workloads.library import WORKLOADS

__all__ = ["main", "build_parser", "EXIT_OK", "EXIT_ERROR", "EXIT_IO",
           "EXIT_INTERRUPTED"]

_SHARINGS = ("private", "shared-2", "shared-4", "shared-8", "shared")
_POLICIES = ("rr", "affinity", "rr-aff", "random")

EXIT_OK = 0
EXIT_ERROR = 2
EXIT_IO = 3
EXIT_INTERRUPTED = 130


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Server-consolidation CMP simulator "
            "(IISWC 2007 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one consolidation experiment")
    run_p.add_argument("--mix", default="mix5",
                       help="Table IV mix name or iso-<workload>")
    run_p.add_argument("--sharing", default="shared-4", choices=_SHARINGS)
    run_p.add_argument("--policy", default="affinity", choices=_POLICIES)
    run_p.add_argument("--refs", type=int, default=None,
                       help="measured references per thread")
    run_p.add_argument("--warmup", type=int, default=None)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--scale", type=float, default=None,
                       help="capacity/footprint scale (default 1/16)")
    run_p.add_argument("--cores", type=int, default=16)
    run_p.add_argument("--slots-per-core", type=int, default=1,
                       help=">1 over-commits cores (Section VII study)")
    run_p.add_argument("--stagger", type=int, default=0,
                       help="per-VM start-time stagger in cycles")
    run_p.add_argument("--vm-quota", action="store_true",
                       help="enable per-VM way-quota partitioning")
    _add_qos_flags(run_p)
    _add_sched_flags(run_p)
    _add_engine_flag(run_p)
    run_p.add_argument("--rebind", default="", choices=("", "random",
                                                        "affinity"),
                       help="dynamic thread rebinding policy")
    run_p.add_argument("--rebind-interval", type=int, default=100_000)
    run_p.add_argument("--phase-plan", default="",
                       help="named workload phase plan (e.g. 'burst')")
    run_p.add_argument("--normalize", action="store_true",
                       help="also print paper-style normalized metrics "
                            "(runs the isolation baselines)")
    run_p.add_argument("--output", default=None,
                       help="save the full result as JSON")
    _add_telemetry_flags(run_p)
    run_p.add_argument("--series-out", default=None, metavar="PATH",
                       help="save the sampled time series as JSON")

    sweep_p = sub.add_parser(
        "sweep", help="sharing-degree x policy sweep for one mix")
    sweep_p.add_argument("--mix", default="iso-tpch")
    sweep_p.add_argument("--metric", default="cycles",
                         choices=("cycles", "miss_rate", "miss_latency"))
    sweep_p.add_argument("--refs", type=int, default=None)
    sweep_p.add_argument("--seed", type=int, default=0)
    _add_engine_flag(sweep_p)
    _add_qos_flags(sweep_p)
    _add_sched_flags(sweep_p)
    _add_executor_flags(sweep_p)
    _add_telemetry_flags(sweep_p)

    qos_p = sub.add_parser(
        "qos", help="run one experiment under a cache-QoS policy and "
                    "print its scorecard")
    qos_p.add_argument("--policy", default="ucp",
                       help="QoS controller: static-equal, "
                            "missrate-prop, ucp, or target-slowdown")
    qos_p.add_argument("--mix", default="mix7",
                       help="Table IV mix name")
    qos_p.add_argument("--sharing", default="shared", choices=_SHARINGS,
                       help="L2 sharing degree (default: fully shared, "
                            "so VMs actually contend)")
    qos_p.add_argument("--sched", default="affinity", choices=_POLICIES,
                       help="scheduling policy")
    qos_p.add_argument("--target", type=float, default=0.0,
                       help="slowdown ceiling for target-slowdown "
                            "(e.g. 1.3)")
    qos_p.add_argument("--qos-epoch", type=int, default=10_000,
                       help="control period in simulated cycles")
    qos_p.add_argument("--refs", type=int, default=None)
    qos_p.add_argument("--warmup", type=int, default=None)
    qos_p.add_argument("--seed", type=int, default=0)
    qos_p.add_argument("--slots-per-core", type=int, default=1,
                       help=">1 over-commits cores; enables "
                            "controller-driven thread re-binding")
    qos_p.add_argument("--baseline", action="store_true",
                       help="also run the uncontrolled shared-L2 run "
                            "and print the comparison")
    qos_p.add_argument("--json", default=None, metavar="PATH",
                       help="save the scorecard as JSON")

    sched_p = sub.add_parser(
        "sched", help="compare scheduling policies (static placements "
                      "vs. adaptive) on one mix")
    sched_p.add_argument("--mix", default="mix7",
                         help="Table IV mix name")
    sched_p.add_argument("--policies", default="static,contention,adaptive",
                         help="comma-separated scheduling policies; "
                              "'static' expands to one cell per "
                              "placement policy")
    sched_p.add_argument("--placement", default="affinity",
                         choices=_POLICIES,
                         help="initial placement for the adaptive cells")
    sched_p.add_argument("--sharing", default="shared", choices=_SHARINGS,
                         help="L2 sharing degree (default: fully shared)")
    sched_p.add_argument("--sched-epoch", type=int, default=10_000,
                         help="scheduling control period in cycles")
    sched_p.add_argument("--cores", type=int, default=16)
    sched_p.add_argument("--slots-per-core", type=int, default=1,
                         help=">1 over-commits cores")
    sched_p.add_argument("--core-speeds", default="",
                         help="per-core speed classes, e.g. "
                              "'1.0x8,0.5x8' (empty = homogeneous)")
    sched_p.add_argument("--l2-asym", default="",
                         help="per-domain L2 associativities, e.g. "
                              "'16x2,8x2' (empty = uniform)")
    sched_p.add_argument("--vm-schedule", default="",
                         help="per-VM start[:stop] cycles, "
                              "comma-separated (VM churn)")
    sched_p.add_argument("--refs", type=int, default=None)
    sched_p.add_argument("--warmup", type=int, default=None)
    sched_p.add_argument("--seed", type=int, default=0)
    sched_p.add_argument("--json", default=None, metavar="PATH",
                         help="save the comparison + verdict as JSON")
    sched_p.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="write the accumulated sched.* telemetry "
                              "counters in Prometheus text format")

    scn_p = sub.add_parser(
        "scenario", help="run a time-varying consolidation scenario and "
                         "score policies against it")
    scn_p.add_argument("name", nargs="?", default=None,
                       help="scenario name (see --list), or omit with "
                            "--file / --list / --calibrate")
    scn_p.add_argument("--list", action="store_true", dest="list_scenarios",
                       help="list registered scenarios and exit")
    scn_p.add_argument("--calibrate", action="store_true",
                       help="print the Table-II-style calibration table "
                            "for the scenario workload families and exit")
    scn_p.add_argument("--file", default=None, metavar="PATH",
                       help="load a JSON scenario file (registers it "
                            "under its own name)")
    scn_p.add_argument("--export", default=None, metavar="PATH",
                       help="write the selected scenario as JSON and exit")
    scn_p.add_argument("--policies", default="static,contention,adaptive",
                       help="comma-separated scheduling policies; "
                            "'static' expands to one cell per "
                            "placement policy")
    scn_p.add_argument("--placement", default="affinity",
                       choices=_POLICIES,
                       help="initial placement for the adaptive cells")
    scn_p.add_argument("--sharing", default="shared-4", choices=_SHARINGS,
                       help="L2 sharing degree (default: shared-4, so "
                            "domain-aware policies have domains to act "
                            "on)")
    scn_p.add_argument("--slots-per-core", type=int, default=2,
                       dest="slots_per_core", metavar="N",
                       help="run-queue slots per core (default: 2 — "
                            "consolidation scenarios over-commit the "
                            "machine; pass 1 for the paper's "
                            "one-thread-per-core shape)")
    scn_p.add_argument("--sched-epoch", type=int, default=10_000,
                       help="scheduling control period in cycles "
                            "(the scenario's own epoch drives its "
                            "load/phase actuation)")
    scn_p.add_argument("--cores", type=int, default=16)
    scn_p.add_argument("--refs", type=int, default=None)
    scn_p.add_argument("--warmup", type=int, default=None)
    scn_p.add_argument("--seed", type=int, default=0)
    scn_p.add_argument("--windows", action="store_true",
                       help="also print the per-window load/issued "
                            "attribution of the first adaptive cell")
    scn_p.add_argument("--json", default=None, metavar="PATH",
                       help="save the scorecard + verdict as JSON")
    scn_p.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the accumulated scenario.*/sched.* "
                            "telemetry counters in Prometheus text "
                            "format")

    suite_p = sub.add_parser(
        "suite", help="run a canned experiment suite by name")
    suite_p.add_argument("name",
                         help="registry name (use 'list' to see them)")
    suite_p.add_argument("--mix", default="mix5",
                         help="mix for suites parameterized by one mix")
    suite_p.add_argument("--mixes", default=None,
                         help="comma-separated mixes for the 'mixes' suite")
    suite_p.add_argument("--metric", default="cycles",
                         choices=("cycles", "miss_rate", "miss_latency"))
    suite_p.add_argument("--refs", type=int, default=None)
    suite_p.add_argument("--seed", type=int, default=0)
    _add_executor_flags(suite_p)

    trace_p = sub.add_parser(
        "trace", help="run one experiment and export a Chrome trace "
                      "(Perfetto / chrome://tracing), or with --job "
                      "collect a distributed job trace from span logs")
    trace_p.add_argument("--job", default=None, metavar="JOB_ID",
                         help="collect this job's distributed trace from "
                              "--trace-dir span logs instead of running "
                              "an experiment")
    trace_p.add_argument("--trace-dir", default=None, metavar="DIR",
                         help="span-log directory written by a traced "
                              "serve/fleet (required with --job)")
    trace_p.add_argument("--mix", default="mix5",
                         help="Table IV mix name or iso-<workload>")
    trace_p.add_argument("--sharing", default="shared-4", choices=_SHARINGS)
    trace_p.add_argument("--policy", default="affinity", choices=_POLICIES)
    trace_p.add_argument("--refs", type=int, default=None)
    trace_p.add_argument("--warmup", type=int, default=None)
    trace_p.add_argument("--seed", type=int, default=0)
    trace_p.add_argument("--epoch", type=int, default=5000,
                         help="sampling period in simulated cycles "
                              "(default 5000)")
    trace_p.add_argument("--out", default="trace.json", metavar="PATH",
                         help="Chrome-trace JSON output path")
    trace_p.add_argument("--series-out", default=None, metavar="PATH",
                         help="also save the raw time series as JSON")

    profile_p = sub.add_parser(
        "profile", help="run a suite with wall-clock spans and export "
                        "the executor's Chrome trace")
    profile_p.add_argument("name", nargs="?", default="sharing-policy",
                           help="suite registry name (default "
                                "sharing-policy)")
    profile_p.add_argument("--mix", default="mix5",
                           help="mix for suites parameterized by one mix")
    profile_p.add_argument("--mixes", default=None,
                           help="comma-separated mixes for the 'mixes' "
                                "suite")
    profile_p.add_argument("--refs", type=int, default=None)
    profile_p.add_argument("--seed", type=int, default=0)
    profile_p.add_argument("--epoch", type=int, default=0,
                           help="also epoch-sample every cold cell "
                                "(0 = off)")
    profile_p.add_argument("--out", default="profile.json", metavar="PATH",
                           help="Chrome-trace JSON output path")
    _add_executor_flags(profile_p)

    serve_p = sub.add_parser(
        "serve", help="run the long-lived simulation service "
                      "(HTTP job API; see docs/service.md)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8765,
                         help="bind port (0 picks a free one)")
    serve_p.add_argument("--store", default=None, metavar="PATH",
                         help="persistent result-store directory "
                              "(default: memory-only)")
    serve_p.add_argument("--journal", default=None, metavar="PATH",
                         help="durable job journal; jobs survive "
                              "restarts and crashes")
    serve_p.add_argument("--jobs", type=int, default=1,
                         help="executor worker processes per job")
    serve_p.add_argument("--concurrency", type=int, default=1,
                         help="jobs executed at once by the scheduler")
    serve_p.add_argument("--queue-limit", type=int, default=64,
                         help="pending jobs admitted before 429 "
                              "backpressure")
    serve_p.add_argument("--rate", type=float, default=0.0,
                         help="per-client requests/second "
                              "(0 = unlimited)")
    serve_p.add_argument("--burst", type=int, default=20,
                         help="per-client burst size for --rate")
    serve_p.add_argument("--behind-proxy", action="store_true",
                         help="trust X-Client-Id/X-Forwarded-For for "
                              "rate-limit identity (only safe when "
                              "every peer is a trusted proxy)")
    serve_p.add_argument("--max-attempts", type=int, default=3,
                         help="job attempts before quarantine")
    serve_p.add_argument("--backoff", type=float, default=0.5,
                         help="base retry backoff in seconds")
    serve_p.add_argument("--trace-dir", default=None, metavar="DIR",
                         help="write distributed-tracing span logs here "
                              "(default: tracing off)")

    fleet_p = sub.add_parser(
        "fleet", help="run N workers behind a consistent-hash routing "
                      "front end (see docs/service.md)")
    fleet_p.add_argument("--workers", type=int, default=2,
                         help="worker process count")
    fleet_p.add_argument("--host", default="127.0.0.1")
    fleet_p.add_argument("--port", type=int, default=8765,
                         help="front-end bind port (0 picks a free one)")
    fleet_p.add_argument("--store", default=None, metavar="PATH",
                         help="shared result-store directory (the "
                              "fleet-wide dedup backbone); default: a "
                              "temporary directory")
    fleet_p.add_argument("--journal-dir", default=None, metavar="DIR",
                         help="per-worker journal directory; reuse it "
                              "across restarts to replay pending jobs")
    fleet_p.add_argument("--replicas", type=int, default=64,
                         help="virtual ring points per worker")
    fleet_p.add_argument("--jobs", type=int, default=1,
                         help="executor worker processes per job, "
                              "per worker")
    fleet_p.add_argument("--concurrency", type=int, default=1,
                         help="concurrent jobs per worker")
    fleet_p.add_argument("--queue-limit", type=int, default=64,
                         help="pending jobs per worker before 429")
    fleet_p.add_argument("--rate", type=float, default=0.0,
                         help="per-client requests/second at each "
                              "worker (0 = unlimited)")
    fleet_p.add_argument("--burst", type=int, default=20,
                         help="per-client burst size for --rate")
    fleet_p.add_argument("--behind-proxy", action="store_true",
                         help="the front end itself sits behind a "
                              "trusted proxy: honour its clients' "
                              "X-Client-Id/X-Forwarded-For headers")
    fleet_p.add_argument("--max-attempts", type=int, default=3,
                         help="job attempts before quarantine")
    fleet_p.add_argument("--backoff", type=float, default=0.5,
                         help="base retry backoff in seconds")
    fleet_p.add_argument("--health-interval", type=float, default=0.25,
                         help="seconds between worker health probes")
    fleet_p.add_argument("--trace-dir", default=None, metavar="DIR",
                         help="write span logs (front end and every "
                              "worker) here; default: tracing off")

    top_p = sub.add_parser(
        "top", help="live dashboard over a running service or fleet's "
                    "/metrics (htop-style, refreshes in place)")
    top_p.add_argument("--url", default="http://127.0.0.1:8765",
                       help="service or fleet base URL")
    top_p.add_argument("--interval", type=float, default=2.0,
                       help="seconds between refreshes")
    top_p.add_argument("--count", type=int, default=0,
                       help="exit after N refreshes (0 = until Ctrl-C)")
    top_p.add_argument("--no-clear", action="store_true",
                       help="append frames instead of clearing the "
                            "screen (for logs/CI)")

    submit_p = sub.add_parser(
        "submit", help="submit an experiment grid to a running service")
    submit_p.add_argument("--url", default="http://127.0.0.1:8765",
                          help="service base URL")
    submit_p.add_argument("--mix", default="mix5",
                          help="Table IV mix name or iso-<workload>")
    submit_p.add_argument("--sharings", default="shared-4",
                          help="comma-separated sharing degrees "
                               "(grid axis)")
    submit_p.add_argument("--policies", default="affinity",
                          help="comma-separated scheduling policies "
                               "(grid axis)")
    submit_p.add_argument("--refs", type=int, default=None)
    submit_p.add_argument("--warmup", type=int, default=None)
    submit_p.add_argument("--seed", type=int, default=0)
    submit_p.add_argument("--priority", type=int, default=10,
                          help="lower runs sooner")
    submit_p.add_argument("--client-id", default="cli",
                          help="client identity for rate limiting")
    submit_p.add_argument("--wait", action="store_true",
                          help="poll until the job finishes and print "
                               "its result keys")
    submit_p.add_argument("--timeout", type=float, default=600.0,
                          help="--wait timeout in seconds")
    submit_p.add_argument("--busy-timeout", type=float, default=0.0,
                          help="keep retrying through 429 responses "
                               "for this many seconds")

    jobs_p = sub.add_parser(
        "jobs", help="list a running service's jobs (or show one)")
    jobs_p.add_argument("job_id", nargs="?", default=None,
                        help="job id for a detailed record")
    jobs_p.add_argument("--url", default="http://127.0.0.1:8765",
                        help="service base URL")

    loadgen_p = sub.add_parser(
        "loadgen", help="open-loop Poisson load against a running "
                        "service or fleet; appends BENCH_service.json")
    loadgen_p.add_argument("--url", default="http://127.0.0.1:8765",
                           help="service or fleet base URL")
    loadgen_p.add_argument("--rate", type=float, default=20.0,
                           help="offered arrivals/second (single run)")
    loadgen_p.add_argument("--rates", default=None, metavar="R1,R2,...",
                           help="comma-separated saturation sweep "
                                "(overrides --rate)")
    loadgen_p.add_argument("--duration", type=float, default=5.0,
                           help="arrival window per run, seconds")
    loadgen_p.add_argument("--warm-fraction", type=float, default=0.5,
                           help="share of arrivals from the warm pool")
    loadgen_p.add_argument("--pool", type=int, default=8,
                           help="distinct pre-primed warm specs")
    loadgen_p.add_argument("--refs", type=int, default=300,
                           help="measured references per generated cell")
    loadgen_p.add_argument("--seed", type=int, default=1)
    loadgen_p.add_argument("--timeout", type=float, default=120.0,
                           help="per-job completion timeout, seconds")
    loadgen_p.add_argument("--workers", type=int, default=None,
                           help="annotate records with the serving "
                                "fleet's worker count")
    loadgen_p.add_argument("--out-dir", default=".", metavar="DIR",
                           help="where BENCH_service.json lives "
                                "(default: cwd)")
    loadgen_p.add_argument("--dry-run", action="store_true",
                           help="print reports without writing records")

    bench_p = sub.add_parser(
        "bench", help="run the benchmark basket and append records to "
                      "BENCH_kernel.json / BENCH_sweep.json")
    bench_p.add_argument("--quick", action="store_true",
                         help="seconds-long CI basket (small runs)")
    bench_p.add_argument("--only", action="append", default=None,
                         metavar="NAME",
                         help="run one benchmark (repeatable); "
                              "'list' prints the basket")
    bench_p.add_argument("--refs", type=int, default=None,
                         help="override every benchmark's run size")
    bench_p.add_argument("--seed", type=int, default=1)
    bench_p.add_argument("--jobs", type=int, default=2,
                         help="worker processes for the sweep benchmark")
    bench_p.add_argument("--out-dir", default=".", metavar="DIR",
                         help="where BENCH_*.json live (default: cwd)")
    bench_p.add_argument("--dry-run", action="store_true",
                         help="print records without writing files")

    stats_p = sub.add_parser(
        "stats", help="Table II characterization of one workload")
    stats_p.add_argument("workload", choices=sorted(WORKLOADS))
    stats_p.add_argument("--refs", type=int, default=None)
    stats_p.add_argument("--seed", type=int, default=0)

    compare_p = sub.add_parser(
        "compare", help="compare two saved result JSON files (b vs a)")
    compare_p.add_argument("result_a")
    compare_p.add_argument("result_b")

    sub.add_parser("workloads", help="list workload profiles")
    sub.add_parser("mixes", help="list Table IV mixes")
    return parser


def _add_executor_flags(parser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial, the default)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="persistent result-store directory; warm "
                             "cells are never re-simulated")
    parser.add_argument("--progress", action="store_true",
                        help="print per-cell progress to stderr")


def _add_engine_flag(parser) -> None:
    parser.add_argument("--engine", default="auto",
                        choices=("auto", "reference", "batched"),
                        help="simulation kernel: 'reference' is the "
                             "event-driven model, 'batched' the "
                             "epoch-folded fast path, 'auto' picks "
                             "batched when the run shape allows "
                             "(see docs/engines.md)")


def _add_qos_flags(parser) -> None:
    parser.add_argument("--qos-policy", default="",
                        help="dynamic cache-QoS controller "
                             "(static-equal, missrate-prop, ucp, "
                             "target-slowdown); empty = off")
    parser.add_argument("--qos-target", type=float, default=0.0,
                        help="slowdown ceiling for target-slowdown")
    parser.add_argument("--qos-epoch", type=int, default=10_000,
                        help="QoS control period in simulated cycles")


def _add_sched_flags(parser) -> None:
    parser.add_argument("--sched-policy", default="",
                        help="adaptive scheduling policy (static, "
                             "contention, adaptive, hetero); "
                             "empty = off")
    parser.add_argument("--sched-epoch", type=int, default=10_000,
                        help="scheduling control period in cycles")
    parser.add_argument("--core-speeds", default="",
                        help="per-core speed classes, e.g. '1.0x8,0.5x8' "
                             "(empty = homogeneous)")
    parser.add_argument("--l2-asym", default="",
                        help="per-domain L2 associativities, e.g. "
                             "'16x2,8x2' (empty = uniform)")
    parser.add_argument("--vm-schedule", default="",
                        help="per-VM start[:stop] cycles, comma-"
                             "separated (VM churn; empty = none)")


def _add_telemetry_flags(parser) -> None:
    parser.add_argument("--telemetry", action="store_true",
                        help="enable the telemetry hub (counters, "
                             "spans, event tracing); simulation "
                             "results are unaffected")
    parser.add_argument("--epoch", type=int, default=0, metavar="N",
                        help="sample per-VM time series every N "
                             "simulated cycles (implies --telemetry)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="export recorded events as Chrome-trace "
                             "JSON (Perfetto-loadable)")


def _make_telemetry(args):
    """A live hub when any telemetry flag was given, else ``None``."""
    epoch = getattr(args, "epoch", 0)
    if not (getattr(args, "telemetry", False) or epoch
            or getattr(args, "trace_out", None)):
        return None
    from .obs import Telemetry

    return Telemetry()


def _make_executor(args, telemetry=None) -> "SweepExecutor":
    from .core.executor import SweepExecutor
    from .core.store import ResultStore

    store = (ResultStore(args.store, telemetry=telemetry)
             if args.store else None)

    def report(done, total, outcome):
        status = ("cached" if outcome.from_cache
                  else "failed" if not outcome.ok
                  else f"{outcome.wall_time:.1f}s")
        print(f"[{done}/{total}] {outcome.key} {status}", file=sys.stderr)

    return SweepExecutor(jobs=args.jobs, store=store,
                         progress=report if args.progress else None,
                         telemetry=telemetry,
                         epoch=getattr(args, "epoch", 0))


def _metric_row(vms, metric: str) -> float:
    if metric == "cycles":
        return sum(vm.cycles for vm in vms) / len(vms)
    if metric == "miss_rate":
        return sum(vm.miss_rate for vm in vms) / len(vms)
    return sum(vm.mean_miss_latency for vm in vms) / len(vms)


def _spec_from_args(args) -> ExperimentSpec:
    params = dict(
        mix=args.mix,
        sharing=args.sharing,
        policy=args.policy,
        seed=args.seed,
        measured_refs=args.refs,
        warmup_refs=args.warmup,
        num_cores=args.cores,
        slots_per_core=args.slots_per_core,
        start_stagger=args.stagger,
        l2_vm_quota=args.vm_quota,
        rebind=args.rebind,
        rebind_interval=args.rebind_interval,
        phase_plan=args.phase_plan,
        qos_policy=args.qos_policy,
        qos_target=args.qos_target,
        qos_epoch=args.qos_epoch,
        sched_policy=args.sched_policy,
        sched_epoch=args.sched_epoch,
        core_speeds=args.core_speeds,
        l2_asym=args.l2_asym,
        vm_schedule=args.vm_schedule,
        engine_mode=args.engine,
    )
    if args.scale is not None:
        params["scale"] = args.scale
    return ExperimentSpec(**params)


def _write_trace(telemetry, path) -> None:
    from .obs import export_chrome_trace

    out = export_chrome_trace(telemetry.trace.events(), path)
    dropped = telemetry.trace.dropped
    note = f" ({dropped} oldest events dropped)" if dropped else ""
    print(f"chrome trace written to {out}{note} — load it at "
          f"https://ui.perfetto.dev or chrome://tracing")


def _print_timeline(series) -> None:
    from .analysis.timeline import timeline_report

    print()
    print(timeline_report(series))


def _cmd_run(args) -> int:
    spec = _spec_from_args(args)
    telemetry = _make_telemetry(args)
    result = run_experiment(spec, telemetry=telemetry, epoch=args.epoch)
    rows = []
    normalized = normalize_result(result) if args.normalize else None
    for index, vm in enumerate(result.vm_metrics):
        row = [f"vm{vm.vm_id}", vm.workload, vm.cycles,
               round(vm.miss_rate, 4), round(vm.mean_miss_latency, 1),
               f"{100 * vm.c2c_fraction:.0f}%"]
        if normalized is not None:
            row += [round(normalized[index].runtime, 3),
                    round(normalized[index].miss_latency, 3)]
        rows.append(row)
    headers = ["VM", "Workload", "Cycles", "Miss rate", "Miss latency",
               "c2c"]
    if normalized is not None:
        headers += ["Norm. runtime", "Norm. miss latency"]
    print(format_table(headers, rows,
                       title=f"{spec.mix} / {spec.sharing} / {spec.policy}"))
    summary = result.chip_summary
    print()
    print(format_kv("Chip summary", {
        "mesh mean latency": f"{summary.mesh_mean_latency:.1f} cyc",
        "mesh queueing": f"{summary.mesh_mean_queueing:.1f} cyc",
        "memory reads": summary.memory_reads,
        "memory writebacks": summary.memory_writebacks,
        "upgrades": summary.upgrades,
        "intra-domain transfers": summary.intra_domain_transfers,
        "directory cache hit rate":
            f"{100 * summary.directory_cache_hit_rate:.1f}%",
    }))
    if result.qos:
        print()
        print(format_kv("QoS", {
            "policy": result.qos.get("policy"),
            "control epochs": result.qos.get("control_epochs", 0),
            "quota adjustments": result.qos.get("quota_adjustments", 0),
            "rebinds": result.qos.get("rebinds", 0),
        }))
    if result.sched:
        print()
        print(format_kv("Scheduling", {
            "policy": result.sched.get("policy"),
            "control epochs": result.sched.get("control_epochs", 0),
            "migrations": result.sched.get("migrations", 0),
            "proposed": result.sched.get("proposed", 0),
            "refused": result.sched.get("refused", 0),
        }))
    if result.series is not None:
        _print_timeline(result.series)
    if args.series_out:
        import json

        with open(args.series_out, "w") as handle:
            json.dump(result.series or {}, handle, indent=1)
        print(f"\ntime series saved to {args.series_out}")
    if telemetry is not None and args.trace_out:
        print()
        _write_trace(telemetry, args.trace_out)
    if args.output:
        from .analysis.persist import save_result

        path = save_result(result, args.output)
        print(f"\nresult saved to {path}")
    return 0


def _cmd_sweep(args) -> int:
    from .core.suite import SuiteRunner, sharing_policy_suite

    telemetry = _make_telemetry(args)
    base = ExperimentSpec(mix=args.mix, seed=args.seed,
                          measured_refs=args.refs,
                          qos_policy=args.qos_policy,
                          qos_target=args.qos_target,
                          qos_epoch=args.qos_epoch,
                          sched_policy=args.sched_policy,
                          sched_epoch=args.sched_epoch,
                          core_speeds=args.core_speeds,
                          l2_asym=args.l2_asym,
                          vm_schedule=args.vm_schedule,
                          engine_mode=args.engine)
    suite = sharing_policy_suite(args.mix, sharings=_SHARINGS,
                                 policies=_POLICIES, base=base)
    outcome = SuiteRunner(_make_executor(args, telemetry)).run(suite)
    _raise_on_failures(outcome)
    series = {}
    for sharing in _SHARINGS:
        series[sharing] = {
            policy: _metric_row(outcome.result(sharing, policy).vm_metrics,
                                args.metric)
            for policy in _POLICIES
        }
    print(format_series(f"{args.mix}: {args.metric} sweep", series))
    if telemetry is not None:
        counters = telemetry.snapshot()["counters"]
        print()
        print(format_kv("Telemetry", {
            "cells simulated": counters.get("executor.simulated", 0),
            "store hits": (counters.get("store.memory_hits", 0)
                           + counters.get("store.disk_hits", 0)),
            "store misses": counters.get("store.misses", 0),
            "trace events": len(telemetry.trace),
        }))
        if args.trace_out:
            print()
            _write_trace(telemetry, args.trace_out)
    return 0


def _cmd_qos(args) -> int:
    from .qos import qos_report

    spec = ExperimentSpec(
        mix=args.mix, sharing=args.sharing, policy=args.sched,
        seed=args.seed, measured_refs=args.refs, warmup_refs=args.warmup,
        slots_per_core=args.slots_per_core,
        qos_policy=args.policy, qos_target=args.target,
        qos_epoch=args.qos_epoch,
    )
    # bypass the cache: the controller's live account (result.qos) is
    # not part of the serialized result, so a cache hit would lose it
    result = run_experiment(spec, use_cache=False)
    report = qos_report(result)

    headers = ["VM", "Workload", "Slowdown"]
    if report.target > 0:
        headers.append("Target")
    rows = [[row[0], row[1], round(row[2], 3)] + row[3:]
            for row in report.rows()]
    print(format_table(
        headers, rows,
        title=f"QoS {args.policy}: {spec.mix} / {spec.sharing}"))
    control = report.control
    scorecard = {
        "weighted speedup": f"{report.weighted_speedup:.3f}",
        "harmonic speedup": f"{report.harmonic_speedup:.3f}",
        "fairness (Jain)": f"{report.fairness:.3f}",
        "max slowdown": f"{report.max_slowdown:.3f}",
        "control epochs": control.get("control_epochs", 0),
        "quota adjustments": control.get("quota_adjustments", 0),
        "rebinds": control.get("rebinds", 0),
    }
    if report.target > 0:
        scorecard["target"] = report.target
        scorecard["violation epochs"] = report.violation_epochs
        scorecard["VMs over target"] = (
            ", ".join(f"vm{v}" for v in report.violating_vms) or "none"
        )
    for domain, quotas in sorted((control.get("final_quotas") or {}).items()):
        scorecard[f"domain {domain} ways"] = ", ".join(
            f"vm{vm}:{ways}"
            for vm, ways in sorted(quotas.items(), key=lambda kv: int(kv[0]))
        )
    print()
    print(format_kv("Scorecard", scorecard))

    if args.baseline:
        from dataclasses import replace

        base_spec = replace(spec, qos_policy="", qos_target=0.0)
        base_report = qos_report(run_experiment(base_spec))
        print()
        print(format_kv("Uncontrolled baseline", {
            "weighted speedup": f"{base_report.weighted_speedup:.3f}",
            "harmonic speedup": f"{base_report.harmonic_speedup:.3f}",
            "fairness (Jain)": f"{base_report.fairness:.3f}",
            "max slowdown": f"{base_report.max_slowdown:.3f}",
        }))
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"\nscorecard saved to {args.json}")
    return 0


def _cmd_sched(args) -> int:
    from .analysis.sched_report import (
        compare_sched_policies,
        sched_table,
        sched_verdict,
    )
    from .obs import Telemetry

    policies = tuple(
        p.strip() for p in args.policies.split(",") if p.strip()
    )
    if not policies:
        raise ReproError("--policies names no scheduling policy")
    base = ExperimentSpec(
        mix=args.mix, sharing=args.sharing, policy=args.placement,
        seed=args.seed, measured_refs=args.refs, warmup_refs=args.warmup,
        num_cores=args.cores, slots_per_core=args.slots_per_core,
        core_speeds=args.core_speeds, l2_asym=args.l2_asym,
        vm_schedule=args.vm_schedule, sched_epoch=args.sched_epoch,
    )
    telemetry = Telemetry() if args.metrics_out else None
    # bypass the cache: the scheduler's live account (result.sched) is
    # not part of the serialized result, so a cache hit would lose it
    reports = compare_sched_policies(
        args.mix, policies=policies, base=base,
        use_cache=False, telemetry=telemetry,
    )
    headers, rows = sched_table(reports)
    shape = [f"{args.cores} cores"]
    if args.slots_per_core > 1:
        shape.append(f"x{args.slots_per_core} slots")
    if args.core_speeds:
        shape.append(f"speeds {args.core_speeds}")
    if args.l2_asym:
        shape.append(f"L2 {args.l2_asym}")
    if args.vm_schedule:
        shape.append("churn")
    print(format_table(
        headers, rows,
        title=f"Scheduling: {args.mix} / {args.sharing} "
              f"({', '.join(shape)})"))
    verdict = sched_verdict(reports)
    if "best_static" in verdict and "best_adaptive" in verdict:
        print()
        print(format_kv("Verdict", {
            "best static": f"{verdict['best_static']} "
                           f"({verdict['best_static_weighted_speedup']:.3f})",
            "best adaptive":
                f"{verdict['best_adaptive']} "
                f"({verdict['best_adaptive_weighted_speedup']:.3f})",
            "speedup gain": f"{verdict['speedup_gain']:+.3f}",
            "fairness change": f"{verdict['fairness_change']:+.3f}",
            "adaptive wins": "yes" if verdict["adaptive_wins"] else "no",
        }))
    if args.metrics_out:
        from .obs import render_prometheus

        with open(args.metrics_out, "w") as handle:
            handle.write(render_prometheus(telemetry.snapshot()))
        print(f"\nmetrics written to {args.metrics_out}")
    if args.json:
        import json

        payload = {
            "mix": args.mix,
            "policies": {label: report.to_dict()
                         for label, report in reports.items()},
            "verdict": verdict,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\ncomparison saved to {args.json}")
    return 0


def _cmd_scenario(args) -> int:
    from .analysis.scenario_report import (
        compare_scenario_policies,
        scenario_table,
        scenario_verdict,
        scenario_window_rows,
    )
    from .obs import Telemetry
    from .scenarios import (
        get_scenario,
        load_scenario_file,
        save_scenario_file,
        scenario_names,
    )

    if args.list_scenarios:
        from .scenarios import BUILTIN_SCENARIOS

        rows = []
        for name in scenario_names():
            scenario = get_scenario(name)
            kind = "built-in" if name in BUILTIN_SCENARIOS else "custom"
            rows.append([name, kind, len(scenario.roster),
                         scenario.curve.kind, scenario.description])
        print(format_table(
            ["Scenario", "Kind", "VMs", "Curve", "Description"], rows,
            title="Registered scenarios"))
        return 0
    if args.calibrate:
        from .workloads import SCENARIO_WORKLOADS, calibration_table

        print(calibration_table(sorted(SCENARIO_WORKLOADS),
                                measured_refs=args.refs, seed=args.seed or 1))
        return 0

    if args.file:
        scenario = load_scenario_file(args.file)
        if args.name and args.name != scenario.name:
            raise ReproError(
                f"--file defines scenario {scenario.name!r}, "
                f"not {args.name!r}")
    elif args.name:
        scenario = get_scenario(args.name)
    else:
        raise ReproError("name a scenario (see --list) or pass --file")

    if args.export:
        save_scenario_file(scenario, args.export)
        print(f"scenario {scenario.name!r} written to {args.export}")
        return 0

    policies = tuple(
        p.strip() for p in args.policies.split(",") if p.strip()
    )
    if not policies:
        raise ReproError("--policies names no scheduling policy")
    slots = args.slots_per_core
    if scenario.has_arrivals and slots > 1:
        # over-commit honours start times only for run-queue heads, so
        # arrival scenarios run on the paper's one-thread-per-core shape
        print(f"note: {scenario.name!r} scripts VM arrivals; "
              "running single-slot")
        slots = 1
    base = ExperimentSpec(
        mix=scenario.mix_name, sharing=args.sharing, policy=args.placement,
        seed=args.seed, measured_refs=args.refs, warmup_refs=args.warmup,
        num_cores=args.cores, sched_epoch=args.sched_epoch,
        slots_per_core=slots,
    )
    telemetry = Telemetry() if args.metrics_out else None
    # bypass the cache: the live scenario/sched accounts are not part
    # of the serialized result, so a cache hit would lose them
    reports = compare_scenario_policies(
        scenario.name, policies=policies, base=base,
        use_cache=False, telemetry=telemetry,
    )
    headers, rows = scenario_table(reports)
    print(format_table(
        headers, rows,
        title=f"Scenario: {scenario.name} / {args.sharing} "
              f"({args.cores} cores x {slots} slots, "
              f"curve {scenario.curve.kind}, epoch {scenario.epoch})"))
    verdict = scenario_verdict(reports)
    if "best_static" in verdict and "best_adaptive" in verdict:
        print()
        print(format_kv("Verdict", {
            "best static": f"{verdict['best_static']} "
                           f"({verdict['best_static_weighted_speedup']:.3f})",
            "best adaptive":
                f"{verdict['best_adaptive']} "
                f"({verdict['best_adaptive_weighted_speedup']:.3f})",
            "speedup gain": f"{verdict['speedup_gain']:+.3f}",
            "fairness change": f"{verdict['fairness_change']:+.3f}",
            "adaptive wins": "yes" if verdict["adaptive_wins"] else "no",
        }))
    if args.windows:
        shown = next(
            (r for label, r in reports.items()
             if not label.startswith("static")),
            next(iter(reports.values())),
        )
        w_headers, w_rows = scenario_window_rows(shown.control)
        if w_rows:
            print()
            print(format_table(
                w_headers, w_rows,
                title=f"Windows ({shown.policy} cell)"))
    if args.metrics_out:
        from .obs import render_prometheus

        with open(args.metrics_out, "w") as handle:
            handle.write(render_prometheus(telemetry.snapshot()))
        print(f"\nmetrics written to {args.metrics_out}")
    if args.json:
        import json

        payload = {
            "scenario": scenario.name,
            "curve": scenario.curve.kind,
            "policies": {label: report.to_dict()
                         for label, report in reports.items()},
            "verdict": verdict,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nscorecard saved to {args.json}")
    return 0


def _cmd_trace_job(args) -> int:
    """``repro trace --job ID``: merge span logs into one job trace."""
    import json

    from .obs import (CATEGORY_LABELS, align_clocks, collect_spans,
                      critical_path, spans_to_chrome, trace_for_job,
                      validate_trace)

    if args.trace_dir is None:
        raise ReproError("--job needs --trace-dir (the span-log "
                         "directory the service was started with)")
    spans, torn = collect_spans(args.trace_dir)
    if not spans:
        raise ReproError(f"no span logs under {args.trace_dir}")
    if torn:
        print(f"warning: skipped {torn} torn span-log line(s)",
              file=sys.stderr)
    spans = align_clocks(spans)
    job_spans = trace_for_job(spans, args.job)
    if not job_spans:
        raise ReproError(f"no spans mention job {args.job!r}; is the "
                         f"trace directory right and the job finished?")
    report = validate_trace(job_spans)
    path = critical_path(job_spans)
    total_s = path.total_us / 1e6
    rows = []
    for cat, micros in sorted(path.segments.items(),
                              key=lambda kv: -kv[1]):
        label = CATEGORY_LABELS.get(cat, cat)
        share = 100.0 * micros / path.total_us if path.total_us else 0.0
        rows.append([label, f"{micros / 1e6:.3f}s", f"{share:.1f}%"])
    print(format_table(["Segment", "Time", "Share"], rows,
                       title=f"Job {args.job}: critical path "
                             f"({total_s:.3f}s end to end)"))
    print()
    processes = sorted({(s.process, s.pid) for s in job_spans})
    print(f"{len(job_spans)} spans across {len(processes)} process(es): "
          + ", ".join(f"{name} (pid {pid})" for name, pid in processes))
    for root in report["roots"]:
        print(f"root span: {root.name} @ {root.process}")
    with open(args.out, "w") as handle:
        json.dump(spans_to_chrome(job_spans), handle, indent=1)
    print(f"Chrome trace saved to {args.out} "
          f"(open in Perfetto / chrome://tracing)")
    if report["orphans"]:
        names = ", ".join(s.name for s in report["orphans"])
        print(f"error: {len(report['orphans'])} orphan span(s) with a "
              f"missing parent: {names}", file=sys.stderr)
        return EXIT_ERROR
    return EXIT_OK


def _cmd_trace(args) -> int:
    from .obs import Telemetry

    if args.job is not None:
        return _cmd_trace_job(args)
    telemetry = Telemetry()
    spec = ExperimentSpec(mix=args.mix, sharing=args.sharing,
                          policy=args.policy, seed=args.seed,
                          measured_refs=args.refs,
                          warmup_refs=args.warmup)
    # bypass the cache: tracing wants the events, not just the result
    result = run_experiment(spec, use_cache=False, telemetry=telemetry,
                            epoch=args.epoch)
    _print_timeline(result.series or {})
    print()
    samples = max((len(points) for points in (result.series or {}).values()),
                  default=0)
    print(f"{samples} epoch samples, {len(telemetry.trace)} trace events "
          f"(epoch = {args.epoch} cycles)")
    _write_trace(telemetry, args.out)
    if args.series_out:
        import json

        with open(args.series_out, "w") as handle:
            json.dump(result.series or {}, handle, indent=1)
        print(f"time series saved to {args.series_out}")
    return 0


def _cmd_profile(args) -> int:
    from .core.suite import SuiteRunner, get_suite
    from .obs import Telemetry

    telemetry = Telemetry()
    params = {}
    if args.name == "mixes":
        if args.mixes:
            params["mixes"] = [m.strip() for m in args.mixes.split(",")]
    else:
        params["mix"] = args.mix
    if args.refs is not None or args.seed:
        params["base"] = ExperimentSpec(mix=args.mix, seed=args.seed,
                                        measured_refs=args.refs)
    suite = get_suite(args.name, **params)
    outcome = SuiteRunner(_make_executor(args, telemetry)).run(suite)
    _raise_on_failures(outcome)
    rows = [
        [" / ".join(str(v) for v in key),
         "cached" if cell.from_cache else f"{cell.wall_time:.2f}s"]
        for key, cell in outcome.outcomes.items()
    ]
    print(format_table(
        ["Cell (" + " x ".join(suite.axis_names) + ")", "wall time"],
        rows, title=f"Profile: suite {suite.name}"))
    print()
    counters = telemetry.snapshot()["counters"]
    hist = telemetry.histograms.get("executor.cell_seconds")
    print(format_kv("Executor", {
        "cells": len(outcome.outcomes),
        "simulated": counters.get("executor.simulated", 0),
        "cached": outcome.cached_cells,
        "failures": counters.get("executor.failures", 0),
        "mean cell time": f"{hist.mean:.2f}s" if hist else "n/a",
        "total simulation time": f"{outcome.total_wall_time:.1f}s",
    }))
    print()
    _write_trace(telemetry, args.out)
    return 0


def _raise_on_failures(outcome) -> None:
    from .errors import SweepError

    if outcome.failures:
        raise SweepError(outcome.failures)


def _cmd_suite(args) -> int:
    from .core.suite import SuiteRunner, get_suite, suite_names

    if args.name == "list":
        rows = [[name, get_suite(name).description]
                for name in suite_names()]
        print(format_table(["Suite", "Description"], rows,
                           title="Canned suites"))
        return 0

    base = None
    if args.refs is not None or args.seed:
        base = ExperimentSpec(mix=args.mix, seed=args.seed,
                              measured_refs=args.refs)
    params = {}
    if args.name == "mixes":
        if args.mixes:
            params["mixes"] = [m.strip() for m in args.mixes.split(",")]
    else:
        params["mix"] = args.mix
    if base is not None:
        params["base"] = base
    suite = get_suite(args.name, **params)
    outcome = SuiteRunner(_make_executor(args)).run(suite)
    _raise_on_failures(outcome)
    rows = [
        [" / ".join(str(v) for v in key),
         round(_metric_row(result.vm_metrics, args.metric), 4)]
        for key, result in outcome.results.items()
    ]
    print(format_table(
        ["Cell (" + " x ".join(suite.axis_names) + ")", args.metric],
        rows, title=f"Suite {suite.name}"))
    print()
    print(f"{len(outcome.results)} cells "
          f"({outcome.cached_cells} cached), "
          f"simulation wall time {outcome.total_wall_time:.1f}s")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .service import ServiceServer

    server = ServiceServer(
        store=args.store, journal=args.journal,
        host=args.host, port=args.port,
        queue_limit=args.queue_limit, rate=args.rate, burst=args.burst,
        trust_proxy_headers=args.behind_proxy,
        executor_jobs=args.jobs, concurrency=args.concurrency,
        max_attempts=args.max_attempts,
        backoff_base=args.backoff,
        trace_dir=args.trace_dir,
    )

    async def _serve() -> None:
        await server.start()
        print(f"repro service listening on "
              f"http://{server.host}:{server.port}", file=sys.stderr)
        where = repr(server.store)
        journal = args.journal or "none (volatile queue)"
        print(f"store: {where}; journal: {journal}", file=sys.stderr)
        if server.queue.recovered:
            print(f"recovered {server.queue.recovered} journaled job(s)",
                  file=sys.stderr)
        await server.serve()
        print("drained; bye", file=sys.stderr)

    asyncio.run(_serve())
    return EXIT_OK


def _cmd_fleet(args) -> int:
    import asyncio

    from .service.fleet import FleetServer

    fleet = FleetServer(
        workers=args.workers, store=args.store,
        journal_dir=args.journal_dir,
        host=args.host, port=args.port, replicas=args.replicas,
        health_interval=args.health_interval,
        trust_proxy_headers=args.behind_proxy,
        queue_limit=args.queue_limit, rate=args.rate, burst=args.burst,
        executor_jobs=args.jobs, concurrency=args.concurrency,
        max_attempts=args.max_attempts, backoff_base=args.backoff,
        trace_dir=args.trace_dir,
    )

    async def _serve() -> None:
        await fleet.start()
        print(f"repro fleet front end on "
              f"http://{fleet.host}:{fleet.port}", file=sys.stderr)
        for name, worker in fleet.workers.items():
            print(f"  worker {name}: 127.0.0.1:{worker.port} "
                  f"(pid {worker.process.pid})", file=sys.stderr)
        print(f"store: {fleet.store_path}; "
              f"journals: {fleet.journal_dir}", file=sys.stderr)
        await fleet.serve()
        print("fleet drained; bye", file=sys.stderr)

    asyncio.run(_serve())
    return EXIT_OK


def _cmd_top(args) -> int:
    import time as _time

    from .analysis.top import render_dashboard
    from .service import ServiceClient

    client = ServiceClient(args.url)
    previous = None
    frame = 0
    while True:
        payload = client.metrics()
        try:
            healthz = client.healthz()
        except Exception:
            healthz = None
        aggregate = payload.get("aggregate", payload)
        text = render_dashboard(
            payload, healthz=healthz, previous=previous,
            interval=args.interval if previous is not None else None)
        if not args.no_clear:
            print("\x1b[2J\x1b[H", end="")
        stamp = _time.strftime("%H:%M:%S")
        print(f"repro top — {args.url} — {stamp} "
              f"(refresh {args.interval:g}s)")
        print()
        print(text, flush=True)
        previous = aggregate
        frame += 1
        if args.count and frame >= args.count:
            return EXIT_OK
        _time.sleep(args.interval)


def _cmd_loadgen(args) -> int:
    from .bench import append_records
    from .bench.loadgen import LoadgenConfig, run_loadgen, saturation_sweep

    base = LoadgenConfig(
        url=args.url, rate=args.rate, duration=args.duration,
        warm_fraction=args.warm_fraction, pool=args.pool,
        refs=args.refs, seed=args.seed, timeout=args.timeout,
    )

    def announce(config):
        print(f"loadgen: {config.rate:g} jobs/s for "
              f"{config.duration:g}s against {config.url} ...",
              file=sys.stderr)

    if args.rates:
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
        reports = saturation_sweep(args.url, rates, base=base,
                                   progress=announce)
    else:
        announce(base)
        reports = [run_loadgen(base)]
    rows = []
    for report in reports:
        metrics = report.metrics()
        rows.append([
            f"{metrics['offered_rate']:g}",
            f"{metrics['achieved_jobs_per_sec']:.2f}",
            int(metrics["completed"]), int(metrics["shed"]),
            int(metrics["failed"]),
            f"{metrics['p50_ms']:.1f}", f"{metrics['p95_ms']:.1f}",
            f"{metrics['p99_ms']:.1f}",
            "yes" if report.sustained else "no",
        ])
    print(format_table(
        ["Offered/s", "Achieved/s", "Done", "Shed", "Failed",
         "p50 ms", "p95 ms", "p99 ms", "Sustained"],
        rows, title=f"Open-loop load against {args.url}"))
    best = max(r.achieved_rate for r in reports)
    print(f"\npeak achieved throughput: {best:.2f} jobs/s")
    if args.dry_run:
        print("dry run: no records written")
        return EXIT_OK
    extra = {"url": args.url}
    if args.workers is not None:
        extra["workers"] = args.workers
    records = [r.to_record(extra_params=extra) for r in reports]
    for path in append_records(args.out_dir, records):
        print(f"appended to {path}")
    return EXIT_OK


def _submit_cells(args):
    sharings = [s.strip() for s in args.sharings.split(",") if s.strip()]
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    keys, specs = [], []
    for sharing in sharings:
        for policy in policies:
            keys.append((sharing, policy))
            specs.append(ExperimentSpec(
                mix=args.mix, sharing=sharing, policy=policy,
                seed=args.seed, measured_refs=args.refs,
                warmup_refs=args.warmup))
    return keys, specs


def _cmd_submit(args) -> int:
    from .service import JobState, ServiceClient

    client = ServiceClient(args.url, client_id=args.client_id,
                           busy_timeout=args.busy_timeout)
    keys, specs = _submit_cells(args)
    job = client.submit(specs, priority=args.priority, keys=keys)
    print(f"job {job['job_id']}: {job['state']} "
          f"({job['cells']} cells, priority {job['priority']})")
    if not args.wait:
        return EXIT_OK
    job = client.wait(job["job_id"], timeout=args.timeout)
    if job["state"] != JobState.DONE:
        print(f"job {job['job_id']} {job['state']}: {job.get('error')}",
              file=sys.stderr)
        return EXIT_ERROR
    rows = [[" / ".join(str(v) for v in key), result_key]
            for key, result_key in zip(keys, job["result_keys"])]
    print(format_table(["Cell", "Result key"], rows,
                       title=f"Job {job['job_id']} done"))
    print()
    print(f"{job['cells_cached']} cells cached, "
          f"{job['cells_simulated']} simulated, "
          f"attempt(s) {job['attempts']}")
    return EXIT_OK


def _cmd_jobs(args) -> int:
    from .service import ServiceClient

    client = ServiceClient(args.url)
    if args.job_id:
        job = client.job(args.job_id)
        print(format_kv(f"Job {job['job_id']}", {
            "state": job["state"],
            "client": job["client"],
            "priority": job["priority"],
            "attempts": job["attempts"],
            "cells": len(job["cells"]),
            "coalesced with": job.get("coalesced_with") or "-",
            "error": job.get("error") or "-",
            "result keys": ", ".join(job["result_keys"]) or "-",
        }))
        return EXIT_OK
    rows = [
        [job["job_id"], job["state"], job["cells"], job["attempts"],
         job["client"]]
        for job in client.jobs()
    ]
    print(format_table(["Job", "State", "Cells", "Attempts", "Client"],
                       rows, title=f"Jobs at {args.url}"))
    return EXIT_OK


def _cmd_bench(args) -> int:
    from .bench import BenchContext, append_records, bench_names, run_basket

    if args.only and "list" in args.only:
        rows = [[name] for name in bench_names()]
        print(format_table(["Benchmark"], rows, title="Bench basket"))
        return EXIT_OK
    ctx = BenchContext(quick=args.quick, seed=args.seed, jobs=args.jobs,
                       refs=args.refs)
    records = run_basket(
        args.only, ctx,
        progress=lambda name: print(f"bench: {name} ...", file=sys.stderr),
    )
    rows = [
        [record.bench, record.target,
         ", ".join(f"{k}={v:.4g}" for k, v in record.metrics.items())]
        for record in records
    ]
    title = "Bench basket (quick)" if args.quick else "Bench basket"
    print(format_table(["Benchmark", "File", "Metrics"], rows, title=title))
    if args.dry_run:
        print("\ndry run: no records written")
        return EXIT_OK
    written = append_records(args.out_dir, records)
    print()
    for path in written:
        print(f"appended to {path}")
    return EXIT_OK


def _cmd_stats(args) -> int:
    stats = measure_workload_statistics(args.workload,
                                        measured_refs=args.refs,
                                        seed=args.seed)
    print(format_kv(f"Table II statistics: {args.workload}", {
        "c2c fraction of misses": f"{100 * stats.c2c_fraction:.1f}%",
        "clean transfers": f"{100 * stats.clean_fraction:.1f}%",
        "dirty transfers": f"{100 * stats.dirty_fraction:.1f}%",
        "blocks touched (scaled run)": f"{stats.blocks_touched:,}",
        "blocks touched (full-scale equiv)":
            f"{stats.blocks_touched_fullscale:,}",
        "L2 miss rate": f"{stats.l2_miss_rate:.3f}",
    }))
    return 0


def _cmd_workloads(_args) -> int:
    rows = []
    for name in sorted(WORKLOADS):
        profile = WORKLOADS[name]
        rows.append([
            name, profile.footprint_blocks, profile.threads,
            profile.p_shared_read, profile.p_migratory,
            profile.description,
        ])
    print(format_table(
        ["Name", "Footprint (blocks)", "Threads", "p(shared)", "p(migratory)",
         "Description"], rows, title="Workload registry"))
    return 0


def _cmd_mixes(_args) -> int:
    rows = [[name, MIXES[name].describe()] for name in sorted(MIXES)]
    print(format_table(["Mix", "Composition"], rows,
                       title="Table IV mixes"))
    return 0


def _cmd_compare(args) -> int:
    from .analysis.compare import compare_results
    from .analysis.persist import load_result

    a = load_result(args.result_a)
    b = load_result(args.result_b)
    comparison = compare_results(a, b, label_a=args.result_a,
                                 label_b=args.result_b)
    print(format_table(
        ["VM", "cycles x", "miss-rate x", "miss-latency x"],
        comparison.rows(),
        title=f"{args.result_b} relative to {args.result_a}"))
    worst = comparison.worst_vm()
    print()
    print(f"mean cycles ratio {comparison.mean_cycles_ratio():.3f}; "
          f"most affected: {worst.workload} "
          f"({worst.cycles_ratio:.3f}x)")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "qos": _cmd_qos,
    "sched": _cmd_sched,
    "scenario": _cmd_scenario,
    "suite": _cmd_suite,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "serve": _cmd_serve,
    "fleet": _cmd_fleet,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "top": _cmd_top,
    "loadgen": _cmd_loadgen,
    "bench": _cmd_bench,
    "stats": _cmd_stats,
    "compare": _cmd_compare,
    "workloads": _cmd_workloads,
    "mixes": _cmd_mixes,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a uniform exit code, never raises.

    ``EXIT_ERROR`` (2) for any :class:`ReproError` (configuration
    mistakes, failed sweep cells, service rejections), ``EXIT_IO``
    (3) for OS-level failures (missing files, unreachable hosts), and
    ``EXIT_INTERRUPTED`` (130) for Ctrl-C, so scripts and CI can
    branch on *why* a command failed instead of parsing stderr.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except BrokenPipeError:
        # output truncated by a downstream pager/head; not an error
        return EXIT_OK
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_IO


if __name__ == "__main__":
    sys.exit(main())

"""Spec construction for scenario runs.

A scenario spec carries two coupled fields: ``scenario`` (the name)
and ``mix`` (the scenario's own ``scn-<name>`` roster mix).
:func:`scenario_spec` builds them consistently so callers never have
to spell the invariant by hand.
"""

from __future__ import annotations

from ..core.experiment import ExperimentSpec
from ..errors import ConfigurationError
from .registry import get_scenario

__all__ = ["scenario_spec"]


def scenario_spec(name: str, **overrides) -> ExperimentSpec:
    """An :class:`~repro.core.experiment.ExperimentSpec` for scenario
    ``name``, with ``mix`` pinned to the scenario's roster mix.

    ``overrides`` are any other spec fields (sharing, policy, seed,
    refs, sched_policy, ...); overriding ``mix`` or ``scenario`` is
    rejected — those two belong to the scenario.
    """
    for owned in ("mix", "scenario"):
        if owned in overrides:
            raise ConfigurationError(
                f"scenario_spec owns the {owned!r} field; "
                f"pick a different scenario instead of overriding it")
    scenario = get_scenario(name)
    return ExperimentSpec(
        mix=scenario.mix_name, scenario=scenario.name, **overrides)

"""Named scenarios: the built-in catalogue plus user scenario files.

Four built-ins cover the time-varying axes the subsystem adds:

``diurnal-web``
    A consolidated web stack under a sinusoidal day/night load curve,
    with a batch ``gups`` tenant that departs mid-run — the headline
    scenario for the policy × scenario scorecard (an adaptive
    scheduler can reclaim the vacated cache domain; a static placement
    cannot).
``batch-interference``
    A steady OLTP/web roster disturbed by a ``silo`` batch job that
    arrives mid-run while a step curve raises offered load.
``churn-storm``
    Staggered arrivals and departures across the whole roster under
    jittered load — the stress case for seeded determinism.
``phase-flip``
    Scripted compute↔communicate behavioural switches on half the
    roster, the scenario-file analogue of the cyclic ``burst`` phase
    plan.

User scenarios come from JSON files (:func:`load_scenario_file`,
format in ``docs/scenarios.md``) and can be registered under their
name for the duration of the process.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..errors import ConfigurationError
from .model import (
    LoadCurve,
    PhaseSwitch,
    Scenario,
    VMSlot,
    scenario_from_dict,
    scenario_to_dict,
)

__all__ = [
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "load_scenario_file",
    "save_scenario_file",
    "BUILTIN_SCENARIOS",
]


def _builtin() -> Dict[str, Scenario]:
    diurnal_web = Scenario(
        name="diurnal-web",
        description=(
            "Consolidated web stack under a day/night load curve; a "
            "gups batch tenant departs mid-run, freeing cores and "
            "cache capacity an adaptive scheduler can reclaim."
        ),
        roster=(
            VMSlot(workload="specweb"),
            VMSlot(workload="tpcw"),
            VMSlot(workload="specjbb"),
            VMSlot(workload="gups", departure=60_000),
        ),
        curve=LoadCurve(kind="diurnal", base=1.0, amplitude=0.35,
                        period=80_000),
        epoch=5_000,
    )
    batch_interference = Scenario(
        name="batch-interference",
        description=(
            "Steady OLTP/web tenants disturbed by a silo batch job "
            "arriving mid-run while a step curve raises offered load."
        ),
        roster=(
            VMSlot(workload="specjbb"),
            VMSlot(workload="specjbb"),
            VMSlot(workload="tpcw"),
            VMSlot(workload="silo", arrival=40_000),
        ),
        curve=LoadCurve(kind="step", base=1.0, at=40_000, level=1.3),
        epoch=5_000,
    )
    churn_storm = Scenario(
        name="churn-storm",
        description=(
            "Staggered arrivals and departures across the roster under "
            "jittered load — the determinism stress case."
        ),
        roster=(
            VMSlot(workload="tpcw"),
            VMSlot(workload="btree", arrival=15_000),
            VMSlot(workload="xsbench", arrival=30_000, departure=90_000),
            VMSlot(workload="gups", departure=60_000),
        ),
        curve=LoadCurve(kind="burst", base=1.0, at=35_000, level=1.4,
                        width=30_000, jitter=0.15),
        epoch=5_000,
    )
    phase_flip = Scenario(
        name="phase-flip",
        description=(
            "Scripted compute-to-communicate behavioural flips on half "
            "the roster: sharing intensity rises mid-run, then falls "
            "back."
        ),
        roster=(
            VMSlot(
                workload="specjbb",
                switches=(
                    PhaseSwitch(at=30_000, overrides=(
                        ("p_migratory", 0.10),
                        ("p_shared_read", 0.45),
                        ("scan_slide", 0.5),
                    )),
                    PhaseSwitch(at=70_000, overrides=(
                        ("p_migratory", 0.01),
                        ("p_shared_read", 0.10),
                        ("scan_slide", 0.05),
                    )),
                ),
            ),
            VMSlot(
                workload="silo",
                switches=(
                    PhaseSwitch(at=30_000, overrides=(
                        ("p_migratory", 0.30),
                        ("write_prob_migratory", 0.80),
                    )),
                ),
            ),
            VMSlot(workload="tpch"),
            VMSlot(workload="specweb"),
        ),
        curve=LoadCurve(),
        epoch=5_000,
    )
    return {
        scenario.name: scenario
        for scenario in (diurnal_web, batch_interference, churn_storm,
                         phase_flip)
    }


BUILTIN_SCENARIOS: Dict[str, Scenario] = _builtin()

_CUSTOM_SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, overwrite: bool = False) -> None:
    """Register a scenario for name-based lookup in this process.

    Built-in names cannot be shadowed; custom names need
    ``overwrite=True`` to be replaced.
    """
    if scenario.name in BUILTIN_SCENARIOS:
        raise ConfigurationError(
            f"cannot shadow the built-in scenario {scenario.name!r}")
    if scenario.name in _CUSTOM_SCENARIOS and not overwrite:
        raise ConfigurationError(
            f"scenario {scenario.name!r} is already registered "
            f"(pass overwrite=True to replace it)")
    _CUSTOM_SCENARIOS[scenario.name] = scenario


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name (built-ins first, then registered)."""
    try:
        return BUILTIN_SCENARIOS[name]
    except KeyError:
        pass
    try:
        return _CUSTOM_SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: "
            f"{', '.join(scenario_names())}"
        ) from None


def scenario_names() -> List[str]:
    return sorted(set(BUILTIN_SCENARIOS) | set(_CUSTOM_SCENARIOS))


def load_scenario_file(path, register: bool = True) -> Scenario:
    """Parse a JSON scenario file; registers the result by default so
    spec resolution (``mix="scn-<name>"``) can find it."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"scenario file {path} is not valid JSON: {error}"
            ) from None
    scenario = scenario_from_dict(payload)
    if register and scenario.name not in BUILTIN_SCENARIOS:
        register_scenario(scenario, overwrite=True)
    return scenario


def save_scenario_file(scenario: Scenario, path) -> None:
    """Write a scenario as JSON (round-trips via
    :func:`load_scenario_file`)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(scenario_to_dict(scenario), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")

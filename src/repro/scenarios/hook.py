"""Epoch-boundary scenario actuation inside the simulation engines.

A :class:`ScenarioHook` drives one :class:`~repro.scenarios.model.Scenario`
with the engines' epoch-gated control cadence (the same ``next_due`` /
``on_step`` protocol as :class:`~repro.qos.hook.QosHook` and
:class:`~repro.sched.hook.SchedHook`, and composable with both through
:class:`~repro.sched.hook.CompositeControl`).  Every ``epoch``
simulated cycles it:

* samples the scenario's load curve (plus seeded jitter from the run's
  dedicated ``"scenario"`` RNG stream) and converts the offered-load
  factor into a think-cycle multiplier of ``1/load`` on every thread
  trace — applied only when the multiplier actually changes, so a flat
  curve at 1.0 never touches the reference streams;
* actuates any scripted per-VM phase switches that have come due,
  retargeting the VM's traces with the switch's behavioural overrides
  (:meth:`~repro.workloads.generator.ThreadTrace.retarget` drops
  pre-generated batches, so the switch takes effect promptly and
  deterministically);
* closes a per-window attribution record: references issued per VM
  since the previous control epoch, alongside the load level — the raw
  material for the per-phase metrics in scenario reports.

VM arrival and departure are *not* actuated here: churn rides the
engine-native ``start_time`` / ``stop_time`` machinery the scenario
compiles into the launch (see :mod:`repro.core.experiment`), which
keeps thread retirement exactly as deterministic as PR 9's
``vm_schedule`` runs.

Because scenarios retarget per-thread traces mid-run (and may retire
threads), any spec naming one pins the reference engine
(``pins_reference``) — the batched kernel pre-folds reference batches
and cannot re-shape them mid-run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ConfigurationError
from .model import Scenario

__all__ = ["ScenarioHook"]

#: jittered load is clamped here so a pathological draw can never
#: stretch think times unboundedly
_MIN_LOAD = 0.05


class ScenarioHook:
    """Drives one scenario's load curve and phase script at its epoch.

    Parameters
    ----------
    scenario:
        The declarative scenario being actuated.
    vms:
        The hypervisor's launched :class:`~repro.vm.hypervisor.VirtualMachine`
        list, in roster order — the hook reaches each VM's thread
        traces through ``vm.instance.traces``.
    threads:
        The engine's thread contexts (read-only: per-window issued
        attribution).
    rng:
        The run's seeded ``"scenario"`` stream; consumed only when the
        curve declares jitter.
    """

    #: scenarios retarget traces and script churn: the engine factory
    #: must never resolve such a run to the batched kernel
    pins_reference = True
    #: lets the factory distinguish scenario pinning in its diagnostics
    is_scenario_control = True

    def __init__(self, scenario: Scenario, vms, threads, rng=None,
                 telemetry=None):
        if len(vms) != len(scenario.roster):
            raise ConfigurationError(
                f"scenario {scenario.name!r} has {len(scenario.roster)} "
                f"roster entries but {len(vms)} VMs were launched")
        if telemetry is None:
            from ..obs.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self.scenario = scenario
        self.vms = list(vms)
        self.threads = list(threads)
        self.rng = rng
        self.telemetry = telemetry
        for name in ("scenario.control_epochs", "scenario.load_adjustments",
                     "scenario.switches"):
            telemetry.counter(name)
        self.epoch = scenario.epoch
        self.next_due = scenario.epoch
        self.control_epochs = 0
        self.load_adjustments = 0
        self.switches_applied = 0
        self.windows: List[Dict] = []
        self._think_scale = 1.0
        # per-VM pending switch scripts, consumed front-to-back
        self._pending_switches: List[List] = [
            list(slot.switches) for slot in scenario.roster
        ]
        self._threads_of_vm: Dict[int, List] = {}
        for thread in self.threads:
            self._threads_of_vm.setdefault(thread.vm_id, []).append(thread)
        self._issued_at_last: Dict[int, int] = {
            vm.vm_id: 0 for vm in self.vms
        }
        self._last_window_end = 0
        self._last_load = scenario.curve.load_at(0)

    # -- engine hooks ---------------------------------------------------

    def bind_actuator(self, engine) -> None:
        """Scenario actuation goes through the traces, not the engine;
        accepted so the factory's reference wiring stays uniform."""

    def on_step(self, now: int) -> None:
        if now >= self.next_due:
            self.control(now)
            # re-arm relative to the actual control instant, matching
            # the QoS/sched hooks' sensing-window convention
            self.next_due = now + self.epoch

    def finish(self, final_time: int) -> None:
        if final_time > self._last_window_end:
            self._close_window(final_time, self._last_load)
        self.telemetry.gauge("scenario.control_epochs").set(
            float(self.control_epochs))
        self.telemetry.gauge("scenario.load_adjustments").set(
            float(self.load_adjustments))

    # -- the control loop -----------------------------------------------

    def control(self, now: int) -> None:
        """Run one curve-sample → retarget → attribute cycle."""
        self.control_epochs += 1
        self.telemetry.counter("scenario.control_epochs").inc()

        load = self.scenario.curve.load_at(now)
        jitter = self.scenario.curve.jitter
        if jitter and self.rng is not None:
            load *= 1.0 + jitter * (2.0 * self.rng.random() - 1.0)
        load = max(load, _MIN_LOAD)
        self._apply_load(load, now)
        self._apply_switches(now)
        self._close_window(now, load)

    def _apply_load(self, load: float, now: int) -> None:
        think_scale = round(1.0 / load, 6)
        if think_scale == self._think_scale:
            return
        self._think_scale = think_scale
        self.load_adjustments += 1
        self.telemetry.counter("scenario.load_adjustments").inc()
        for vm in self.vms:
            for trace in vm.instance.traces:
                trace.set_load_scale(think_scale)
        if self.telemetry.enabled:
            self.telemetry.series_for("scenario.load").append(now, load)

    def _apply_switches(self, now: int) -> None:
        for vm_index, pending in enumerate(self._pending_switches):
            while pending and pending[0].at <= now:
                switch = pending.pop(0)
                overrides = dict(switch.overrides)
                for trace in self.vms[vm_index].instance.traces:
                    trace.retarget(**overrides)
                self.switches_applied += 1
                self.telemetry.counter("scenario.switches").inc()

    def _close_window(self, now: int, load: float) -> None:
        issued: Dict[str, int] = {}
        for vm in self.vms:
            total = sum(t.issued
                        for t in self._threads_of_vm.get(vm.vm_id, ()))
            delta = total - self._issued_at_last[vm.vm_id]
            self._issued_at_last[vm.vm_id] = total
            issued[str(vm.vm_id)] = delta
        self.windows.append({
            "start": self._last_window_end,
            "end": now,
            "load": round(load, 4),
            "think_scale": self._think_scale,
            "issued": issued,
        })
        self._last_window_end = now
        self._last_load = load

    # -- reporting ------------------------------------------------------

    def summary(self) -> dict:
        """JSON-friendly account of what the scenario run did."""
        per_vm = {}
        for vm_index, vm in enumerate(self.vms):
            slot = self.scenario.roster[vm_index]
            per_vm[str(vm.vm_id)] = {
                "workload": vm.workload_name,
                "arrival": slot.arrival,
                "departure": slot.departure,
                "switches_scripted": len(slot.switches),
                "switches_remaining": len(self._pending_switches[vm_index]),
                "issued": self._issued_at_last[vm.vm_id],
            }
        return {
            "scenario": self.scenario.name,
            "epoch": self.epoch,
            "curve": self.scenario.curve.kind,
            "control_epochs": self.control_epochs,
            "load_adjustments": self.load_adjustments,
            "switches_applied": self.switches_applied,
            "windows": self.windows,
            "per_vm": per_vm,
        }


def window_table(summary: dict, max_rows: Optional[int] = 12) -> list:
    """Flatten a hook summary's windows into printable rows (evenly
    subsampled to ``max_rows`` for long runs)."""
    windows = summary.get("windows", [])
    if max_rows is not None and len(windows) > max_rows:
        step = len(windows) / max_rows
        windows = [windows[int(i * step)] for i in range(max_rows)]
    rows = []
    for window in windows:
        issued = window.get("issued", {})
        rows.append([
            window["start"], window["end"], window["load"],
            sum(issued.values()),
        ])
    return rows

"""Time-varying consolidation scenarios (ISSUE 10's subsystem).

Declarative :class:`Scenario` objects — a VM roster with arrivals,
departures, per-VM phase plans and scripted behavioural switches, plus
a load curve — actuated at epoch boundaries through the engines'
control slot by :class:`ScenarioHook`.  See ``docs/scenarios.md``.
"""

from .hook import ScenarioHook
from .model import (
    LoadCurve,
    PhaseSwitch,
    Scenario,
    VMSlot,
    scenario_from_dict,
    scenario_to_dict,
)
from .registry import (
    BUILTIN_SCENARIOS,
    get_scenario,
    load_scenario_file,
    register_scenario,
    save_scenario_file,
    scenario_names,
)
from .spec import scenario_spec

__all__ = [
    "LoadCurve",
    "PhaseSwitch",
    "VMSlot",
    "Scenario",
    "ScenarioHook",
    "scenario_from_dict",
    "scenario_to_dict",
    "BUILTIN_SCENARIOS",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "load_scenario_file",
    "save_scenario_file",
    "scenario_spec",
]

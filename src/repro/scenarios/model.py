"""The declarative scenario model (ISSUE 10's tentpole).

A :class:`Scenario` describes a *time-varying* consolidation: a VM
roster (workload, optional cyclic phase plan, arrival/departure, and
scripted mid-run phase switches per VM) plus a :class:`LoadCurve` that
drives per-epoch think-cycle scaling.  Scenarios are declarative and
JSON-serializable — the registry (:mod:`repro.scenarios.registry`)
names them, and :class:`~repro.scenarios.hook.ScenarioHook` actuates
them at epoch boundaries through the engines' ``next_due`` control
slot.

Load semantics
--------------
``LoadCurve.load_at(cycle)`` returns an *offered-load* factor with 1.0
nominal.  The hook converts it into a think-cycle multiplier of
``1/load`` on every thread trace: load above 1.0 shrinks think times
(requests arrive faster), load below 1.0 stretches them.  A constant
curve at 1.0 never touches the traces at all, which is what makes the
byte-identity determinism guard possible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..workloads.library import get_profile
from ..workloads.phases import BEHAVIOURAL_PARAMS

__all__ = [
    "LoadCurve",
    "PhaseSwitch",
    "VMSlot",
    "Scenario",
    "scenario_to_dict",
    "scenario_from_dict",
]

_CURVE_KINDS = ("constant", "diurnal", "step", "burst")

#: scenario mixes are registered under this prefix (``scn-<name>``)
MIX_PREFIX = "scn-"


@dataclass(frozen=True)
class LoadCurve:
    """A deterministic offered-load curve over simulated cycles.

    Attributes
    ----------
    kind:
        ``"constant"``, ``"diurnal"`` (sinusoidal), ``"step"``, or
        ``"burst"``.
    base:
        Baseline load factor (1.0 = the workload's calibrated think
        times).
    amplitude, period:
        Diurnal parameters: ``load = base + amplitude *
        sin(2π·cycle/period)``.
    at, level, width:
        Step/burst parameters: a step switches to ``level`` at cycle
        ``at`` forever; a burst holds ``level`` for ``width`` cycles
        starting at ``at``, then returns to ``base``.
    jitter:
        Optional per-epoch multiplicative jitter (``0.15`` = ±15%),
        drawn from the run's seeded ``"scenario"`` RNG stream by the
        hook — reproducible under a fixed seed, different across seeds.
    """

    kind: str = "constant"
    base: float = 1.0
    amplitude: float = 0.0
    period: int = 200_000
    at: int = 0
    level: float = 1.0
    width: int = 0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _CURVE_KINDS:
            raise ConfigurationError(
                f"unknown load-curve kind {self.kind!r}; "
                f"choose one of {', '.join(_CURVE_KINDS)}"
            )
        if self.base <= 0:
            raise ConfigurationError("load-curve base must be positive")
        if self.amplitude < 0:
            raise ConfigurationError(
                "load-curve amplitude must be non-negative")
        if self.kind == "diurnal":
            if self.period <= 0:
                raise ConfigurationError(
                    "a diurnal curve needs a positive period")
            if self.amplitude >= self.base:
                raise ConfigurationError(
                    "diurnal amplitude must stay below base "
                    "(load must remain positive)")
        if self.kind in ("step", "burst"):
            if self.level <= 0:
                raise ConfigurationError(
                    "step/burst level must be positive")
            if self.at < 0:
                raise ConfigurationError(
                    "step/burst onset must be non-negative")
        if self.kind == "burst" and self.width <= 0:
            raise ConfigurationError("a burst needs a positive width")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")

    @property
    def is_flat(self) -> bool:
        """True when the curve never moves load off 1.0."""
        if self.jitter:
            return False
        if self.kind == "constant":
            return self.base == 1.0
        return False

    def load_at(self, cycle: int) -> float:
        """Deterministic load factor at ``cycle`` (jitter excluded —
        the hook applies it from the seeded scenario stream)."""
        if self.kind == "constant":
            return self.base
        if self.kind == "diurnal":
            return self.base + self.amplitude * math.sin(
                2.0 * math.pi * cycle / self.period)
        if self.kind == "step":
            return self.level if cycle >= self.at else self.base
        # burst
        if self.at <= cycle < self.at + self.width:
            return self.level
        return self.base


@dataclass(frozen=True)
class PhaseSwitch:
    """A scripted behavioural switch: at cycle ``at``, retarget the
    VM's traces with ``overrides`` (behavioural parameters only — the
    same set a :class:`~repro.workloads.phases.Phase` may override)."""

    at: int
    overrides: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError(
                "phase switch cycle must be non-negative")
        if not self.overrides:
            raise ConfigurationError(
                "a phase switch needs at least one override")
        for param, _value in self.overrides:
            if param not in BEHAVIOURAL_PARAMS:
                raise ConfigurationError(
                    f"phase switch overrides structural or unknown "
                    f"parameter {param!r}; allowed: "
                    f"{sorted(BEHAVIOURAL_PARAMS)}"
                )


@dataclass(frozen=True)
class VMSlot:
    """One roster entry: a VM's workload and its script.

    Attributes
    ----------
    workload:
        A registered workload name (paper or scenario family).
    phase_plan:
        Optional registered cyclic phase plan
        (:mod:`repro.workloads.phases`) applied to this VM only.
    arrival, departure:
        Cycles the VM enters/leaves the machine (``None`` departure =
        runs to completion) — churn scripting on top of PR 9's
        ``vm_schedule`` machinery.
    switches:
        Scripted :class:`PhaseSwitch` entries, strictly increasing in
        time, actuated at the scenario epoch boundary at or after
        their cycle.
    """

    workload: str
    phase_plan: str = ""
    arrival: int = 0
    departure: Optional[int] = None
    switches: Tuple[PhaseSwitch, ...] = ()

    def __post_init__(self) -> None:
        get_profile(self.workload)  # validates the name
        if self.phase_plan:
            from ..workloads.phases import get_phase_plan

            get_phase_plan(self.phase_plan)  # validates the name
        if self.arrival < 0:
            raise ConfigurationError("VM arrival must be non-negative")
        if self.departure is not None and self.departure <= self.arrival:
            raise ConfigurationError(
                f"VM departure ({self.departure}) must exceed its "
                f"arrival ({self.arrival})")
        cycles = [switch.at for switch in self.switches]
        if cycles != sorted(cycles) or len(set(cycles)) != len(cycles):
            raise ConfigurationError(
                "phase switches must be strictly increasing in time")


@dataclass(frozen=True)
class Scenario:
    """A named, declarative time-varying consolidation scenario."""

    name: str
    description: str = ""
    roster: Tuple[VMSlot, ...] = ()
    curve: LoadCurve = field(default_factory=LoadCurve)
    epoch: int = 5_000

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise ConfigurationError(
                "a scenario needs a non-empty, whitespace-free name")
        if not self.roster:
            raise ConfigurationError(
                "a scenario roster needs at least one VM")
        if self.epoch <= 0:
            raise ConfigurationError(
                "the scenario control epoch must be positive")

    # -- derived wiring -------------------------------------------------

    @property
    def mix_name(self) -> str:
        """The mix name scenario specs carry (``scn-<name>``)."""
        return f"{MIX_PREFIX}{self.name}"

    def to_mix(self):
        """The roster as a :class:`~repro.core.mixes.Mix`, grouping
        consecutive same-workload slots (VM order is preserved)."""
        from ..core.mixes import Mix

        components: List[List] = []
        for slot in self.roster:
            if components and components[-1][0] == slot.workload:
                components[-1][1] += 1
            else:
                components.append([slot.workload, 1])
        return Mix(self.mix_name,
                   tuple((w, n) for w, n in components))

    def start_offsets(self) -> List[int]:
        return [slot.arrival for slot in self.roster]

    def stop_times(self) -> List[Optional[int]]:
        return [slot.departure for slot in self.roster]

    def vm_phase_plans(self) -> List[Optional[tuple]]:
        """Resolved per-VM cyclic phase plans (``None`` = steady)."""
        from ..workloads.phases import get_phase_plan

        return [
            get_phase_plan(slot.phase_plan) if slot.phase_plan else None
            for slot in self.roster
        ]

    @property
    def has_churn(self) -> bool:
        return any(slot.arrival or slot.departure is not None
                   for slot in self.roster)

    @property
    def has_arrivals(self) -> bool:
        return any(slot.arrival for slot in self.roster)

    @property
    def has_departures(self) -> bool:
        return any(slot.departure is not None for slot in self.roster)

    @property
    def has_switches(self) -> bool:
        return any(slot.switches for slot in self.roster)

    @property
    def is_static(self) -> bool:
        """True when running this scenario is observationally identical
        to the equivalent static spec (flat curve, no switches, no
        churn) — the shape the byte-identity determinism guard pins."""
        return (self.curve.is_flat and not self.has_switches
                and not self.has_churn)

    def with_epoch(self, epoch: int) -> "Scenario":
        return replace(self, epoch=epoch)


# ----------------------------------------------------------------------
# JSON codec (scenario files; see docs/scenarios.md for the format)
# ----------------------------------------------------------------------


def scenario_to_dict(scenario: Scenario) -> Dict:
    """The JSON-friendly form of a scenario (round-trips through
    :func:`scenario_from_dict`)."""
    payload: Dict = {
        "name": scenario.name,
        "description": scenario.description,
        "epoch": scenario.epoch,
        "curve": {
            "kind": scenario.curve.kind,
            "base": scenario.curve.base,
            "amplitude": scenario.curve.amplitude,
            "period": scenario.curve.period,
            "at": scenario.curve.at,
            "level": scenario.curve.level,
            "width": scenario.curve.width,
            "jitter": scenario.curve.jitter,
        },
        "roster": [],
    }
    for slot in scenario.roster:
        entry: Dict = {"workload": slot.workload}
        if slot.phase_plan:
            entry["phase_plan"] = slot.phase_plan
        if slot.arrival:
            entry["arrival"] = slot.arrival
        if slot.departure is not None:
            entry["departure"] = slot.departure
        if slot.switches:
            entry["switches"] = [
                {"at": switch.at, "overrides": dict(switch.overrides)}
                for switch in slot.switches
            ]
        payload["roster"].append(entry)
    return payload


def scenario_from_dict(payload: Dict) -> Scenario:
    """Parse :func:`scenario_to_dict` output (or a hand-written
    scenario file) back into a :class:`Scenario`."""
    if not isinstance(payload, dict):
        raise ConfigurationError("a scenario document must be an object")
    try:
        name = payload["name"]
        roster_entries = payload["roster"]
    except KeyError as missing:
        raise ConfigurationError(
            f"scenario document is missing the {missing} field"
        ) from None
    curve_payload = dict(payload.get("curve", {}))
    unknown = set(curve_payload) - {
        "kind", "base", "amplitude", "period", "at", "level", "width",
        "jitter"}
    if unknown:
        raise ConfigurationError(
            f"unknown load-curve fields: {sorted(unknown)}")
    roster: List[VMSlot] = []
    for entry in roster_entries:
        switches = tuple(
            PhaseSwitch(
                at=int(switch["at"]),
                overrides=tuple(sorted(
                    (str(param), float(value))
                    for param, value in switch["overrides"].items()
                )),
            )
            for switch in entry.get("switches", ())
        )
        departure = entry.get("departure")
        roster.append(VMSlot(
            workload=entry["workload"],
            phase_plan=entry.get("phase_plan", ""),
            arrival=int(entry.get("arrival", 0)),
            departure=None if departure is None else int(departure),
            switches=switches,
        ))
    return Scenario(
        name=str(name),
        description=str(payload.get("description", "")),
        roster=tuple(roster),
        curve=LoadCurve(**curve_payload),
        epoch=int(payload.get("epoch", 5_000)),
    )

"""Benchmark basket and machine-readable performance records.

``repro bench`` runs a fixed basket of wall-clock benchmarks (cold and
warm cell latency, reference-vs-batched kernel speedup, sweep
throughput, service round-trip, QoS overhead) and appends the results
to ``BENCH_kernel.json`` / ``BENCH_sweep.json`` at the repository
root — the repo's performance trajectory, versioned with the code.
"""

from .basket import BenchContext, bench_names, run_basket
from .records import (
    SCHEMA_VERSION,
    BenchRecord,
    append_records,
    load_bench_file,
    validate_bench_payload,
)

__all__ = [
    "BenchContext",
    "BenchRecord",
    "SCHEMA_VERSION",
    "append_records",
    "bench_names",
    "load_bench_file",
    "run_basket",
    "validate_bench_payload",
]

"""Benchmark basket, load generation, and performance records.

``repro bench`` runs a fixed basket of wall-clock benchmarks (cold and
warm cell latency, reference-vs-batched kernel speedup, sweep
throughput, service round-trip and open-loop load response, QoS
overhead) and appends the results to ``BENCH_kernel.json`` /
``BENCH_sweep.json`` / ``BENCH_service.json`` at the repository root —
the repo's performance trajectory, versioned with the code.

``repro loadgen`` (:mod:`repro.bench.loadgen`) drives a live service
or fleet with open-loop Poisson arrivals and measures saturation
throughput and exact tail latency.
"""

from .basket import BenchContext, bench_names, run_basket
from .loadgen import (
    LoadgenConfig,
    LoadgenReport,
    percentile,
    run_loadgen,
    saturation_sweep,
)
from .records import (
    BENCH_TARGETS,
    SCHEMA_VERSION,
    BenchRecord,
    append_records,
    load_bench_file,
    validate_bench_payload,
)

__all__ = [
    "BENCH_TARGETS",
    "BenchContext",
    "BenchRecord",
    "LoadgenConfig",
    "LoadgenReport",
    "SCHEMA_VERSION",
    "append_records",
    "bench_names",
    "load_bench_file",
    "percentile",
    "run_basket",
    "run_loadgen",
    "saturation_sweep",
    "validate_bench_payload",
]

"""Open-loop Poisson load generator for the service tier.

Measures what the closed-loop basket benchmarks cannot: how the
service (single worker or fleet) behaves under *offered* load.  A
closed-loop client waits for each response before sending the next
request, so it can never observe queueing collapse — its arrival rate
falls as the system slows.  This generator is open-loop: arrivals are
a Poisson process at a configured target rate regardless of how the
service is doing, which is how saturation, queue growth and tail
latency actually present in production (Schroeder et al., "Open
Versus Closed").

One run (:func:`run_loadgen`) submits jobs with exponential
inter-arrival times for a fixed window, mixing *warm* submissions
(drawn from a small pool of pre-primed specs — pure dedup round-trips)
with *cold* ones (unique seeds — every job simulates), then polls each
job to completion and reports exact p50/p95/p99 end-to-end latency and
achieved throughput.  :func:`saturation_sweep` steps the offered rate
upward and flags the last rate the service *sustained* (achieved
within 10% of offered), which is the capacity number the fleet
acceptance criteria compare across worker counts.

Everything is seeded (:class:`random.Random`) so two runs against
equally-warm services offer byte-identical workloads.
"""

from __future__ import annotations

import asyncio
import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError, ServiceError
from ..service.httpcommon import fetch
from .records import BenchRecord

__all__ = [
    "LoadgenConfig",
    "LoadgenReport",
    "percentile",
    "run_loadgen",
    "saturation_sweep",
]


def percentile(values: Sequence[float], q: float) -> float:
    """Exact q-th percentile (0 < q <= 100), linear interpolation.

    Unlike :func:`~repro.obs.telemetry.histogram_percentile` this
    works on the raw sample list, so loadgen reports are not quantized
    by histogram bucket edges.
    """
    if not 0 < q <= 100:
        raise ReproError(f"percentile must be in (0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def _host_port(url: str) -> Tuple[str, int]:
    stripped = url.strip()
    for prefix in ("http://", "https://"):
        if stripped.startswith(prefix):
            stripped = stripped[len(prefix):]
    stripped = stripped.rstrip("/")
    host, _, port = stripped.partition(":")
    if not host or not port.isdigit():
        raise ReproError(
            f"loadgen URL must look like http://host:port, got {url!r}")
    return host, int(port)


@dataclass
class LoadgenConfig:
    """One open-loop run's knobs."""

    url: str
    rate: float = 20.0          # offered arrivals per second (Poisson)
    duration: float = 5.0       # arrival window, seconds
    warm_fraction: float = 0.5  # share of arrivals from the warm pool
    pool: int = 8               # distinct pre-primed warm specs
    refs: int = 300             # measured_refs of every generated spec
    seed: int = 1
    priority: int = 10
    poll_interval: float = 0.02
    timeout: float = 120.0      # per-job completion timeout
    max_inflight: int = 512     # open-loop memory bound, not pacing
    prime: bool = True          # pre-run the warm pool before timing

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ReproError(f"rate must be > 0, got {self.rate}")
        if self.duration <= 0:
            raise ReproError(
                f"duration must be > 0, got {self.duration}")
        if not 0.0 <= self.warm_fraction <= 1.0:
            raise ReproError(
                "warm_fraction must be within [0, 1], got "
                f"{self.warm_fraction}")
        if self.pool < 1:
            raise ReproError(f"pool must be >= 1, got {self.pool}")


@dataclass
class _Outcome:
    """One submitted job's fate."""

    warm: bool
    status: str          # done | quarantined | shed | error | timeout
    latency: float = 0.0  # submit -> terminal, seconds (when done)
    finished_at: float = 0.0


@dataclass
class LoadgenReport:
    """What one open-loop run measured."""

    config: LoadgenConfig
    submitted: int = 0
    completed: int = 0
    failed: int = 0      # quarantined / transport errors / timeouts
    shed: int = 0        # 429/503 at admission (backpressure working)
    elapsed: float = 0.0  # first arrival -> last completion, seconds
    latencies: List[float] = field(default_factory=list)
    warm_latencies: List[float] = field(default_factory=list)
    cold_latencies: List[float] = field(default_factory=list)

    @property
    def achieved_rate(self) -> float:
        """Completed jobs per second over the whole run."""
        return self.completed / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def sustained(self) -> bool:
        """Did throughput keep up with the offered rate (within 10%)?"""
        return self.achieved_rate >= 0.9 * self.config.rate

    def metrics(self) -> Dict[str, float]:
        lat = self.latencies
        return {
            "offered_rate": self.config.rate,
            "achieved_jobs_per_sec": self.achieved_rate,
            "submitted": float(self.submitted),
            "completed": float(self.completed),
            "failed": float(self.failed),
            "shed": float(self.shed),
            "elapsed_seconds": self.elapsed,
            "p50_ms": 1000.0 * percentile(lat, 50),
            "p95_ms": 1000.0 * percentile(lat, 95),
            "p99_ms": 1000.0 * percentile(lat, 99),
            "mean_ms": (1000.0 * sum(lat) / len(lat)) if lat else 0.0,
            "warm_p99_ms": 1000.0 * percentile(self.warm_latencies, 99),
            "cold_p99_ms": 1000.0 * percentile(self.cold_latencies, 99),
            "sustained": 1.0 if self.sustained else 0.0,
        }

    def to_record(self, bench: str = "service-loadgen",
                  quick: bool = False,
                  extra_params: Optional[dict] = None) -> BenchRecord:
        params = {
            "rate": self.config.rate,
            "duration": self.config.duration,
            "warm_fraction": self.config.warm_fraction,
            "pool": self.config.pool,
            "measured_refs": self.config.refs,
            "seed": self.config.seed,
            # simulation is CPU-bound: worker scaling is only visible
            # when the host has cores to back the extra processes
            "host_cores": os.cpu_count() or 1,
        }
        params.update(extra_params or {})
        return BenchRecord(bench=bench, target="service", quick=quick,
                           params=params, metrics=self.metrics())


def _warm_specs(config: LoadgenConfig) -> List[dict]:
    """The warm pool: ``pool`` distinct specs, stable across runs."""
    return [_spec_entry(seed=config.seed + index, refs=config.refs)
            for index in range(config.pool)]


def _spec_entry(seed: int, refs: int) -> dict:
    return {
        "mix": "mix1",
        "seed": seed,
        "measured_refs": refs,
        "warmup_refs": refs // 2,
        "engine_mode": "batched",
    }


async def _submit_and_wait(host: str, port: int, body: dict,
                           config: LoadgenConfig, warm: bool,
                           sem: asyncio.Semaphore) -> _Outcome:
    async with sem:
        start = time.monotonic()
        try:
            status, _headers, payload = await fetch(
                host, port, "POST", "/jobs", body=body,
                timeout=config.timeout)
        except ServiceError:
            return _Outcome(warm=warm, status="error",
                            finished_at=time.monotonic())
        if status in (429, 503):
            return _Outcome(warm=warm, status="shed",
                            finished_at=time.monotonic())
        if status != 202:
            return _Outcome(warm=warm, status="error",
                            finished_at=time.monotonic())
        job_id = payload.get("job", {}).get("job_id")
        if not job_id:
            return _Outcome(warm=warm, status="error",
                            finished_at=time.monotonic())
        deadline = start + config.timeout
        while time.monotonic() < deadline:
            try:
                status, _h, payload = await fetch(
                    host, port, "GET", f"/jobs/{job_id}",
                    timeout=config.timeout)
            except ServiceError:
                await asyncio.sleep(config.poll_interval)
                continue
            state = payload.get("job", {}).get("state") \
                if status == 200 else None
            if state == "done":
                end = time.monotonic()
                return _Outcome(warm=warm, status="done",
                                latency=end - start, finished_at=end)
            if state == "quarantined":
                return _Outcome(warm=warm, status="quarantined",
                                finished_at=time.monotonic())
            await asyncio.sleep(config.poll_interval)
        return _Outcome(warm=warm, status="timeout",
                        finished_at=time.monotonic())


async def _prime(host: str, port: int, config: LoadgenConfig) -> None:
    """Run the warm pool once so warm arrivals are pure dedup hits."""
    body = {"specs": list(_warm_specs(config)),
            "priority": config.priority}
    sem = asyncio.Semaphore(1)
    outcome = await _submit_and_wait(host, port, body, config,
                                     warm=False, sem=sem)
    if outcome.status != "done":
        raise ServiceError(
            f"loadgen warm-pool priming failed: {outcome.status}")


async def _run_async(config: LoadgenConfig) -> LoadgenReport:
    host, port = _host_port(config.url)
    if config.prime:
        await _prime(host, port, config)
    rng = random.Random(config.seed)
    warm_pool = _warm_specs(config)
    sem = asyncio.Semaphore(config.max_inflight)
    tasks: List[asyncio.Task] = []
    start = time.monotonic()
    deadline = start + config.duration
    next_arrival = start
    sequence = 0
    while next_arrival < deadline:
        now = time.monotonic()
        if next_arrival > now:
            await asyncio.sleep(next_arrival - now)
        warm = rng.random() < config.warm_fraction
        if warm:
            specs = [dict(rng.choice(warm_pool))]
        else:
            # unique seed far outside the warm pool: always a cold cell
            specs = [_spec_entry(seed=1_000_000 + config.seed + sequence,
                                 refs=config.refs)]
        body = {"specs": specs, "priority": config.priority}
        tasks.append(asyncio.create_task(_submit_and_wait(
            host, port, body, config, warm=warm, sem=sem)))
        sequence += 1
        next_arrival += rng.expovariate(config.rate)
    outcomes = await asyncio.gather(*tasks)
    report = LoadgenReport(config=config, submitted=len(outcomes))
    last_finish = start
    for outcome in outcomes:
        last_finish = max(last_finish, outcome.finished_at)
        if outcome.status == "done":
            report.completed += 1
            report.latencies.append(outcome.latency)
            (report.warm_latencies if outcome.warm
             else report.cold_latencies).append(outcome.latency)
        elif outcome.status == "shed":
            report.shed += 1
        else:
            report.failed += 1
    report.elapsed = max(1e-9, last_finish - start)
    return report


def run_loadgen(config: LoadgenConfig) -> LoadgenReport:
    """One open-loop run against a live service; blocking."""
    return asyncio.run(_run_async(config))


def saturation_sweep(url: str, rates: Sequence[float],
                     base: Optional[LoadgenConfig] = None,
                     progress=None) -> List[LoadgenReport]:
    """Step the offered rate upward; one report per rate.

    The service's *saturation throughput* is the highest
    ``achieved_rate`` among the sweep points (reported per-point via
    :attr:`LoadgenReport.sustained` so the knee is visible).  The warm
    pool is primed once by the first run and deduped thereafter.
    """
    if not rates:
        raise ReproError("saturation sweep needs at least one rate")
    reports = []
    for index, rate in enumerate(rates):
        if base is None:
            config = LoadgenConfig(url=url, rate=float(rate))
        else:
            fields = dict(base.__dict__)
            fields["rate"] = float(rate)
            config = LoadgenConfig(**fields)
        if index > 0:
            config.prime = False  # pool is warm after the first run
        if progress is not None:
            progress(config)
        reports.append(run_loadgen(config))
    return reports

"""Machine-readable benchmark records.

Benchmark results are appended to JSON files at the repository root
(``BENCH_kernel.json`` for single-cell kernel latencies,
``BENCH_sweep.json`` for batch sweep throughput, and
``BENCH_service.json`` for the HTTP service/fleet tier — round-trip
latency and load-generator saturation sweeps) so the performance
trajectory of the simulator is versioned alongside its code.  Each
file is a single JSON object::

    {"schema": 1, "records": [ {...}, {...} ]}

and every record carries the benchmark name, an ISO-8601 UTC
timestamp, the parameters it ran with, and a flat ``metrics`` mapping
of floats.  Appends are read-modify-write: history is never
truncated, so plotting the trajectory is one ``json.load`` away.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Union

from ..errors import ReproError

__all__ = [
    "SCHEMA_VERSION",
    "BENCH_TARGETS",
    "BenchRecord",
    "append_records",
    "load_bench_file",
    "validate_bench_payload",
]

SCHEMA_VERSION = 1

BENCH_TARGETS = ("kernel", "sweep", "service")
"""Valid ``BenchRecord.target`` values, one ``BENCH_<t>.json`` each."""


@dataclass
class BenchRecord:
    """One benchmark observation.

    ``target`` picks the output file (one of :data:`BENCH_TARGETS`);
    it is not serialized.
    """

    bench: str
    target: str
    params: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    quick: bool = False

    def to_dict(self) -> dict:
        return {
            "bench": self.bench,
            "timestamp": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "quick": self.quick,
            "host": {
                "python": platform.python_version(),
                "machine": platform.machine(),
            },
            "params": dict(self.params),
            "metrics": {k: round(float(v), 6)
                        for k, v in self.metrics.items()},
        }


def validate_bench_payload(payload: object, path: str = "<payload>") -> None:
    """Raise :class:`ReproError` unless ``payload`` matches the schema."""
    if not isinstance(payload, dict):
        raise ReproError(f"{path}: bench file must be a JSON object")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ReproError(
            f"{path}: unsupported bench schema {payload.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    records = payload.get("records")
    if not isinstance(records, list):
        raise ReproError(f"{path}: 'records' must be a list")
    for index, record in enumerate(records):
        where = f"{path}: records[{index}]"
        if not isinstance(record, dict):
            raise ReproError(f"{where} must be an object")
        for key in ("bench", "timestamp", "params", "metrics"):
            if key not in record:
                raise ReproError(f"{where} missing required key {key!r}")
        if not isinstance(record["metrics"], dict):
            raise ReproError(f"{where}: 'metrics' must be an object")
        for name, value in record["metrics"].items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ReproError(
                    f"{where}: metric {name!r} must be a number"
                )


def load_bench_file(path: Union[str, Path]) -> dict:
    """Load and validate a bench file; empty skeleton if absent."""
    path = Path(path)
    if not path.exists():
        return {"schema": SCHEMA_VERSION, "records": []}
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path}: not valid JSON ({exc})") from exc
    validate_bench_payload(payload, str(path))
    return payload


def append_records(out_dir: Union[str, Path],
                   records: List[BenchRecord]) -> List[Path]:
    """Append records to their target files under ``out_dir``.

    Returns the paths written.  Existing history is preserved; a
    corrupt existing file raises rather than being overwritten.
    """
    out_dir = Path(out_dir)
    by_target: Dict[str, List[BenchRecord]] = {}
    for record in records:
        if record.target not in BENCH_TARGETS:
            raise ReproError(
                f"unknown bench target {record.target!r} "
                f"(expected one of {', '.join(BENCH_TARGETS)})"
            )
        by_target.setdefault(record.target, []).append(record)
    written = []
    for target, group in sorted(by_target.items()):
        path = out_dir / f"BENCH_{target}.json"
        payload = load_bench_file(path)
        payload["records"].extend(r.to_dict() for r in group)
        path.write_text(json.dumps(payload, indent=1) + "\n")
        written.append(path)
    return written

"""The fixed benchmark basket.

A small registry of wall-clock benchmarks over the public simulation
surface: cold/warm single-cell latency, reference-vs-batched kernel
speedup, sweep throughput at N worker processes, the service's warm
round-trip and open-loop load response, and the overhead of running
under a QoS controller.

``run_basket`` executes a selection and returns
:class:`~repro.bench.records.BenchRecord` rows; the CLI appends them
to ``BENCH_kernel.json`` / ``BENCH_sweep.json`` /
``BENCH_service.json`` at the repository root (each record's
``target`` picks its file).  Every benchmark is deterministic in its
simulation inputs — only the wall-clock readings vary between hosts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from ..core.experiment import ExperimentSpec, run_experiment
from ..core.store import ResultStore
from ..errors import ReproError
from .records import BenchRecord

__all__ = ["BenchContext", "bench_names", "run_basket"]


@dataclass
class BenchContext:
    """Knobs shared by every benchmark in a basket run."""

    quick: bool = False
    seed: int = 1
    jobs: int = 2
    refs: Optional[int] = None  # None = per-bench default

    def cell_refs(self, full: int, quick: int) -> int:
        if self.refs is not None:
            return self.refs
        return quick if self.quick else full


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _spec(ctx: BenchContext, refs: int, **overrides) -> ExperimentSpec:
    params = dict(mix="mix1", seed=ctx.seed, measured_refs=refs,
                  warmup_refs=refs // 2)
    params.update(overrides)
    return ExperimentSpec(**params)


# ----------------------------------------------------------------------
# kernel basket
# ----------------------------------------------------------------------


def _bench_cell_cold(ctx: BenchContext) -> List[BenchRecord]:
    """Cold single-cell latency, reference vs batched."""
    refs = ctx.cell_refs(full=4000, quick=400)
    spec = _spec(ctx, refs)
    timings = {}
    for mode in ("reference", "batched"):
        run = replace(spec, engine_mode=mode)
        timings[mode] = _timed(
            lambda run=run: run_experiment(run, use_cache=False)
        )
    speedup = timings["reference"] / max(1e-9, timings["batched"])
    return [BenchRecord(
        bench="cell-cold", target="kernel", quick=ctx.quick,
        params={"mix": spec.mix, "measured_refs": refs,
                "warmup_refs": spec.warmup_refs, "seed": ctx.seed},
        metrics={
            "reference_seconds": timings["reference"],
            "batched_seconds": timings["batched"],
            "speedup": speedup,
            "batched_cells_per_sec": 1.0 / max(1e-9, timings["batched"]),
        },
    )]


def _bench_cell_warm(ctx: BenchContext) -> List[BenchRecord]:
    """Warm-cell latency: a store hit through ``run_experiment``."""
    refs = ctx.cell_refs(full=1000, quick=300)
    spec = _spec(ctx, refs, engine_mode="batched")
    store = ResultStore()  # private, memory-only
    run_experiment(spec, store=store)  # populate
    repeats = 5 if ctx.quick else 25
    elapsed = _timed(lambda: [run_experiment(spec, store=store)
                              for _ in range(repeats)])
    return [BenchRecord(
        bench="cell-warm", target="kernel", quick=ctx.quick,
        params={"mix": spec.mix, "measured_refs": refs,
                "repeats": repeats, "seed": ctx.seed},
        metrics={"warm_ms": 1000.0 * elapsed / repeats},
    )]


def _bench_qos_overhead(ctx: BenchContext) -> List[BenchRecord]:
    """Wall-clock overhead of running under the UCP QoS controller."""
    refs = ctx.cell_refs(full=1500, quick=300)
    base = _spec(ctx, refs, sharing="shared", engine_mode="reference")
    qos = replace(base, qos_policy="ucp", qos_epoch=10_000)
    t_base = _timed(lambda: run_experiment(base, use_cache=False))
    t_qos = _timed(lambda: run_experiment(qos, use_cache=False))
    return [BenchRecord(
        bench="qos-overhead", target="kernel", quick=ctx.quick,
        params={"mix": base.mix, "measured_refs": refs,
                "policy": "ucp", "seed": ctx.seed},
        metrics={
            "plain_seconds": t_base,
            "qos_seconds": t_qos,
            "overhead_ratio": t_qos / max(1e-9, t_base),
        },
    )]


def _bench_sched_overhead(ctx: BenchContext) -> List[BenchRecord]:
    """Wall-clock overhead of the contention-aware scheduling hook."""
    refs = ctx.cell_refs(full=1500, quick=300)
    base = _spec(ctx, refs, sharing="shared", engine_mode="reference")
    sched = replace(base, sched_policy="contention", sched_epoch=10_000)
    t_base = _timed(lambda: run_experiment(base, use_cache=False))
    t_sched = _timed(lambda: run_experiment(sched, use_cache=False))
    return [BenchRecord(
        bench="sched-overhead", target="kernel", quick=ctx.quick,
        params={"mix": base.mix, "measured_refs": refs,
                "policy": "contention", "seed": ctx.seed},
        metrics={
            "plain_seconds": t_base,
            "sched_seconds": t_sched,
            "overhead_ratio": t_sched / max(1e-9, t_base),
        },
    )]


def _bench_scenario_overhead(ctx: BenchContext) -> List[BenchRecord]:
    """Wall-clock overhead of scripted scenario actuation.

    Runs the diurnal-web roster once as a plain static spec (its
    ``scn-`` mix resolves without the control hook) and once under the
    full scenario — diurnal load actuation plus a scripted departure —
    on the same over-committed shared-4 machine.
    """
    refs = ctx.cell_refs(full=1500, quick=300)
    base = ExperimentSpec(
        mix="scn-diurnal-web", sharing="shared-4", slots_per_core=2,
        measured_refs=refs, seed=ctx.seed, engine_mode="reference")
    scripted = replace(base, scenario="diurnal-web")
    t_base = _timed(lambda: run_experiment(base, use_cache=False))
    t_scenario = _timed(lambda: run_experiment(scripted, use_cache=False))
    return [BenchRecord(
        bench="scenario-overhead", target="kernel", quick=ctx.quick,
        params={"scenario": "diurnal-web", "measured_refs": refs,
                "slots_per_core": 2, "seed": ctx.seed},
        metrics={
            "plain_seconds": t_base,
            "scenario_seconds": t_scenario,
            "overhead_ratio": t_scenario / max(1e-9, t_base),
        },
    )]


def _bench_obs_tracing(ctx: BenchContext) -> List[BenchRecord]:
    """Distributed-tracing overhead guard.

    Runs the same grid through :class:`SweepExecutor` with tracing off
    and on.  The cold pass proves the spans never perturb simulation
    output (byte-identical serialized results — a hard failure if
    not); the warm pass times pure executor overhead on store hits,
    where span bookkeeping is the only extra work.
    """
    import json
    import tempfile

    from ..core.executor import SweepExecutor
    from ..core.store import result_to_dict
    from ..obs.tracing import Tracer

    refs = ctx.cell_refs(full=800, quick=300)
    specs = [
        _spec(ctx, refs, sharing=sharing, policy=policy,
              engine_mode="batched")
        for sharing in ("shared-2", "shared-4")
        for policy in ("rr", "affinity")
    ]
    cells = [((spec.sharing, spec.policy), spec) for spec in specs]

    def grid(tracer) -> tuple:
        store = ResultStore()
        executor = SweepExecutor(jobs=1, store=store, tracer=tracer)
        executor.run(cells)  # cold: simulate and fill the store
        warm = _timed(lambda: executor.run(cells))  # warm: store hits
        blobs = [json.dumps(result_to_dict(store.get(spec)),
                            sort_keys=True) for spec in specs]
        return warm, blobs

    off_s, off_blobs = grid(None)
    with tempfile.TemporaryDirectory() as td:
        tracer = Tracer("bench", log_dir=td)
        on_s, on_blobs = grid(tracer)
        spans = len(tracer.spans())
    if off_blobs != on_blobs:
        raise ReproError(
            "tracing perturbed simulation output: results with the "
            "tracer enabled are not byte-identical")

    # warm service round-trip with and without span logging: the
    # end-to-end figure the CI overhead guard holds to within 5%
    from ..service import ServiceClient, ServiceServer

    repeats = 5 if ctx.quick else 15
    rt_spec = specs[0]

    def roundtrip_ms(trace_dir) -> float:
        server = ServiceServer(port=0, trace_dir=trace_dir)
        server.start_in_thread()
        try:
            client = ServiceClient(
                f"http://{server.host}:{server.port}")
            job = client.submit([rt_spec])  # warm the store
            client.wait(job["job_id"], timeout=120.0)

            def once():
                handle = client.submit([rt_spec])
                client.wait(handle["job_id"], timeout=120.0)

            times = sorted(_timed(once) for _ in range(repeats))
            return 1000.0 * times[len(times) // 2]  # median
        finally:
            server.shutdown()

    rt_off = roundtrip_ms(None)
    with tempfile.TemporaryDirectory() as td:
        rt_on = roundtrip_ms(td)

    return [BenchRecord(
        bench="obs-tracing", target="kernel", quick=ctx.quick,
        params={"mix": "mix1", "measured_refs": refs,
                "cells": len(cells), "seed": ctx.seed},
        metrics={
            "off_ms": 1000.0 * off_s,
            "on_ms": 1000.0 * on_s,
            "overhead_ratio": on_s / max(1e-9, off_s),
            "roundtrip_off_ms": rt_off,
            "roundtrip_on_ms": rt_on,
            "roundtrip_overhead_ratio": rt_on / max(1e-9, rt_off),
            "byte_identical": 1.0,
            "spans": float(spans),
        },
    )]


# ----------------------------------------------------------------------
# sweep / service basket
# ----------------------------------------------------------------------


def _bench_sweep_throughput(ctx: BenchContext) -> List[BenchRecord]:
    """Cold sweep throughput (cells/sec) at N worker processes."""
    from ..core.executor import SweepExecutor

    refs = ctx.cell_refs(full=1200, quick=300)
    sharings = ("shared-2", "shared-4")
    policies = ("rr", "affinity")
    specs = [
        _spec(ctx, refs, sharing=sharing, policy=policy,
              engine_mode="batched")
        for sharing in sharings for policy in policies
    ]
    jobs = 1 if ctx.quick else ctx.jobs
    executor = SweepExecutor(jobs=jobs, store=ResultStore())
    cells = [((spec.sharing, spec.policy), spec) for spec in specs]
    elapsed = _timed(lambda: executor.run(cells))
    return [BenchRecord(
        bench="sweep-throughput", target="sweep", quick=ctx.quick,
        params={"mix": "mix1", "measured_refs": refs, "jobs": jobs,
                "cells": len(specs), "seed": ctx.seed},
        metrics={
            "seconds": elapsed,
            "cells_per_sec": len(specs) / max(1e-9, elapsed),
        },
    )]


def _bench_service_roundtrip(ctx: BenchContext) -> List[BenchRecord]:
    """Warm round-trip through the HTTP job API (all cells cached)."""
    from ..service import ServiceClient, ServiceServer

    refs = ctx.cell_refs(full=600, quick=300)
    spec = _spec(ctx, refs, engine_mode="batched")
    server = ServiceServer(port=0).start_in_thread()
    try:
        client = ServiceClient(f"http://{server.host}:{server.port}")
        # first job simulates and fills the server's store ...
        job = client.submit([spec])
        client.wait(job["job_id"], timeout=120.0)
        # ... so the timed round-trips are pure service overhead
        repeats = 3 if ctx.quick else 10

        def roundtrip():
            handle = client.submit([spec])
            client.wait(handle["job_id"], timeout=120.0)

        elapsed = _timed(lambda: [roundtrip() for _ in range(repeats)])
    finally:
        server.shutdown()
    return [BenchRecord(
        bench="service-roundtrip", target="service", quick=ctx.quick,
        params={"mix": spec.mix, "measured_refs": refs,
                "repeats": repeats, "seed": ctx.seed},
        metrics={"warm_roundtrip_ms": 1000.0 * elapsed / repeats},
    )]


def _bench_service_loadgen(ctx: BenchContext) -> List[BenchRecord]:
    """Open-loop Poisson load against a single in-process worker."""
    from ..service import ServiceServer
    from .loadgen import LoadgenConfig, run_loadgen

    refs = ctx.cell_refs(full=600, quick=300)
    server = ServiceServer(port=0, concurrency=2).start_in_thread()
    try:
        config = LoadgenConfig(
            url=f"http://{server.host}:{server.port}",
            rate=5.0 if ctx.quick else 20.0,
            duration=2.0 if ctx.quick else 5.0,
            warm_fraction=0.8,
            pool=4,
            refs=refs,
            seed=ctx.seed,
        )
        report = run_loadgen(config)
    finally:
        server.shutdown()
    return [report.to_record(quick=ctx.quick,
                             extra_params={"workers": 1})]


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_BASKET: Dict[str, Callable[[BenchContext], List[BenchRecord]]] = {
    "cell-cold": _bench_cell_cold,
    "cell-warm": _bench_cell_warm,
    "qos-overhead": _bench_qos_overhead,
    "sched-overhead": _bench_sched_overhead,
    "scenario-overhead": _bench_scenario_overhead,
    "obs-tracing": _bench_obs_tracing,
    "sweep-throughput": _bench_sweep_throughput,
    "service-roundtrip": _bench_service_roundtrip,
    "service-loadgen": _bench_service_loadgen,
}


def bench_names() -> List[str]:
    return list(_BASKET)


def run_basket(names: Optional[List[str]] = None,
               ctx: Optional[BenchContext] = None,
               progress=None) -> List[BenchRecord]:
    """Run the selected benchmarks (default: the whole basket)."""
    ctx = ctx or BenchContext()
    selected = names or bench_names()
    unknown = [n for n in selected if n not in _BASKET]
    if unknown:
        raise ReproError(
            f"unknown benchmark(s) {', '.join(unknown)}; "
            f"available: {', '.join(bench_names())}"
        )
    records: List[BenchRecord] = []
    for name in selected:
        if progress is not None:
            progress(name)
        records.extend(_BASKET[name](ctx))
    return records

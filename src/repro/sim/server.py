"""FIFO resource servers used for contention modelling.

The timing model is *timing-directed trace simulation*: the global event
loop processes references in global-time order, and every shared hardware
resource (an L2 bank, a mesh link, a memory channel) is modelled as a
FIFO server with a deterministic service time.  A request arriving at
time ``t`` waits until the server's ``busy_until`` clock, occupies it for
the service time, and experiences ``wait + service`` cycles of delay.

This is the standard queueing abstraction used by fast architectural
models; it reproduces the congestion phenomena the paper reports
(affinity scheduling creating interconnect hotspots, memory-controller
pressure from cache thrashing) without flit- or beat-level detail.  The
flit-level router in :mod:`repro.interconnect.router` is used to
calibrate the link service times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FifoServer", "ServerStats"]


@dataclass
class ServerStats:
    """Aggregate statistics for one :class:`FifoServer`."""

    requests: int = 0
    busy_cycles: int = 0
    wait_cycles: int = 0
    last_arrival: int = 0

    @property
    def mean_wait(self) -> float:
        """Average queueing delay per request, in cycles."""
        return self.wait_cycles / self.requests if self.requests else 0.0

    def utilization(self, horizon: int) -> float:
        """Fraction of ``horizon`` cycles the server was busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / horizon)


@dataclass
class FifoServer:
    """A single-queue, single-server resource with deterministic service.

    Parameters
    ----------
    name:
        Diagnostic label (e.g. ``"l2/domain0"`` or ``"link/5->6"``).
    service_time:
        Default occupancy per request, in cycles.

    Notes
    -----
    The global event loop guarantees non-decreasing arrival times, so a
    simple ``busy_until`` register implements an exact FIFO M/D/1-style
    queue.  Arrivals that regress in time (possible only through API
    misuse) are clamped to the last arrival to keep the server
    consistent rather than raising deep inside the hot path.
    """

    name: str
    service_time: int
    busy_until: int = 0
    stats: ServerStats = field(default_factory=ServerStats)

    def request(self, now: int, service_time: int | None = None) -> int:
        """Occupy the server starting no earlier than ``now``.

        Returns the queueing *wait* in cycles (0 when the server is
        idle).  The caller adds its own service latency; the server
        tracks occupancy for utilization statistics.
        """
        if service_time is None:
            service_time = self.service_time
        if now < self.stats.last_arrival:
            now = self.stats.last_arrival
        wait = self.busy_until - now
        if wait < 0:
            wait = 0
        self.busy_until = now + wait + service_time
        s = self.stats
        s.requests += 1
        s.busy_cycles += service_time
        s.wait_cycles += wait
        s.last_arrival = now
        return wait

    def peek_wait(self, now: int) -> int:
        """Queueing delay a request arriving at ``now`` would see."""
        wait = self.busy_until - now
        return wait if wait > 0 else 0

    def queue_depth(self, now: int) -> float:
        """Outstanding work at ``now`` in units of service times.

        0.0 when idle; 1.0 means one full service time of backlog.
        Read-only (telemetry probes call this between requests).
        """
        pending = self.busy_until - now
        if pending <= 0:
            return 0.0
        if self.service_time <= 0:
            return float(pending)
        return pending / self.service_time

    def reset(self) -> None:
        """Clear occupancy and statistics."""
        self.busy_until = 0
        self.stats = ServerStats()

"""Global-time event loop driving the trace simulation.

The engine owns a priority queue of (ready-time, core) pairs.  Each step
pops the core with the smallest local time, pulls the next memory
reference from the thread bound to that core, sends it through the
machine model, and re-inserts the core at its completion time.  Because
cores are processed in non-decreasing global time, the FIFO resource
servers in :mod:`repro.sim.server` observe monotone arrivals and model
contention exactly.

Measurement methodology mirrors Section IV of the paper:

* each thread issues a fixed number of *measured* references (its
  "transactions"), preceded by a warm-up phase excluded from statistics;
* a virtual machine *completes* when all of its threads have issued
  their measured references; the per-VM cycle count is that completion
  time (the paper's normalized runtime metric);
* threads of completed VMs keep running (the workload is "restarted")
  so the machine stays filled to capacity until every VM completes,
  keeping the system in steady state.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Protocol, Tuple

from ..errors import SimulationError
from .records import AccessResult, HitLevel, LatencyBreakdown, MemoryReference

__all__ = ["MachineModel", "ThreadContext", "ThreadStats", "Engine", "EngineResult"]


class MachineModel(Protocol):
    """Timing interface the engine drives.

    Implemented by :class:`repro.machine.chip.Chip`; the engine itself
    only needs this one method, which keeps the engine unit-testable
    against trivial fake machines.
    """

    def access(self, core_id: int, block: int, is_write: bool, now: int) -> AccessResult:
        """Perform one reference and return its timing outcome."""
        ...


@dataclass
class ThreadStats:
    """Counters accumulated over a thread's *measured* references."""

    refs: int = 0
    reads: int = 0
    writes: int = 0
    think_cycles: int = 0
    latency_cycles: int = 0
    miss_latency_cycles: int = 0
    cache_cycles: int = 0
    network_cycles: int = 0
    directory_cycles: int = 0
    memory_cycles: int = 0
    level_counts: Dict[HitLevel, int] = field(
        default_factory=lambda: {level: 0 for level in HitLevel}
    )

    @property
    def cycles(self) -> int:
        """Busy cycles: one per instruction plus memory stall cycles."""
        return self.refs + self.think_cycles + self.latency_cycles

    @property
    def l1_misses(self) -> int:
        return sum(
            count for level, count in self.level_counts.items() if level.is_l1_miss
        )

    @property
    def l2_misses(self) -> int:
        """Misses seen by the VM: references not satisfied on the local L2."""
        return sum(
            count for level, count in self.level_counts.items() if level.is_l2_miss
        )

    @property
    def c2c_transfers(self) -> int:
        return (
            self.level_counts[HitLevel.C2C_CLEAN]
            + self.level_counts[HitLevel.C2C_DIRTY]
        )

    @property
    def mean_miss_latency(self) -> float:
        """Average latency of L1 misses, the paper's miss-latency metric."""
        misses = self.l1_misses
        return self.miss_latency_cycles / misses if misses else 0.0

    @property
    def breakdown(self) -> LatencyBreakdown:
        return LatencyBreakdown(
            cache=self.cache_cycles,
            network=self.network_cycles,
            directory=self.directory_cycles,
            memory=self.memory_cycles,
        )

    def record(self, access: int, think: int, result: AccessResult) -> None:
        self.refs += 1
        if access:
            self.writes += 1
        else:
            self.reads += 1
        self.think_cycles += think
        self.latency_cycles += result.latency
        self.level_counts[result.level] += 1
        if result.level >= HitLevel.L2:  # inline of level.is_l1_miss
            self.miss_latency_cycles += result.latency
        self.cache_cycles += result.cache_cycles
        self.network_cycles += result.network_cycles
        self.directory_cycles += result.directory_cycles
        self.memory_cycles += result.memory_cycles


class ThreadContext:
    """One workload thread bound to one physical core.

    Parameters
    ----------
    thread_id:
        Globally unique thread index.
    vm_id:
        Virtual machine the thread belongs to.
    core_id:
        Physical core the hypervisor bound this thread to (static
        binding, per the paper's methodology).
    references:
        Iterator of :class:`MemoryReference`.  Must be effectively
        infinite (workload generators restart transparently); the engine
        decides when to stop consuming.
    measured_refs:
        Number of references that constitute the thread's measured run.
    warmup_refs:
        References consumed before measurement starts.
    start_time:
        Cycle at which the thread issues its first reference.  The
        paper flags workload start times as a methodological variable
        worth exploring (Section VIII); staggered starts let the
        start-time ablation do exactly that.
    stop_time:
        Cycle at which the thread *departs* (VM churn): at its first
        issue at or past this cycle the thread retires instead of
        issuing, freeing its core for the rest of the run.  ``None``
        (the default) keeps the paper's semantics — threads run until
        every VM completes.
    """

    def __init__(
        self,
        thread_id: int,
        vm_id: int,
        core_id: int,
        references: Iterator[MemoryReference],
        measured_refs: int,
        warmup_refs: int = 0,
        start_time: int = 0,
        stop_time: Optional[int] = None,
    ):
        if measured_refs <= 0:
            raise ValueError("measured_refs must be positive")
        if warmup_refs < 0:
            raise ValueError("warmup_refs must be non-negative")
        if start_time < 0:
            raise ValueError("start_time must be non-negative")
        if stop_time is not None and stop_time <= start_time:
            raise ValueError("stop_time must be after start_time")
        self.thread_id = thread_id
        self.vm_id = vm_id
        self.core_id = core_id
        self.references = references
        self.measured_refs = measured_refs
        self.warmup_refs = warmup_refs
        self.start_time = start_time
        self.stop_time = stop_time
        self.issued = 0
        self.stats = ThreadStats()
        self.completion_time: Optional[int] = None

    @property
    def measured_done(self) -> bool:
        return self.issued >= self.warmup_refs + self.measured_refs

    @property
    def in_warmup(self) -> bool:
        return self.issued < self.warmup_refs


@dataclass
class EngineResult:
    """Outcome of one engine run."""

    final_time: int
    vm_completion_times: Dict[int, int]
    thread_stats: Dict[int, ThreadStats]
    total_refs_processed: int
    #: populated by the over-commit engine; always 0 for the base engine
    context_switches: int = 0

    def vm_threads(self, vm_id: int) -> List[ThreadStats]:
        """Stats of every thread belonging to ``vm_id``."""
        return [
            stats
            for tid, stats in sorted(self.thread_stats.items())
            if self._vm_of[tid] == vm_id
        ]

    # filled by the engine after construction
    _vm_of: Dict[int, int] = field(default_factory=dict)


class Engine:
    """Drives threads through a machine model until every VM completes.

    Parameters
    ----------
    machine:
        Timing model implementing :class:`MachineModel`.
    threads:
        All thread contexts; at most one per physical core (the paper
        never over-commits the machine).
    max_steps:
        Safety valve against runaway simulations; exceeded only on a
        simulator bug, in which case :class:`SimulationError` is raised.
    probe:
        Optional :class:`~repro.obs.probes.EpochProbe` sampling per-VM
        time series as simulated time advances.  Probes are strictly
        read-only: a run with a probe is bit-identical to one without
        (the probe costs one ``is not None`` test per step when absent).
    control:
        Optional :class:`~repro.qos.hook.QosHook` driven with the same
        per-step cadence as ``probe``.  Unlike probes, a control hook
        *may* change machine state (it rewrites live way quotas at
        control-epoch boundaries) — that is its purpose.
    """

    def __init__(
        self,
        machine: MachineModel,
        threads: List[ThreadContext],
        max_steps: Optional[int] = None,
        probe=None,
        control=None,
    ):
        cores_seen = set()
        for thread in threads:
            if thread.core_id in cores_seen:
                raise SimulationError(
                    f"core {thread.core_id} bound to more than one thread; "
                    "the consolidation methodology never over-commits cores"
                )
            cores_seen.add(thread.core_id)
        if not threads:
            raise SimulationError("engine needs at least one thread")
        self.machine = machine
        self.threads = {t.thread_id: t for t in threads}
        self.probe = probe
        self.control = control
        demand = sum(t.warmup_refs + t.measured_refs for t in threads)
        # Completed VMs keep running while others finish; 32x the
        # measured demand is far beyond any legitimate imbalance.
        self.max_steps = max_steps if max_steps is not None else 32 * demand
        # heterogeneous cores: per-core think-cycle multipliers, or
        # None on a homogeneous machine (exact legacy arithmetic)
        self._inv_speeds = getattr(machine, "inverse_core_speeds", None)
        # one-shot issue delays charged by scheduler migrations
        self._delays: Dict[int, int] = {}
        self._has_stops = any(t.stop_time is not None for t in threads)
        # threads that departed via stop_time (VM churn)
        self._retired: set = set()

    # ------------------------------------------------------------------
    # scheduler actuation (see repro.sched.hook.SchedHook)
    # ------------------------------------------------------------------

    def run_queues(self) -> Dict[int, List[int]]:
        """Per-core thread binding as singleton run queues.

        Mirrors :meth:`repro.sim.overcommit.OvercommitEngine.run_queues`
        so epoch hooks can treat both engines uniformly; on this engine
        every queue holds exactly the one running thread.  Cores freed
        by departed (churned) threads are omitted — they are idle.
        """
        return {
            t.core_id: [tid]
            for tid, t in sorted(self.threads.items())
            if tid not in self._retired
        }

    def apply_migrations(
        self, moves: Dict[int, int], now: int, penalty: int = 0
    ) -> int:
        """Atomically rebind threads to new cores at a control epoch.

        ``moves`` maps thread id to destination core.  The post-move
        binding must still place at most one thread per core (swaps
        are expressed by moving both parties), otherwise
        :class:`SimulationError` — schedulers are expected to propose
        valid permutations.  Each moved thread is charged ``penalty``
        cycles before its next issue, modelling the cold-cache /
        context-transfer cost of the migration.  Returns the number of
        threads actually moved (no-op moves are skipped).
        """
        real = {
            tid: core
            for tid, core in moves.items()
            if tid in self.threads
            and tid not in self._retired
            and self.threads[tid].core_id != core
        }
        if not real:
            return 0
        new_core = {
            t.thread_id: t.core_id
            for t in self.threads.values()
            if t.thread_id not in self._retired
        }
        new_core.update(real)
        if len(set(new_core.values())) != len(new_core):
            raise SimulationError(
                "scheduler migration would bind two threads to one core; "
                f"proposed moves: {sorted(real.items())}"
            )
        for tid, core in real.items():
            self.threads[tid].core_id = core
            if penalty:
                self._delays[tid] = self._delays.get(tid, 0) + penalty
        return len(real)

    def run(self) -> EngineResult:
        """Execute until every VM has completed its measured references.

        The heap is keyed on each thread's next *issue* time (its ready
        time plus the pending reference's think time), so references
        hit shared resources in globally non-decreasing time order —
        the property the FIFO contention servers rely on.
        """
        threads = self.threads
        inv = self._inv_speeds
        pending: Dict[int, tuple] = {}
        heap: List[Tuple[int, int]] = []
        for tid in sorted(threads):
            ref = next(threads[tid].references, None)
            if ref is None:
                raise SimulationError(
                    f"thread {tid} reference stream ended; workload "
                    "generators must be infinite (restart on completion)"
                )
            pending[tid] = ref
            think = (
                ref[2] if inv is None
                else int(ref[2] * inv[threads[tid].core_id])
            )
            heap.append((threads[tid].start_time + think, tid))
        heapq.heapify(heap)

        vm_pending: Dict[int, int] = {}
        for thread in threads.values():
            vm_pending[thread.vm_id] = vm_pending.get(thread.vm_id, 0) + 1
        vm_completion: Dict[int, int] = {}
        pending_vms = len(vm_pending)

        probe = self.probe
        control = self.control
        # the hook only acts at control-epoch boundaries, so the hot
        # loop gates on its published next-due cycle: an int compare
        # per step instead of a Python call into an early-returning
        # on_step
        control_due = control.next_due if control is not None else None
        delays = self._delays
        has_stops = self._has_stops
        steps = 0
        while pending_vms > 0:
            steps += 1
            if steps > self.max_steps:
                raise SimulationError(
                    f"engine exceeded {self.max_steps} steps without all "
                    f"VMs completing; {pending_vms} VM(s) still pending"
                )
            issue_time, tid = heapq.heappop(heap)
            if probe is not None:
                probe.on_step(issue_time)
            if control_due is not None and issue_time >= control_due:
                control.on_step(issue_time)
                control_due = control.next_due
            if delays:
                # a scheduler migration charged this thread a one-shot
                # cost: push its issue out and retry (same re-insertion
                # pattern as the MigratingEngine)
                extra = delays.pop(tid, 0)
                if extra:
                    heapq.heappush(heap, (issue_time + extra, tid))
                    continue
            thread = threads[tid]
            if has_stops and thread.stop_time is not None \
                    and issue_time >= thread.stop_time:
                # VM churn: the thread departs at its first issue past
                # stop_time.  A truncated measured window completes at
                # departure; the freed core stays idle for the rest of
                # the run (dynamic schedulers may migrate onto it).
                self._retired.add(tid)
                if thread.completion_time is None:
                    thread.completion_time = issue_time
                    vm = thread.vm_id
                    vm_pending[vm] -= 1
                    if vm_pending[vm] == 0:
                        vm_completion[vm] = issue_time
                        pending_vms -= 1
                        if probe is not None:
                            probe.on_vm_complete(vm, issue_time)
                continue
            block, access, think = pending[tid]
            result = self.machine.access(
                thread.core_id, block, bool(access), issue_time
            )
            finish = issue_time + result.latency + 1  # +1: the access itself

            index = thread.issued
            thread.issued += 1
            window_start = thread.warmup_refs
            window_end = window_start + thread.measured_refs
            if window_start <= index < window_end:
                if inv is not None:
                    # charge the think cycles the thread actually spent
                    # on its (possibly slow) core
                    think = int(think * inv[thread.core_id])
                thread.stats.record(access, think, result)
                if thread.issued == window_end:
                    thread.completion_time = finish
                    vm = thread.vm_id
                    vm_pending[vm] -= 1
                    if vm_pending[vm] == 0:
                        vm_completion[vm] = finish
                        pending_vms -= 1
                        if probe is not None:
                            probe.on_vm_complete(vm, finish)
            next_ref = next(thread.references, None)
            if next_ref is None:
                raise SimulationError(
                    f"thread {tid} reference stream ended; workload "
                    "generators must be infinite (restart on completion)"
                )
            pending[tid] = next_ref
            next_think = (
                next_ref[2] if inv is None
                else int(next_ref[2] * inv[thread.core_id])
            )
            heapq.heappush(heap, (finish + next_think, tid))

        # The run "finishes" when the last VM completes: the maximum
        # completion time.  (The last *popped* issue_time undercounts
        # the completing access's latency and is not necessarily the
        # largest completion across VMs.)
        final_time = max(vm_completion.values())
        if probe is not None:
            probe.finish(final_time)
        if control is not None:
            control.finish(final_time)
        result = EngineResult(
            final_time=final_time,
            vm_completion_times=vm_completion,
            thread_stats={tid: t.stats for tid, t in threads.items()},
            total_refs_processed=steps,
        )
        result._vm_of = {tid: t.vm_id for tid, t in threads.items()}
        return result

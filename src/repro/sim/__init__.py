"""Simulation substrate: RNG streams, records, servers, event engine."""

from .dynamic import AffinityRebinder, MigratingEngine, RandomRebinder
from .engine import Engine, EngineResult, MachineModel, ThreadContext, ThreadStats
from .overcommit import OvercommitEngine
from .records import (
    BLOCK_BYTES,
    BLOCK_SHIFT,
    AccessResult,
    AccessType,
    HitLevel,
    LatencyBreakdown,
    MemoryReference,
)
from .rng import RngFactory, derive_seed, stream
from .server import FifoServer, ServerStats

__all__ = [
    "AffinityRebinder",
    "MigratingEngine",
    "RandomRebinder",
    "Engine",
    "EngineResult",
    "MachineModel",
    "ThreadContext",
    "ThreadStats",
    "BLOCK_BYTES",
    "BLOCK_SHIFT",
    "AccessResult",
    "AccessType",
    "HitLevel",
    "LatencyBreakdown",
    "MemoryReference",
    "RngFactory",
    "derive_seed",
    "stream",
    "FifoServer",
    "ServerStats",
]

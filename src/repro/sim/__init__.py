"""Simulation substrate: RNG streams, records, engines, engine factory."""

from ._batchfold import HAVE_NUMPY, PrivateState, fold_private
from .batched import BatchedEngine
from .dynamic import AffinityRebinder, MigratingEngine, RandomRebinder
from .engine import Engine, EngineResult, MachineModel, ThreadContext, ThreadStats
from .factory import (
    EngineRequest,
    engine_modes,
    make_engine,
    register_engine,
    resolve_mode,
)
from .overcommit import OvercommitEngine
from .records import (
    BLOCK_BYTES,
    BLOCK_SHIFT,
    AccessResult,
    AccessType,
    HitLevel,
    LatencyBreakdown,
    MemoryReference,
)
from .rng import RngFactory, derive_seed, stream
from .server import FifoServer, ServerStats

__all__ = [
    "HAVE_NUMPY",
    "PrivateState",
    "fold_private",
    "BatchedEngine",
    "EngineRequest",
    "engine_modes",
    "make_engine",
    "register_engine",
    "resolve_mode",
    "AffinityRebinder",
    "MigratingEngine",
    "RandomRebinder",
    "Engine",
    "EngineResult",
    "MachineModel",
    "ThreadContext",
    "ThreadStats",
    "OvercommitEngine",
    "BLOCK_BYTES",
    "BLOCK_SHIFT",
    "AccessResult",
    "AccessType",
    "HitLevel",
    "LatencyBreakdown",
    "MemoryReference",
    "RngFactory",
    "derive_seed",
    "stream",
    "FifoServer",
    "ServerStats",
]

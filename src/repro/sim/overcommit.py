"""Over-committed execution: more threads than cores.

The paper's methodology never over-commits the machine, but Section VII
names over-commitment (and the resulting context-switch-driven thread
placement) as the future-work scenario its *random* scheduling policy
approximates.  :class:`OvercommitEngine` implements it: each core
time-multiplexes a run queue of threads with a fixed reference quantum
and a context-switch penalty, so the "seemingly random" assignment the
paper describes emerges from actual scheduling churn instead of being
assumed.

Measurement semantics match :class:`~repro.sim.engine.Engine`: per-
thread warm-up then a measured window, per-VM completion at the last
thread's window end, finished VMs keep running until all complete.
VM churn composes the same way it does on the base engine: a thread
with a ``stop_time`` retires at its first issue past it, leaving its
run-queue slot free (a fully drained queue idles the core until a
scheduler migrates a waiting thread onto it).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Tuple

from ..errors import SimulationError
from .engine import EngineResult, MachineModel, ThreadContext

__all__ = ["OvercommitEngine"]


class OvercommitEngine:
    """Time-multiplexes thread run queues on each core.

    Parameters
    ----------
    machine:
        The timing model.
    threads:
        Thread contexts; multiple threads may name the same core.
    quantum_refs:
        References a thread issues before the core switches to the
        next queued thread (only when others are waiting).
    switch_penalty:
        Cycles charged on every context switch (pipeline refill, state
        swap); misses caused by the evicted thread's cooled-down cache
        footprint emerge from the cache model itself.
    control:
        Optional :class:`~repro.qos.hook.QosHook` called once per step.
        Beyond quota rewrites, a control hook attached to this engine
        may also migrate *waiting* threads between run queues through
        :meth:`rebind_thread` (QoS-driven load shedding).
    """

    def __init__(
        self,
        machine: MachineModel,
        threads: List[ThreadContext],
        quantum_refs: int = 64,
        switch_penalty: int = 200,
        max_steps: int | None = None,
        control=None,
    ):
        if not threads:
            raise SimulationError("engine needs at least one thread")
        if quantum_refs <= 0:
            raise SimulationError("quantum_refs must be positive")
        if switch_penalty < 0:
            raise SimulationError("switch_penalty must be non-negative")
        self.machine = machine
        self.threads = {t.thread_id: t for t in threads}
        self.quantum_refs = quantum_refs
        self.switch_penalty = switch_penalty
        self.control = control
        demand = sum(t.warmup_refs + t.measured_refs for t in threads)
        self.max_steps = max_steps if max_steps is not None else 64 * demand
        self._queues: Dict[int, Deque[int]] = {}
        for thread in threads:
            self._queues.setdefault(thread.core_id, deque()).append(
                thread.thread_id
            )
        # run-state shared with the QoS re-bind actuator (filled in run)
        self._pending: Dict[int, tuple] = {}
        self._heap: List[Tuple[int, int]] = []
        self._quantum_left: Dict[int, int] = {}
        self._bind = None
        self.qos_rebinds = 0
        self._has_stops = any(t.stop_time is not None for t in threads)
        # threads that departed via stop_time (VM churn)
        self._retired: set = set()
        # heterogeneous cores: per-core think multipliers, or None on
        # a homogeneous machine (exact legacy arithmetic)
        self._inv_speeds = getattr(machine, "inverse_core_speeds", None)

    def _think(self, core: int, think: int) -> int:
        """Think cycles as spent on ``core`` (scaled when heterogeneous)."""
        inv = self._inv_speeds
        return think if inv is None else int(think * inv[core])

    # -- QoS actuator surface (used by repro.qos.hook.QosHook) ---------

    def run_queues(self) -> Dict[int, List[int]]:
        """Snapshot of each core's run queue (head = active thread).

        Queues drained by departed (churned) threads are omitted, like
        the base engine's freed cores — those cores are idle.
        """
        return {core: list(queue) for core, queue in self._queues.items()
                if queue}

    def rebind_thread(self, tid: int, core: int, now: int):
        """Migrate a *waiting* thread to another core's run queue.

        Returns ``None`` when the move is refused (unknown thread, a
        no-op move, or the thread is at the head of its queue — i.e.
        currently running), ``True`` when the thread became the head of
        a previously idle core (which gets a fresh heap entry and the
        VM binding), and ``False`` when it joined the tail of a busy
        queue and will run at a future rotation.
        """
        thread = self.threads.get(tid)
        if thread is None or core == thread.core_id:
            return None
        source = self._queues.get(thread.core_id)
        if not source or source[0] == tid or tid not in source:
            return None
        source.remove(tid)
        target = self._queues.setdefault(core, deque())
        became_head = not target
        target.append(tid)
        thread.core_id = core
        self.qos_rebinds += 1
        if became_head:
            # wake the idle core: charge a switch penalty and schedule
            # the migrated thread's pending reference
            self._quantum_left[core] = self.quantum_refs
            heapq.heappush(
                self._heap,
                (now + self.switch_penalty
                 + self._think(core, self._pending[tid][2]), core),
            )
            if self._bind is not None:
                self._bind(core, thread.vm_id)
        return became_head

    def run(self) -> EngineResult:
        threads = self.threads
        queues = self._queues
        pending = self._pending
        for tid, thread in threads.items():
            ref = next(thread.references, None)
            if ref is None:
                raise SimulationError(f"thread {tid} stream ended at start")
            pending[tid] = ref

        # heap of (next issue time, core); each core runs the thread at
        # the head of its queue
        heap = self._heap
        quantum_left = self._quantum_left
        # keep the machine's core->VM attribution in step with the
        # active thread so occupancy snapshots stay meaningful
        bind = self._bind = getattr(self.machine, "bind_core_to_vm", None)
        for core, queue in queues.items():
            tid = queue[0]
            thread = threads[tid]
            if bind is not None:
                bind(core, thread.vm_id)
            heap.append(
                (thread.start_time + self._think(core, pending[tid][2]), core)
            )
            quantum_left[core] = self.quantum_refs
        heapq.heapify(heap)

        vm_pending: Dict[int, int] = {}
        for thread in threads.values():
            vm_pending[thread.vm_id] = vm_pending.get(thread.vm_id, 0) + 1
        vm_completion: Dict[int, int] = {}
        pending_vms = len(vm_pending)

        control = self.control
        # epoch-gated like the base engine: int compare per step
        control_due = control.next_due if control is not None else None
        has_stops = self._has_stops
        steps = 0
        issue_time = 0
        context_switches = 0
        while pending_vms > 0:
            steps += 1
            if steps > self.max_steps:
                raise SimulationError(
                    f"over-commit engine exceeded {self.max_steps} steps; "
                    f"{pending_vms} VM(s) still pending"
                )
            issue_time, core = heapq.heappop(heap)
            if control_due is not None and issue_time >= control_due:
                # the hook may rewrite quotas and migrate *waiting*
                # threads; the popped core's head thread never moves
                control.on_step(issue_time)
                control_due = control.next_due
            queue = queues[core]
            tid = queue[0]
            thread = threads[tid]
            if has_stops and thread.stop_time is not None \
                    and issue_time >= thread.stop_time:
                # VM churn: the head thread departs at its first issue
                # past stop_time, freeing its queue slot.  A truncated
                # measured window completes at departure.  The next
                # queued thread takes the core (one switch penalty); a
                # drained queue idles the core until a scheduler
                # migrates a waiting thread onto it.
                queue.popleft()
                self._retired.add(tid)
                if thread.completion_time is None:
                    thread.completion_time = issue_time
                    vm = thread.vm_id
                    vm_pending[vm] -= 1
                    if vm_pending[vm] == 0:
                        vm_completion[vm] = issue_time
                        pending_vms -= 1
                if queue:
                    next_tid = queue[0]
                    quantum_left[core] = self.quantum_refs
                    context_switches += 1
                    if bind is not None \
                            and threads[next_tid].vm_id != thread.vm_id:
                        bind(core, threads[next_tid].vm_id)
                    heapq.heappush(
                        heap,
                        (issue_time + self.switch_penalty
                         + self._think(core, pending[next_tid][2]), core),
                    )
                continue
            block, access, think = pending[tid]
            result = self.machine.access(core, block, bool(access), issue_time)
            finish = issue_time + result.latency + 1

            index = thread.issued
            thread.issued += 1
            window_start = thread.warmup_refs
            window_end = window_start + thread.measured_refs
            if window_start <= index < window_end:
                thread.stats.record(access, self._think(core, think), result)
                if thread.issued == window_end:
                    thread.completion_time = finish
                    vm = thread.vm_id
                    vm_pending[vm] -= 1
                    if vm_pending[vm] == 0:
                        vm_completion[vm] = finish
                        pending_vms -= 1

            next_ref = next(thread.references, None)
            if next_ref is None:
                raise SimulationError(f"thread {tid} stream ended mid-run")
            pending[tid] = next_ref

            quantum_left[core] -= 1
            if quantum_left[core] <= 0 and len(queue) > 1:
                queue.rotate(-1)
                quantum_left[core] = self.quantum_refs
                finish += self.switch_penalty
                context_switches += 1
                next_tid = queue[0]
                if bind is not None and threads[next_tid].vm_id != thread.vm_id:
                    bind(core, threads[next_tid].vm_id)
            else:
                if quantum_left[core] <= 0:
                    quantum_left[core] = self.quantum_refs
                next_tid = tid
            heapq.heappush(
                heap, (finish + self._think(core, pending[next_tid][2]), core)
            )

        final_time = max(vm_completion.values())
        if control is not None:
            control.finish(final_time)
        result = EngineResult(
            # the run ends when the last VM completes (max completion
            # time), not at the last popped issue time
            final_time=final_time,
            vm_completion_times=vm_completion,
            thread_stats={tid: t.stats for tid, t in threads.items()},
            total_refs_processed=steps,
        )
        result._vm_of = {tid: t.vm_id for tid, t in threads.items()}
        result.context_switches = context_switches
        return result

"""Batched (epoch-folded) execution kernel.

:class:`BatchedEngine` is the fast, approximate counterpart to the
byte-exact reference :class:`~repro.sim.engine.Engine`.  Instead of
stepping one reference at a time through cache/coherence/mesh objects,
it advances every thread one *epoch* (``epoch_refs`` references) at a
time:

1. each thread's address stream for the epoch is pulled as a batch
   (numpy arrays when available — see
   :meth:`repro.workloads.generator.ThreadTrace.take_batch`);
2. references are classified against a stack-distance model of the
   private L0/L1 (:mod:`repro.sim._batchfold`) — the vectorized hot
   path, since it sees every reference;
3. the surviving L2-level references are folded through per-set
   occupancy state per L2 domain, classifying local hits,
   cross-domain cache-to-cache transfers, and memory fetches;
4. coherence effects of writes (upgrades, invalidations) and queueing
   delays on shared resources (L2 banks, memory channels, mesh links —
   an M/D/1 waiting-time estimate fed by the previous epoch's arrival
   rates) are reconciled once per epoch boundary.

The result is an :class:`~repro.sim.engine.EngineResult` shaped exactly
like the reference engine's, with per-thread :class:`ThreadStats` and
per-VM completion times, at a fraction of the cost.  Fidelity is
*statistical*, not bit-exact: the cross-validation harness
(:mod:`repro.sim.validate`) bounds the divergence on the paper's
Table-IV mixes, and ``docs/engines.md`` states the tolerance contract.

Known modelling simplifications (all reconciled at epoch granularity):

* intra-domain peer-L1 transfers (``HitLevel.L2_PEER``) are detected
  against sibling threads' epoch-boundary private resident sets rather
  than their instantaneous L1 contents;
* per-tile directory caches are modelled as fully-associative LRU
  dictionaries of the configured entry count (the reference uses 8-way
  set-associative); a dir-cache miss charges the same memory-latency
  penalty as the reference path;
* coherence between domains is resolved against epoch-*start* state;
  two domains touching the same block inside one epoch only see each
  other at the next boundary;
* write upgrades are charged to the first writing thread of the epoch.

QoS integration: the engine honours live
:class:`~repro.caches.partitioning.WayQuota` objects installed on the
chip's domains (reading them at every insertion, so epoch-boundary
quota rewrites by a :class:`~repro.qos.hook.QosHook` actuate the very
next epoch) and feeds the chip's L2 tap when one is installed (UCP
utility monitors work unchanged).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional

from ..errors import SimulationError
from ._batchfold import HAVE_NUMPY, PrivateState, fold_private
from .engine import EngineResult, ThreadStats
from .records import HitLevel

try:
    import numpy as _np
except ImportError:  # pragma: no cover - fallback path
    _np = None

__all__ = ["BatchedEngine", "DEFAULT_EPOCH_REFS"]

DEFAULT_EPOCH_REFS = 1024
"""Default references per thread per folding epoch."""

_LEVELS = len(HitLevel)


class _Line:
    """One resident L2 line (duck-typed for WayQuota victim selectors)."""

    __slots__ = ("vm_id", "dirty")

    def __init__(self, vm_id: int, dirty: bool):
        self.vm_id = vm_id
        self.dirty = dirty


class _DomainState:
    """Per-set occupancy of one L2 domain.

    Each set is an insertion-ordered dict ``block -> _Line`` kept in
    LRU -> MRU order (touches re-insert), so the first key is always
    the LRU victim candidate — the same iteration order
    :meth:`repro.caches.partitioning.WayQuota.victim_selector` expects.
    """

    __slots__ = ("domain_id", "sets", "resident", "recent_evictions",
                 "evict_cap")

    def __init__(self, domain_id: int, evict_cap: int = 0):
        self.domain_id = domain_id
        self.sets: Dict[int, Dict[int, _Line]] = {}
        self.resident = 0
        # blocks recently evicted from this L2 (LRU) — the window in
        # which a peer L1 may still hold a line the L2 has dropped
        self.recent_evictions: Dict[int, None] = {}
        self.evict_cap = evict_cap

    def occupancy_by_vm(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for cache_set in self.sets.values():
            for line in cache_set.values():
                out[line.vm_id] = out.get(line.vm_id, 0) + 1
        return out

    def resident_blocks(self) -> set:
        blocks = set()
        for cache_set in self.sets.values():
            blocks.update(cache_set)
        return blocks


class BatchedEngine:
    """Epoch-folded engine over a :class:`~repro.machine.chip.Chip`.

    Parameters
    ----------
    machine:
        A chip exposing ``config``, ``placement``, ``topology``,
        ``mesh``, ``domains`` and (optionally) ``l2_tap`` /
        ``vm_of_core``.  Unlike the reference engine the batched kernel
        needs the chip's *structure* (geometry, placement, zero-load
        latencies), not its per-reference ``access`` method.
    threads:
        Thread contexts, at most one per core.
    probe:
        Optional :class:`~repro.obs.probes.EpochProbe`; driven once per
        folding epoch with the global clock.  Point it at this engine
        (it exposes ``queue_depths`` / ``l2_occupancy_share``).
    control:
        Optional :class:`~repro.qos.hook.QosHook`; driven once per
        folding epoch, so QoS control epochs are quantized to folding
        epochs.
    epoch_refs:
        References per thread per folding epoch.
    use_numpy:
        Force (``True``) or forbid (``False``) the vectorized private
        filter; ``None`` auto-detects.
    """

    def __init__(
        self,
        machine,
        threads,
        probe=None,
        control=None,
        epoch_refs: int = DEFAULT_EPOCH_REFS,
        use_numpy: Optional[bool] = None,
    ):
        if not threads:
            raise SimulationError("engine needs at least one thread")
        cores_seen = set()
        for thread in threads:
            if thread.core_id in cores_seen:
                raise SimulationError(
                    f"core {thread.core_id} bound to more than one thread; "
                    "the consolidation methodology never over-commits cores"
                )
            cores_seen.add(thread.core_id)
        if epoch_refs <= 0:
            raise SimulationError("epoch_refs must be positive")
        if use_numpy is None:
            use_numpy = HAVE_NUMPY
        if use_numpy and not HAVE_NUMPY:
            raise SimulationError("use_numpy=True but numpy is unavailable")
        self.machine = machine
        self.threads = {t.thread_id: t for t in threads}
        self.probe = probe
        self.control = control
        self.epoch_refs = epoch_refs
        self.use_numpy = use_numpy

        config = machine.config
        geometry = config.l2_geometry()
        self._num_sets = geometry.num_sets
        self._set_mask = geometry.num_sets - 1
        self._assoc = geometry.assoc
        self._c0 = max(1, config.l0_geometry.num_lines)
        self._c1 = max(self._c0 + 1, config.l1_geometry.num_lines)
        placement = machine.placement
        self._domain_of_core = list(placement.domain_of)
        self._num_domains = len(placement.domains)
        cores_per_domain = max(len(d) for d in placement.domains)
        self._domains = [
            _DomainState(d, evict_cap=cores_per_domain * self._c1)
            for d in range(self._num_domains)
        ]
        self._private = {
            t.thread_id: PrivateState(self._c0, self._c1) for t in threads
        }
        # domain -> [(thread_id, private state)] for peer-L1 probes
        self._domain_threads: Dict[int, List] = {}
        for t in threads:
            self._domain_threads.setdefault(
                self._domain_of_core[t.core_id], []
            ).append((t.thread_id, self._private[t.thread_id]))
        self._order = sorted(self.threads)
        # cycles-per-reference estimate from the previous epoch; drives
        # the time-weighted event merge in :meth:`_fold_l2` (all threads
        # start equal, so epoch 0 degenerates to index order)
        self._rates: Dict[int, float] = {tid: 1.0 for tid in self.threads}

        # directory caches: one LRU dict per tile, striped like the
        # reference Directory (home tile = block % num_tiles)
        self._dir_tiles = config.num_cores
        self._dir_capacity = max(1, config.directory_cache_entries)
        self._dircache = [dict() for _ in range(self._dir_tiles)]
        self.dir_hits = 0
        self.dir_misses = 0

        # chip-level counters mirrored into the experiment's ChipSummary
        self.c2c_clean = 0
        self.c2c_dirty = 0
        self.intra_domain_transfers = 0
        self.memory_fetches = 0
        self.writebacks = 0
        self.invalidations = 0
        self.upgrades = 0
        self.net_messages = 0
        self.net_cycles = 0.0
        self.net_hops = 0
        self.net_queueing = 0.0

        self._build_latency_tables()
        # previous-epoch arrival state feeding the queueing estimates
        self._prev_now = 0.0
        self._w_l2 = [0.0] * self._num_domains
        self._w_mem = 0.0
        self._rho_link = 0.0

    # ------------------------------------------------------------------
    # static latency precomputation
    # ------------------------------------------------------------------

    def _build_latency_tables(self) -> None:
        """Per-core zero-load latency/hop constants for each hit level.

        Mirrors the reference chip's message legs (see
        :meth:`repro.machine.chip.Chip.access`), with block-dependent
        tiles (directory home, memory controller, providing domain)
        replaced by their uniform-striping expectations.
        """
        machine = self.machine
        config = machine.config
        mesh = machine.mesh
        placement = machine.placement
        topo = machine.topology
        ctrl = config.control_flits
        data = config.data_flits
        tiles = range(config.num_cores)
        mem_tiles = config.memory_tiles
        zl = mesh.zero_load_latency
        hops = topo.hops

        def mean(pairs):
            total_lat, total_hops, count = 0.0, 0.0, 0
            for src, dst, flits in pairs:
                total_lat += zl(src, dst, flits)
                total_hops += hops(src, dst) if src != dst else 0
                count += 1
            return total_lat / count, total_hops / count

        # block-independent: directory home -> memory controller leg
        dir2mem_lat, dir2mem_hops = mean(
            [(t, m, ctrl) for t in tiles for m in mem_tiles]
        )
        homes = list(placement.home_tile)

        self._lat: Dict[int, List[float]] = {}
        self._ctrl_hops: Dict[int, List[float]] = {}
        self._data_hops: Dict[int, List[float]] = {}
        self._upgrade_cost: Dict[int, float] = {}
        self._upgrade_hops: Dict[int, float] = {}
        l0 = config.l0_geometry.latency
        l1 = config.l1_geometry.latency
        l2 = config.l2_latency
        for core in range(config.num_cores):
            domain = placement.domain_of[core]
            home = homes[domain]
            c2h = zl(core, home, ctrl)
            c2h_h = hops(core, home) if core != home else 0
            h2c_lat = zl(home, core, data)
            h2c_h = hops(home, core) if core != home else 0
            h2dir_lat, h2dir_h = mean([(home, t, ctrl) for t in tiles])
            mem2c_lat, mem2c_h = mean([(m, core, data) for m in mem_tiles])
            other = [h for d, h in enumerate(homes) if d != domain] or [home]
            dir2prov_lat, dir2prov_h = mean(
                [(t, h, ctrl) for t in tiles for h in other]
            )
            prov2c_lat, prov2c_h = mean([(h, core, data) for h in other])
            c2dir_lat, c2dir_h = mean([(core, t, ctrl) for t in tiles])
            dir2c_lat, dir2c_h = mean([(t, core, ctrl) for t in tiles])

            lat = [0.0] * _LEVELS
            ctrl_hops = [0.0] * _LEVELS
            data_hops = [0.0] * _LEVELS
            lat[HitLevel.L0] = float(l0)
            lat[HitLevel.L1] = float(l0 + l1)
            # L2 hit: request to the home tile, bank access, data back
            lat[HitLevel.L2] = l0 + l1 + l2 + c2h + h2c_lat
            ctrl_hops[HitLevel.L2] = c2h_h
            data_hops[HitLevel.L2] = h2c_h
            # peer-L1 transfer: L2 lookup missed, probe a sibling L1,
            # forward the line through the home tile
            lat[HitLevel.L2_PEER] = lat[HitLevel.L2] + l1 + c2h
            ctrl_hops[HitLevel.L2_PEER] = 2 * c2h_h
            data_hops[HitLevel.L2_PEER] = h2c_h
            # C2C: local lookup missed, directory indirection, remote
            # domain lookup, data from the provider's home tile
            c2c = (
                l0 + l1 + 2 * l2 + config.directory_latency
                + c2h + h2dir_lat + dir2prov_lat + prov2c_lat
            )
            lat[HitLevel.C2C_CLEAN] = c2c
            lat[HitLevel.C2C_DIRTY] = c2c + l1
            ctrl_hops[HitLevel.C2C_CLEAN] = c2h_h + h2dir_h + dir2prov_h
            ctrl_hops[HitLevel.C2C_DIRTY] = ctrl_hops[HitLevel.C2C_CLEAN]
            data_hops[HitLevel.C2C_CLEAN] = prov2c_h
            data_hops[HitLevel.C2C_DIRTY] = prov2c_h
            # memory: directory indirection then the off-chip access
            lat[HitLevel.MEMORY] = (
                l0 + l1 + l2 + config.directory_latency
                + config.memory_latency
                + c2h + h2dir_lat + dir2mem_lat + mem2c_lat
            )
            ctrl_hops[HitLevel.MEMORY] = c2h_h + h2dir_h + dir2mem_hops
            data_hops[HitLevel.MEMORY] = mem2c_h
            self._lat[core] = lat
            self._ctrl_hops[core] = ctrl_hops
            self._data_hops[core] = data_hops
            # write upgrade: control round trip through the directory
            self._upgrade_cost[core] = (
                c2dir_lat + dir2c_lat + config.directory_latency
            )
            self._upgrade_hops[core] = c2dir_h + dir2c_h

        self._num_links = len(list(topo.links()))
        self._mem_service = float(
            max(
                config.memory_channel_occupancy,
                config.memory_bank_occupancy / max(1, config.memory_banks),
            )
        )
        self._mem_controllers = len(mem_tiles)
        self._l2_service = float(config.l2_service_time)
        self._ctrl_flits = float(ctrl)
        self._data_flits = float(data)
        self._hop_cycles = float(config.hop_cycles)

    # ------------------------------------------------------------------
    # per-epoch dynamic latencies
    # ------------------------------------------------------------------

    @staticmethod
    def _md1_wait(service: float, rho: float) -> float:
        """M/D/1 mean waiting time, utilization-capped for stability."""
        rho = min(rho, 0.95)
        return service * rho / (2.0 * (1.0 - rho))

    def _epoch_latencies(self, core: int) -> List[float]:
        """Latency table for this epoch: constants + current waits."""
        base = self._lat[core]
        w_link_c = self._md1_wait(self._ctrl_flits, self._rho_link)
        w_link_d = self._md1_wait(self._data_flits, self._rho_link)
        domain = self._domain_of_core[core]
        w_l2_local = self._w_l2[domain]
        w_l2_mean = sum(self._w_l2) / len(self._w_l2)
        ch = self._ctrl_hops[core]
        dh = self._data_hops[core]
        out = list(base)
        for level in (HitLevel.L2, HitLevel.L2_PEER, HitLevel.C2C_CLEAN,
                      HitLevel.C2C_DIRTY, HitLevel.MEMORY):
            out[level] += ch[level] * w_link_c + dh[level] * w_link_d
            out[level] += w_l2_local
        # cross-domain transfers also queue at the provider's bank
        out[HitLevel.C2C_CLEAN] += w_l2_mean
        out[HitLevel.C2C_DIRTY] += w_l2_mean
        out[HitLevel.MEMORY] += self._w_mem
        return out

    # ------------------------------------------------------------------
    # batch acquisition
    # ------------------------------------------------------------------

    def _take_batch(self, thread):
        """One epoch of (blocks, writes, thinks) for ``thread``."""
        refs = thread.references
        take = getattr(refs, "take_batch", None)
        if take is not None:
            return take(self.epoch_refs)
        rows = []
        for _ in range(self.epoch_refs):
            ref = next(refs, None)
            if ref is None:
                raise SimulationError(
                    f"thread {thread.thread_id} reference stream ended; "
                    "workload generators must be infinite"
                )
            rows.append(ref)
        blocks, writes, thinks = zip(*rows)
        return list(blocks), list(writes), list(thinks)

    # ------------------------------------------------------------------
    # the epoch loop
    # ------------------------------------------------------------------

    def run(self) -> EngineResult:
        threads = [self.threads[tid] for tid in self._order]
        clocks = {t.thread_id: float(t.start_time) for t in threads}
        vm_pending: Dict[int, int] = {}
        for t in threads:
            vm_pending[t.vm_id] = vm_pending.get(t.vm_id, 0) + 1
        vm_completion: Dict[int, int] = {}
        remaining = {
            t.thread_id: t.warmup_refs + t.measured_refs for t in threads
        }
        total_refs = 0
        max_epochs = 32 * max(
            1,
            sum(remaining.values()) // (self.epoch_refs * max(1, len(threads))),
        ) + 64
        epochs = 0

        while any(t.issued < t.warmup_refs + t.measured_refs for t in threads):
            epochs += 1
            if epochs > max_epochs:
                raise SimulationError(
                    f"batched engine exceeded {max_epochs} epochs without "
                    "all VMs completing"
                )
            batches = {}
            levels = {}
            for t in threads:
                blocks, writes, thinks = self._take_batch(t)
                batches[t.thread_id] = (blocks, writes, thinks)
                levels[t.thread_id] = fold_private(
                    self._private[t.thread_id], blocks,
                    use_numpy=self.use_numpy,
                )
                total_refs += len(blocks)

            prev_clocks = dict(clocks)
            dir_penalties = self._fold_l2(threads, batches, levels, clocks)
            upgrades_by_thread = self._reconcile_writes(
                threads, batches, clocks
            )
            arrivals = self._account_epoch(
                threads, batches, levels, upgrades_by_thread, dir_penalties,
                clocks, vm_pending, vm_completion,
            )
            for t in threads:
                n = len(batches[t.thread_id][0])
                if n:
                    self._rates[t.thread_id] = (
                        clocks[t.thread_id] - prev_clocks[t.thread_id]
                    ) / n

            # epoch-boundary "now": per-thread progress clamped at the
            # thread's completion instant.  Clocks overshoot past the
            # measured window (epochs are fixed-size), so the raw max
            # clock can exceed the run's final_time; the clamped value
            # is nondecreasing and converges exactly to final_time,
            # keeping probe/control samples monotone.
            now = max(
                t.completion_time
                if t.issued >= t.warmup_refs + t.measured_refs
                else clocks[t.thread_id]
                for t in threads
            )
            self._update_queue_estimates(now, arrivals)
            now_int = int(now)
            if self.probe is not None:
                self.probe.on_step(now_int)
            if self.control is not None:
                self.control.on_step(now_int)

        final_time = max(vm_completion.values())
        if self.probe is not None:
            self.probe.finish(final_time)
        if self.control is not None:
            self.control.finish(final_time)
        result = EngineResult(
            final_time=final_time,
            vm_completion_times=vm_completion,
            thread_stats={t.thread_id: t.stats for t in threads},
            total_refs_processed=total_refs,
        )
        result._vm_of = {t.thread_id: t.vm_id for t in threads}
        return result

    # ------------------------------------------------------------------
    # L2 folding
    # ------------------------------------------------------------------

    def _fold_l2(self, threads, batches, levels,
                 clocks) -> Dict[int, List[int]]:
        """Classify every private-stack miss through the L2 layer.

        Rewrites the per-thread ``levels`` entries in place from the
        provisional value ``2`` to the final :class:`HitLevel`.
        Returns per-thread sorted lists of reference indices that
        suffered a directory-cache miss (each costs an extra
        memory-latency penalty, like the reference path).

        Events within a domain are merged by *estimated issue time*
        ``clock[tid] + (i + 1) * rate[tid]``, not by reference index.
        The distinction matters for pipelined-scan workloads: the
        thread leading the scan pays compulsory misses, slows down in
        wall-clock, and in the reference engine the trailing threads
        then overtake the scan front and share the miss load.  An
        index-ordered merge pins every compulsory miss on the static
        leader forever; the time-weighted merge reproduces the
        reference's load-balancing feedback at epoch granularity.
        """
        tap = getattr(self.machine, "l2_tap", None)
        by_domain: Dict[int, List] = {}
        for t in threads:
            lv = levels[t.thread_id]
            if self.use_numpy:
                idxs = _np.nonzero(lv == 2)[0].tolist()
            else:
                idxs = [i for i, v in enumerate(lv) if v == 2]
            if not idxs:
                continue
            domain = self._domain_of_core[t.core_id]
            blocks, writes, _thinks = batches[t.thread_id]
            tid = t.thread_id
            clock = clocks[tid]
            rate = self._rates[tid]
            events = by_domain.setdefault(domain, [])
            for i in idxs:
                events.append((clock + (i + 1) * rate, i, tid, t.vm_id,
                               int(blocks[i]), bool(writes[i])))

        dir_penalties: Dict[int, List[int]] = {}
        for domain_id in sorted(by_domain):
            events = by_domain[domain_id]
            events.sort()
            self._fold_domain(domain_id, events, levels, tap, dir_penalties)
        for idxs in dir_penalties.values():
            idxs.sort()
        return dir_penalties

    def _dir_access(self, block: int) -> bool:
        """Directory-cache lookup at the block's home tile (LRU)."""
        cache = self._dircache[block % self._dir_tiles]
        if block in cache:
            del cache[block]
            cache[block] = None
            self.dir_hits += 1
            return True
        cache[block] = None
        if len(cache) > self._dir_capacity:
            del cache[next(iter(cache))]
        self.dir_misses += 1
        return False

    def _fold_domain(self, domain_id, events, levels, tap,
                     dir_penalties) -> None:
        state = self._domains[domain_id]
        sets = state.sets
        mask = self._set_mask
        assoc = self._assoc
        quota = getattr(self.machine.domains[domain_id], "quota", None)
        others = [d for d in self._domains if d.domain_id != domain_id]
        siblings = self._domain_threads.get(domain_id, ())
        for _est, i, tid, vm_id, block, write in events:
            if tap is not None:
                tap(domain_id, vm_id, block)
            set_id = block & mask
            cache_set = sets.get(set_id)
            if cache_set is None:
                cache_set = sets[set_id] = {}
            line = cache_set.get(block)
            if line is not None:
                # hit: refresh recency (move to MRU position)
                del cache_set[block]
                cache_set[block] = line
                level = HitLevel.L2
            else:
                level = self._classify_miss(state, siblings, tid, others,
                                            set_id, block)
                if level != HitLevel.L2_PEER and not self._dir_access(block):
                    dir_penalties.setdefault(tid, []).append(i)
                if len(cache_set) >= assoc:
                    self._evict(state, cache_set, vm_id, quota)
                # a write miss fills the line exclusive: ownership is
                # part of the fetch, so reconciliation must not charge
                # a separate upgrade for it
                cache_set[block] = _Line(vm_id, write)
                state.recent_evictions.pop(block, None)
                state.resident += 1
            levels[tid][i] = int(level)

    def _classify_miss(self, state, siblings, tid, others, set_id,
                       block) -> HitLevel:
        if block in state.recent_evictions:
            # the L2 dropped the line recently; a sibling L1 may still
            # hold it (the reference's intra-domain transfer window)
            for peer_tid, peer_state in siblings:
                if peer_tid != tid and block in peer_state.resident:
                    self.intra_domain_transfers += 1
                    return HitLevel.L2_PEER
        for other in others:
            other_set = other.sets.get(set_id)
            if other_set is not None:
                line = other_set.get(block)
                if line is not None:
                    if line.dirty:
                        self.c2c_dirty += 1
                        return HitLevel.C2C_DIRTY
                    self.c2c_clean += 1
                    return HitLevel.C2C_CLEAN
        self.memory_fetches += 1
        return HitLevel.MEMORY

    def _evict(self, state, cache_set, vm_id, quota) -> None:
        victim = None
        if quota is not None:
            victim = quota.victim_selector(vm_id)(cache_set)
        if victim is None:
            victim = next(iter(cache_set))  # LRU
        line = cache_set.pop(victim)
        if line.dirty:
            self.writebacks += 1
        recent = state.recent_evictions
        recent.pop(victim, None)
        recent[victim] = None
        if len(recent) > state.evict_cap:
            del recent[next(iter(recent))]

    # ------------------------------------------------------------------
    # write reconciliation (upgrades + invalidations)
    # ------------------------------------------------------------------

    def _reconcile_writes(self, threads, batches, clocks) -> Dict[int, int]:
        """Epoch-boundary coherence pass over this epoch's writes.

        For each domain, the set of blocks written this epoch is
        resolved against L2 state: the *earliest* writing thread (by
        the same estimated-issue-time order as :meth:`_fold_l2`) pays
        an upgrade when the domain did not already hold the block
        dirty, and copies in other domains are invalidated.
        """
        mask = self._set_mask
        # domain -> {block: (earliest estimated write time, thread id)}
        written: Dict[int, Dict[int, tuple]] = {}
        for t in threads:
            blocks, writes, _thinks = batches[t.thread_id]
            domain = self._domain_of_core[t.core_id]
            dom_written = written.setdefault(domain, {})
            tid = t.thread_id
            clock = clocks[tid]
            rate = self._rates[tid]
            if self.use_numpy and not isinstance(writes, list):
                idxs = _np.nonzero(_np.asarray(writes) != 0)[0].tolist()
            else:
                idxs = [i for i, w in enumerate(writes) if w]
            for i in idxs:
                block = int(blocks[i])
                est = (clock + (i + 1) * rate, tid)
                prev = dom_written.get(block)
                if prev is None or est < prev:
                    dom_written[block] = est

        upgrades_by_thread: Dict[int, int] = {}
        for domain_id in sorted(written):
            state = self._domains[domain_id]
            others = [d for d in self._domains if d.domain_id != domain_id]
            for block, (_est, tid) in written[domain_id].items():
                set_id = block & mask
                cache_set = state.sets.get(set_id)
                line = cache_set.get(block) if cache_set is not None else None
                if line is None:
                    continue  # written block no longer L2-resident
                if not line.dirty:
                    line.dirty = True
                    self.upgrades += 1
                    upgrades_by_thread[tid] = (
                        upgrades_by_thread.get(tid, 0) + 1
                    )
                for other in others:
                    other_set = other.sets.get(set_id)
                    if other_set is not None:
                        victim = other_set.pop(block, None)
                        if victim is not None:
                            self.invalidations += 1
                            if victim.dirty:
                                self.writebacks += 1
        return upgrades_by_thread

    # ------------------------------------------------------------------
    # stats + clock accounting
    # ------------------------------------------------------------------

    def _account_epoch(self, threads, batches, levels, upgrades_by_thread,
                       dir_penalties, clocks, vm_pending,
                       vm_completion) -> dict:
        """Fold the epoch into ThreadStats, clocks, and completions.

        Returns the arrival counts feeding next epoch's queueing
        estimates.
        """
        l2_arrivals = [0] * self._num_domains
        mem_arrivals = 0
        flit_cycles = 0.0
        completed_vms = []
        for t in threads:
            tid = t.thread_id
            blocks, writes, thinks = batches[tid]
            lv = levels[tid]
            n = len(blocks)
            lat = self._epoch_latencies(t.core_id)
            counts = self._level_counts(lv)
            think_total = self._total(thinks)
            lat_total = 0.0
            for level, count in enumerate(counts):
                lat_total += count * lat[level]
            upgrades = upgrades_by_thread.get(tid, 0)
            upgrade_cycles = upgrades * self._upgrade_cost[t.core_id]
            penalties = dir_penalties.get(tid, ())
            mem_lat = float(self.machine.config.memory_latency)
            lat_total += len(penalties) * mem_lat
            domain = self._domain_of_core[t.core_id]
            l1_miss_count = 0
            for level in (HitLevel.L2, HitLevel.L2_PEER, HitLevel.C2C_CLEAN,
                          HitLevel.C2C_DIRTY, HitLevel.MEMORY):
                l1_miss_count += counts[level]
            l2_arrivals[domain] += l1_miss_count
            mem_arrivals += counts[HitLevel.MEMORY]
            ch = self._ctrl_hops[t.core_id]
            dh = self._data_hops[t.core_id]
            for level in (HitLevel.L2, HitLevel.L2_PEER, HitLevel.C2C_CLEAN,
                          HitLevel.C2C_DIRTY, HitLevel.MEMORY):
                if counts[level]:
                    legs = ch[level] + dh[level]
                    flits = (ch[level] * self._ctrl_flits
                             + dh[level] * self._data_flits)
                    flit_cycles += counts[level] * flits
                    self.net_messages += counts[level]
                    self.net_hops += int(counts[level] * legs)
                    self.net_cycles += counts[level] * (
                        lat[level] - self._lat[t.core_id][level]
                        + (ch[level] + dh[level]) * self._hop_cycles
                    )
            flit_cycles += upgrades * self._upgrade_hops[t.core_id]

            issued_before = t.issued
            window_start = t.warmup_refs
            window_end = t.warmup_refs + t.measured_refs
            a = min(n, max(0, window_start - issued_before))
            b = min(n, max(0, window_end - issued_before))
            if b > a:
                self._record_window(t, blocks, writes, thinks, lv, lat,
                                    a, b, counts)
                if penalties:
                    in_window = (bisect_left(penalties, b)
                                 - bisect_left(penalties, a))
                    if in_window:
                        extra = int(round(in_window * mem_lat))
                        t.stats.latency_cycles += extra
                        t.stats.miss_latency_cycles += extra
                        t.stats.memory_cycles += extra
                if upgrades:
                    frac = (b - a) / n
                    t.stats.latency_cycles += int(round(
                        upgrade_cycles * frac))
            t.issued += n

            # completion: the thread's measured window ends inside this
            # epoch -> its completion instant is the partial clock
            if issued_before < window_end <= issued_before + n:
                k = window_end - issued_before
                partial = (
                    k
                    + self._total(thinks[:k])
                    + self._lat_sum(lv, lat, 0, k)
                    + bisect_left(penalties, k) * mem_lat
                )
                t.completion_time = int(round(clocks[tid] + partial))
                vm_pending[t.vm_id] -= 1
                if vm_pending[t.vm_id] == 0:
                    completed_vms.append(t.vm_id)

            clocks[tid] += n + think_total + lat_total + upgrade_cycles

        for vm in completed_vms:
            finish = max(
                t.completion_time for t in threads if t.vm_id == vm
            )
            vm_completion[vm] = finish
            if self.probe is not None:
                self.probe.on_vm_complete(vm, finish)
        return {
            "l2": l2_arrivals,
            "mem": mem_arrivals,
            "flit_cycles": flit_cycles,
        }

    def _record_window(self, t, blocks, writes, thinks, lv, lat, a, b,
                       full_counts) -> None:
        n = len(blocks)
        stats = t.stats
        if a == 0 and b == n:
            counts = full_counts
            w = self._total(writes)
            think = self._total(thinks)
        else:
            counts = self._level_counts(lv[a:b])
            w = self._total(writes[a:b])
            think = self._total(thinks[a:b])
        refs = b - a
        stats.refs += refs
        stats.writes += int(w)
        stats.reads += refs - int(w)
        stats.think_cycles += int(think)
        lat_total = 0.0
        miss_lat = 0.0
        mem_cycles = 0.0
        dir_cycles = 0.0
        for level, count in enumerate(counts):
            if not count:
                continue
            contribution = count * lat[level]
            lat_total += contribution
            hl = HitLevel(level)
            stats.level_counts[hl] += count
            if hl.is_l1_miss:
                miss_lat += contribution
            if hl == HitLevel.MEMORY:
                mem_cycles += count * (self.machine.config.memory_latency
                                       + self._w_mem)
            if hl in (HitLevel.C2C_CLEAN, HitLevel.C2C_DIRTY,
                      HitLevel.MEMORY):
                dir_cycles += count * self.machine.config.directory_latency
        stats.latency_cycles += int(round(lat_total))
        stats.miss_latency_cycles += int(round(miss_lat))
        stats.memory_cycles += int(round(mem_cycles))
        stats.directory_cycles += int(round(dir_cycles))
        # attribute the remainder between cache and network roughly:
        # network gets the hop terms, cache the rest
        net = 0.0
        ch = self._ctrl_hops[t.core_id]
        dh = self._data_hops[t.core_id]
        for level, count in enumerate(counts):
            if count:
                net += count * (ch[level] + dh[level]) * self._hop_cycles
        stats.network_cycles += int(round(net))
        stats.cache_cycles += int(round(
            lat_total - mem_cycles - dir_cycles - net
        ))

    # -- small backend-agnostic helpers --------------------------------

    def _level_counts(self, lv):
        counts = [0] * _LEVELS
        if self.use_numpy and not isinstance(lv, list):
            binned = _np.bincount(lv, minlength=_LEVELS)
            for level in range(_LEVELS):
                counts[level] = int(binned[level])
        else:
            for v in lv:
                counts[v] += 1
        return counts

    def _total(self, values):
        if self.use_numpy and not isinstance(values, (list, tuple)):
            return float(_np.sum(values))
        return float(sum(values))

    def _lat_sum(self, lv, lat, a, b):
        if self.use_numpy and not isinstance(lv, list):
            table = _np.asarray(lat, dtype=_np.float64)
            return float(table[lv[a:b]].sum())
        return float(sum(lat[v] for v in lv[a:b]))

    # ------------------------------------------------------------------
    # queueing reconciliation
    # ------------------------------------------------------------------

    def _update_queue_estimates(self, now: float, arrivals: dict) -> None:
        horizon = max(1.0, now - self._prev_now)
        self._prev_now = now
        s2 = self._l2_service
        for d in range(self._num_domains):
            rho = arrivals["l2"][d] * s2 / horizon
            self._w_l2[d] = self._md1_wait(s2, rho)
        sm = self._mem_service
        rho_mem = arrivals["mem"] * sm / (self._mem_controllers * horizon)
        self._w_mem = self._md1_wait(sm, rho_mem)
        self._rho_link = min(
            0.95, arrivals["flit_cycles"] / (self._num_links * horizon)
        )
        self.net_queueing += arrivals["flit_cycles"] / max(
            1.0, self._num_links
        )

    # ------------------------------------------------------------------
    # inspection surface (probes, experiment summary)
    # ------------------------------------------------------------------

    def queue_depths(self, now: int) -> Dict[str, float]:
        """Estimated shared-resource waits (probe-compatible)."""
        return {
            "l2": sum(self._w_l2) / max(1, len(self._w_l2)),
            "memory": self._w_mem,
            "link": self._md1_wait(self._ctrl_flits, self._rho_link),
        }

    def l2_occupancy_share(self) -> Dict[int, float]:
        totals: Dict[int, int] = {}
        resident = 0
        for state in self._domains:
            for vm_id, lines in state.occupancy_by_vm().items():
                resident += lines
                if vm_id >= 0:
                    totals[vm_id] = totals.get(vm_id, 0) + lines
        if resident == 0:
            return {vm: 0.0 for vm in totals}
        return {vm: lines / resident for vm, lines in totals.items()}

    def l2_snapshot_by_vm(self) -> List[Dict[int, int]]:
        return [state.occupancy_by_vm() for state in self._domains]

    def l2_resident_sets(self) -> List[set]:
        return [state.resident_blocks() for state in self._domains]

    def summary_counters(self) -> dict:
        """Counters for :class:`repro.core.experiment.ChipSummary`."""
        messages = max(1, self.net_messages)
        return {
            "mesh_mean_latency": self.net_cycles / messages,
            "mesh_mean_queueing": 0.0,
            "mesh_mean_hops": self.net_hops / messages,
            "c2c_clean": self.c2c_clean,
            "c2c_dirty": self.c2c_dirty,
            "memory_fetches": self.memory_fetches,
            "coherence_writebacks": self.writebacks,
            "invalidations": self.invalidations,
            "upgrades": self.upgrades,
            "intra_domain_transfers": self.intra_domain_transfers,
            "directory_cache_hit_rate": (
                self.dir_hits / (self.dir_hits + self.dir_misses)
                if (self.dir_hits + self.dir_misses) else 0.0
            ),
            "memory_reads": self.memory_fetches,
            "memory_writebacks": self.writebacks,
        }

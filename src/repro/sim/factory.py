"""Unified engine construction: one registry, one entry point.

Historically :func:`repro.core.experiment.run_experiment` picked an
engine with ad-hoc ``if`` chains (over-commit → ``OvercommitEngine``,
rebind → ``MigratingEngine``, else ``Engine``).  The factory replaces
that with a small registry keyed by *engine mode*:

``"reference"``
    The event-driven engines — byte-identical to the historical
    behaviour, including the over-commit and migrating variants.
``"batched"``
    The epoch-folded :class:`~repro.sim.batched.BatchedEngine`
    (single-slot, statically-bound runs only).
``"auto"``
    Resolves to ``"batched"`` when the run shape allows it (one slot
    per core, no dynamic rebinding) *and* numpy is available, else
    ``"reference"``.

Stability note: :func:`make_engine`, :class:`EngineRequest`, and the
mode names above are public API — downstream code may rely on them;
changes go through a deprecation cycle.  :func:`register_engine` is
public but experimental: third-party engines must accept an
:class:`EngineRequest` and return an object with ``run()`` and a
settable ``probe`` attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from ..errors import ConfigurationError
from ._batchfold import HAVE_NUMPY
from .batched import DEFAULT_EPOCH_REFS, BatchedEngine
from .dynamic import MigratingEngine
from .engine import Engine
from .overcommit import OvercommitEngine

__all__ = [
    "EngineRequest",
    "make_engine",
    "register_engine",
    "resolve_mode",
    "engine_modes",
]


@dataclass
class EngineRequest:
    """Everything an engine builder may need.

    Attributes
    ----------
    machine:
        The chip (or a machine-model stand-in for tests).
    threads:
        Thread contexts to run.
    control:
        Optional QoS hook; builders wire it into the engine and, for
        over-commit, bind the run-queue actuator back onto the hook.
    probe:
        Optional epoch probe (reference single-slot and batched only).
    slots_per_core:
        >1 selects the over-commit engine on the reference path.
    rebinder, rebind_interval:
        Non-``None`` rebinder selects the migrating engine on the
        reference path.
    epoch_refs:
        Folding epoch of the batched engine.
    """

    machine: object
    threads: Sequence = field(default_factory=list)
    control: Optional[object] = None
    probe: Optional[object] = None
    slots_per_core: int = 1
    rebinder: Optional[object] = None
    rebind_interval: int = 100_000
    epoch_refs: int = DEFAULT_EPOCH_REFS


def _control_rebinds(request: EngineRequest) -> bool:
    """True when the control hook may rebind threads mid-run.

    Scheduler hooks (and composites containing one) declare this with
    ``pins_reference``; such runs must stay on the reference engines
    regardless of shape.
    """
    return bool(getattr(request.control, "pins_reference", False))


def _control_is_scenario(request: EngineRequest) -> bool:
    """True when the control hook (or a composite child) is a scenario
    hook — such runs retarget traces mid-run and must stay on the
    reference engines."""
    control = request.control
    return bool(getattr(control, "is_scenario_control", False) or any(
        getattr(child, "is_scenario_control", False)
        for child in getattr(control, "children", ())))


def _machine_heterogeneous(request: EngineRequest) -> bool:
    config = getattr(request.machine, "config", None)
    return bool(config is not None
                and getattr(config, "heterogeneous", False))


def _has_stop_times(request: EngineRequest) -> bool:
    return any(getattr(t, "stop_time", None) is not None
               for t in request.threads)


def _build_reference(request: EngineRequest):
    if request.slots_per_core > 1:
        engine = OvercommitEngine(
            request.machine, request.threads, control=request.control
        )
        if request.control is not None:
            request.control.bind_actuator(engine)
        return engine
    if request.rebinder is not None:
        return MigratingEngine(
            request.machine,
            request.threads,
            rebinder=request.rebinder,
            interval=request.rebind_interval,
            control=request.control,
        )
    engine = Engine(
        request.machine,
        request.threads,
        probe=request.probe,
        control=request.control,
    )
    if _control_rebinds(request):
        # a rebinding hook needs the engine's migration actuator (and
        # run-queue snapshots for sensing)
        request.control.bind_actuator(engine)
    return engine


def _build_batched(request: EngineRequest):
    if request.slots_per_core > 1:
        raise ConfigurationError(
            "the batched engine cannot over-commit cores; "
            "use engine_mode='reference' with slots_per_core>1"
        )
    if request.rebinder is not None:
        raise ConfigurationError(
            "the batched engine does not support dynamic rebinding; "
            "use engine_mode='reference' with rebind set"
        )
    if _control_is_scenario(request):
        raise ConfigurationError(
            "the batched engine does not support scenario control "
            "(mid-run retargeting and load scaling); use "
            "engine_mode='reference'"
        )
    if _control_rebinds(request):
        raise ConfigurationError(
            "the batched engine does not support rebinding control "
            "hooks (schedulers); use engine_mode='reference'"
        )
    if _machine_heterogeneous(request):
        raise ConfigurationError(
            "the batched engine does not model heterogeneous chips "
            "(core speed classes / asymmetric L2); use "
            "engine_mode='reference'"
        )
    if _has_stop_times(request):
        raise ConfigurationError(
            "the batched engine does not support VM churn "
            "(stop times); use engine_mode='reference'"
        )
    return BatchedEngine(
        request.machine,
        request.threads,
        probe=request.probe,
        control=request.control,
        epoch_refs=request.epoch_refs,
    )


_REGISTRY: Dict[str, Callable[[EngineRequest], object]] = {
    "reference": _build_reference,
    "batched": _build_batched,
}


def register_engine(mode: str,
                    builder: Callable[[EngineRequest], object]) -> None:
    """Register (or override) an engine mode. Experimental API."""
    if not mode or mode == "auto":
        raise ConfigurationError(f"invalid engine mode name {mode!r}")
    _REGISTRY[mode] = builder


def engine_modes() -> list:
    """Selectable modes, ``"auto"`` first."""
    return ["auto"] + sorted(_REGISTRY)


def resolve_mode(mode: str, *, slots_per_core: int = 1,
                 rebind: str = "", sched: str = "",
                 heterogeneous: bool = False,
                 vm_schedule: bool = False,
                 scenario: bool = False) -> str:
    """Resolve ``"auto"`` to a concrete registry mode for a run shape.

    ``"auto"`` picks ``"batched"`` only when the shape supports it —
    one slot per core, no dynamic rebinding of *any* kind (the
    ``rebind`` phase rebinder or a ``sched`` scheduling policy, both
    of which may call ``rebind_thread`` mid-run), a homogeneous chip,
    no VM churn schedule, and no time-varying ``scenario`` (which
    retargets traces mid-run) — and numpy is importable; the pure-
    Python folding fallback exists for constrained environments, but
    ``auto`` should never silently choose the slow path.  Explicitly
    requesting ``"batched"`` without numpy is honoured (the fallback
    runs); requesting it for an unsupported shape raises at build time.
    """
    mode = (mode or "auto").strip().lower()
    if mode == "auto":
        if (slots_per_core == 1 and not rebind and not sched
                and not heterogeneous and not vm_schedule
                and not scenario and HAVE_NUMPY):
            return "batched"
        return "reference"
    if mode not in _REGISTRY:
        raise ConfigurationError(
            f"unknown engine mode {mode!r}; "
            f"choose one of {', '.join(engine_modes())}"
        )
    return mode


def make_engine(request: EngineRequest, mode: str = "auto"):
    """Build an engine for ``request`` in the given mode.

    The single construction path for every simulation engine: the
    experiment runner, tests, and benches all come through here.
    """
    concrete = resolve_mode(
        mode,
        slots_per_core=request.slots_per_core,
        rebind="rebind" if request.rebinder is not None else "",
        sched="sched" if _control_rebinds(request) else "",
        heterogeneous=_machine_heterogeneous(request),
        vm_schedule=_has_stop_times(request),
        scenario=_control_is_scenario(request),
    )
    return _REGISTRY[concrete](request)

"""Deterministic, named random-number streams.

Every stochastic component of the simulator (each workload thread, the
random scheduler, the variability harness) draws from its own independent
stream derived from a single experiment seed.  Independence between
streams means changing the number of draws made by one component never
perturbs another component, which keeps experiments reproducible when the
configuration changes.

Streams are derived with :class:`numpy.random.SeedSequence` using a stable
hash of a string key, so ``stream(seed, "workload/tpcw/thread/3")`` always
yields the same stream for the same seed.
"""

from __future__ import annotations

import zlib
from typing import Iterable

import numpy as np

__all__ = ["derive_seed", "stream", "RngFactory"]


def derive_seed(root_seed: int, key: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a string ``key``.

    The derivation uses CRC32 over the key (stable across Python runs,
    unlike ``hash``) mixed into a SeedSequence spawn key.
    """
    digest = zlib.crc32(key.encode("utf-8"))
    mixed = np.random.SeedSequence([root_seed & 0xFFFFFFFF, digest])
    return int(mixed.generate_state(1, dtype=np.uint64)[0])


def stream(root_seed: int, key: str) -> np.random.Generator:
    """Return an independent :class:`numpy.random.Generator` for ``key``."""
    return np.random.default_rng(derive_seed(root_seed, key))


class RngFactory:
    """Factory that hands out named, independent random streams.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.  Two factories built from the same
        root seed produce identical streams for identical keys.

    Examples
    --------
    >>> f = RngFactory(42)
    >>> a = f.stream("thread/0")
    >>> b = f.stream("thread/1")
    >>> a is not b
    True
    >>> f2 = RngFactory(42)
    >>> int(a.integers(100)) == int(f2.stream("thread/0").integers(100))
    True
    """

    def __init__(self, root_seed: int):
        if not isinstance(root_seed, int):
            raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
        self.root_seed = root_seed
        self._issued: set = set()

    def stream(self, key: str) -> np.random.Generator:
        """Return the independent generator named ``key``."""
        self._issued.add(key)
        return stream(self.root_seed, key)

    def child(self, prefix: str) -> "RngFactory":
        """Return a factory whose streams are namespaced under ``prefix``.

        ``factory.child("vm/2").stream("thread/0")`` equals
        ``factory.stream("vm/2/thread/0")``.
        """
        return _PrefixedRngFactory(self, prefix)

    def issued_keys(self) -> Iterable[str]:
        """Keys of every stream handed out so far (for debugging)."""
        return sorted(self._issued)


class _PrefixedRngFactory(RngFactory):
    """A view of a parent factory with all keys prefixed."""

    def __init__(self, parent: RngFactory, prefix: str):
        super().__init__(parent.root_seed)
        self._parent = parent
        self._prefix = prefix.rstrip("/")

    def stream(self, key: str) -> np.random.Generator:
        return self._parent.stream(f"{self._prefix}/{key}")

    def child(self, prefix: str) -> "RngFactory":
        return _PrefixedRngFactory(self._parent, f"{self._prefix}/{prefix}")

"""Epoch-granular reference folding primitives for the batched kernel.

This module holds the *stream-classification* core of
:mod:`repro.sim.batched`: given one epoch of a thread's memory
references, decide which land in the private L0/L1 and which proceed to
the shared L2 layer — without dispatching per-reference through cache
objects.

The model is deliberately epoch-granular so that it can be computed
either vectorized (numpy) or in pure Python with *identical* results:

* Within an epoch, a reference hits a private level iff the gap to the
  previous occurrence of its block is at most ``g = capacity * n / U``
  references, where ``n`` is the epoch length and ``U`` the number of
  distinct blocks touched — the classic stack-distance density
  argument: a gap of ``g`` references covers ``g * U / n`` distinct
  blocks on average, so LRU retains the block while that stays below
  the capacity.
* Blocks resident at the start of the epoch behave as if previously
  touched ``rank + 1`` references before the epoch began, where
  ``rank`` is their LRU recency rank (0 = most recent), so carryover
  residency decays exactly like in-epoch reuse.
* At the epoch boundary the resident set is rebuilt: blocks not
  touched keep their relative order, touched blocks re-enter in
  last-touch order, and the result is truncated to capacity.

Because L0 and L1 are filled and aged by the same reference stream,
their resident sets are nested (L0 is the most-recent ``c0`` entries of
the L1 ordering), so a single ordered dict models both levels.

**Import constraints**: this file must stay importable without numpy
and without the rest of the ``repro`` package — the no-numpy CI job
loads it standalone to prove the fallback path works (see
``ci/check_nonumpy.py``).
"""

from __future__ import annotations

try:  # optional fast path; the pure-Python path is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

HAVE_NUMPY = _np is not None

__all__ = ["HAVE_NUMPY", "PrivateState", "fold_private", "self_check"]


class PrivateState:
    """Recency state of one thread's private L0+L1 stack.

    ``resident`` is an ordered dict of block -> None, least-recently
    used first; the most recent ``c0`` entries are considered L0
    resident, the most recent ``c1`` entries L1 resident (the dict is
    truncated to ``c1``).
    """

    __slots__ = ("c0", "c1", "resident")

    def __init__(self, c0: int, c1: int):
        if c0 <= 0 or c1 <= 0:
            raise ValueError("private cache capacities must be positive")
        self.c0 = min(c0, c1)
        self.c1 = c1
        self.resident = {}

    def resident_blocks(self):
        return list(self.resident)


def _start_ranks(state: PrivateState):
    """block -> recency rank (0 = MRU) for the carried-over residents."""
    order = list(state.resident)
    m = len(order)
    return {block: m - 1 - pos for pos, block in enumerate(order)}, order


def _finish_epoch(state: PrivateState, order, last_index):
    """Rebuild the resident ordering after one epoch (see module doc)."""
    survivors = [b for b in order if b not in last_index]
    touched = sorted(last_index, key=last_index.__getitem__)
    new_order = survivors + touched
    if len(new_order) > state.c1:
        new_order = new_order[-state.c1:]
    state.resident = dict.fromkeys(new_order)


def _fold_py(state: PrivateState, blocks):
    n = len(blocks)
    ranks, order = _start_ranks(state)
    distinct = len(set(blocks))
    g0 = state.c0 * n / distinct
    g1 = state.c1 * n / distinct
    last = {}
    levels = []
    append = levels.append
    get_last = last.get
    get_rank = ranks.get
    for i, block in enumerate(blocks):
        j = get_last(block)
        if j is None:
            r = get_rank(block)
            gap = (i + r + 1) if r is not None else None
        else:
            gap = i - j
        if gap is not None and gap <= g0:
            append(0)
        elif gap is not None and gap <= g1:
            append(1)
        else:
            append(2)
        last[block] = i
    _finish_epoch(state, order, last)
    return levels


def _fold_np(state: PrivateState, blocks):
    arr = _np.asarray(blocks, dtype=_np.int64)
    n = arr.shape[0]
    ranks, order = _start_ranks(state)

    sort_order = _np.argsort(arr, kind="stable")
    sorted_blocks = arr[sort_order]
    same = sorted_blocks[1:] == sorted_blocks[:-1]
    prev = _np.full(n, -1, dtype=_np.int64)
    prev[sort_order[1:][same]] = sort_order[:-1][same]

    idx = _np.arange(n, dtype=_np.int64)
    # gap=2n is an always-miss sentinel (thresholds never exceed c1*n)
    gap = _np.where(prev >= 0, idx - prev, 2 * n + max(state.c1, 1))
    firsts = _np.nonzero(prev < 0)[0]
    if ranks:
        blk_list = arr.tolist()
        get_rank = ranks.get
        for i in firsts.tolist():
            r = get_rank(blk_list[i])
            if r is not None:
                gap[i] = i + r + 1

    distinct = int(firsts.shape[0])
    g0 = state.c0 * n / distinct
    g1 = state.c1 * n / distinct
    levels = _np.where(gap <= g0, 0, _np.where(gap <= g1, 1, 2)).astype(
        _np.int64
    )

    # last occurrence of each distinct block, in ascending stream order
    is_run_end = _np.ones(n, dtype=bool)
    is_run_end[:-1] = sorted_blocks[1:] != sorted_blocks[:-1]
    last_positions = _np.sort(sort_order[is_run_end])
    last_index = {
        int(b): int(i)
        for b, i in zip(arr[last_positions].tolist(), last_positions.tolist())
    }
    _finish_epoch(state, order, last_index)
    return levels


def fold_private(state: PrivateState, blocks, use_numpy=None):
    """Classify one epoch of references against the private stack.

    Returns per-reference levels — ``0`` (L0 hit), ``1`` (L1 hit), or
    ``2`` (missed the private stack, proceeds to the L2 layer) — as a
    numpy array on the vectorized path or a plain list on the fallback
    path.  Both paths compute the *same* model and return identical
    values; ``use_numpy=None`` picks the fast path when numpy is
    available.
    """
    if len(blocks) == 0:
        return _np.zeros(0, dtype=_np.int64) if (HAVE_NUMPY and use_numpy is not False) else []
    if use_numpy is None:
        use_numpy = HAVE_NUMPY
    if use_numpy:
        if not HAVE_NUMPY:
            raise RuntimeError("numpy requested but not importable")
        return _fold_np(state, blocks)
    if HAVE_NUMPY and isinstance(blocks, _np.ndarray):
        blocks = blocks.tolist()
    return _fold_py(state, blocks)


def self_check():
    """Deterministic smoke test of the fallback path (no-numpy CI).

    Exercises in-epoch reuse, carryover residency, and eviction by
    truncation; raises ``AssertionError`` on any mismatch.
    """
    state = PrivateState(c0=2, c1=4)
    # epoch 1: all cold; immediate reuse of 7 hits L0
    levels = fold_private(state, [7, 7, 8, 9, 7, 10], use_numpy=False)
    assert levels == [2, 0, 2, 2, 0, 2], levels
    assert state.resident_blocks() == [8, 9, 7, 10], state.resident_blocks()
    # epoch 2: 10 was MRU (rank 0) -> L0 carryover hit at i=0;
    # 8 at rank 3 -> gap 4+... exceeds both thresholds
    levels = fold_private(state, [10, 8, 11, 12], use_numpy=False)
    assert levels[0] == 0, levels
    assert len(state.resident_blocks()) == 4
    if HAVE_NUMPY:
        a = PrivateState(c0=2, c1=4)
        b = PrivateState(c0=2, c1=4)
        stream = [5, 6, 5, 7, 8, 9, 5, 6, 10, 10, 11, 6]
        for lo, hi in ((0, 6), (6, 12)):
            va = fold_private(a, stream[lo:hi], use_numpy=False)
            vb = fold_private(b, stream[lo:hi], use_numpy=True)
            assert list(va) == list(vb.tolist()), (va, vb)
            assert a.resident_blocks() == b.resident_blocks()
    return True


if __name__ == "__main__":  # pragma: no cover - CI entry point
    self_check()
    print("batchfold self-check OK (numpy=%s)" % HAVE_NUMPY)

"""Record types exchanged between simulator components.

The simulator is trace-driven: workload threads produce
:class:`MemoryReference` records and the machine model turns each record
into an :class:`AccessResult` describing where the reference was
satisfied and how long it took.

Both types are ``NamedTuple`` s — millions are created per run, so they
must be cheap; validation lives at configuration boundaries, not here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple

__all__ = [
    "AccessType",
    "HitLevel",
    "MemoryReference",
    "AccessResult",
    "LatencyBreakdown",
    "BLOCK_SHIFT",
    "BLOCK_BYTES",
]

BLOCK_SHIFT = 6
"""log2 of the 64-byte coherence/cache block used throughout the paper."""

BLOCK_BYTES = 1 << BLOCK_SHIFT
"""Block size in bytes (64, per Table II of the paper)."""


class AccessType(enum.IntEnum):
    """Whether a memory reference reads or writes its block."""

    READ = 0
    WRITE = 1


class HitLevel(enum.IntEnum):
    """Where in the memory system a reference was ultimately satisfied.

    The levels mirror the machine of Table III: private L0 and L1, a
    last-level L2 shared by a configurable number of cores, on-chip
    cache-to-cache transfers resolved by the directory protocol, and
    off-chip memory.

    ``L2_PEER`` is an L1 miss satisfied by a *peer L1 within the same
    L2 domain* (the peer held the only modified copy).  It counts as an
    L1 miss but **not** as an L2 miss seen by the VM — the data never
    left the local last-level cache's domain.
    """

    L0 = 0
    L1 = 1
    L2 = 2
    L2_PEER = 3
    C2C_CLEAN = 4
    C2C_DIRTY = 5
    MEMORY = 6

    @property
    def is_l1_miss(self) -> bool:
        """True when the reference missed the last private level."""
        return self >= HitLevel.L2

    @property
    def is_l2_miss(self) -> bool:
        """True when the reference was not satisfied by the local L2.

        Cross-domain cache-to-cache transfers count as L2 misses seen
        by the virtual machine, matching the paper's definition of
        per-VM miss rate.
        """
        return self >= HitLevel.C2C_CLEAN

    @property
    def is_c2c(self) -> bool:
        """True when the block was supplied by a cache in another
        domain (the paper's cache-to-cache transfer)."""
        return self in (HitLevel.C2C_CLEAN, HitLevel.C2C_DIRTY)


class MemoryReference(NamedTuple):
    """One memory reference issued by a workload thread.

    Attributes
    ----------
    block:
        Physical block number (byte address ``>> 6``).  Physical, not
        virtual: the hypervisor has already applied the VM's partition
        offset, so distinct VMs can never alias.
    access:
        1 for a write, 0 for a read (:class:`AccessType` values).
    think:
        Non-memory instructions executed before this reference; the
        core model charges one cycle per instruction (in-order,
        Niagara-like cores per Table III).
    """

    block: int
    access: int = 0
    think: int = 0


class AccessResult(NamedTuple):
    """Outcome of sending one :class:`MemoryReference` through the machine.

    ``latency`` is always the sum of the four component fields; the
    machine model guarantees this (asserted in its tests).
    """

    level: HitLevel
    latency: int
    cache_cycles: int = 0
    network_cycles: int = 0
    directory_cycles: int = 0
    memory_cycles: int = 0

    @property
    def breakdown(self) -> "LatencyBreakdown":
        return LatencyBreakdown(
            cache=self.cache_cycles,
            network=self.network_cycles,
            directory=self.directory_cycles,
            memory=self.memory_cycles,
        )


@dataclass(frozen=True)
class LatencyBreakdown:
    """Cycle-level decomposition of latency, for reporting.

    Every field is additive; :attr:`total` is their sum.  The breakdown
    lets the analysis layer separate cache access time from interconnect
    and memory queueing, which is how the paper explains scheduling
    effects (e.g. round robin lowering interconnect latency by ~20%
    relative to affinity for TPC-W).
    """

    cache: int = 0
    network: int = 0
    directory: int = 0
    memory: int = 0

    @property
    def total(self) -> int:
        return self.cache + self.network + self.directory + self.memory

    def __add__(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        return LatencyBreakdown(
            cache=self.cache + other.cache,
            network=self.network + other.network,
            directory=self.directory + other.directory,
            memory=self.memory + other.memory,
        )

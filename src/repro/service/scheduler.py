"""Async job dispatcher: dedup, coalescing, retries, quarantine.

The :class:`JobScheduler` sits between the HTTP front end and the
simulation machinery.  On submission it short-circuits work that is
already done or already happening:

dedup (warm store)
    A job whose every cell is present in the
    :class:`~repro.core.store.ResultStore` completes immediately —
    zero cells executed, counted in ``service.dedup_hits``.

coalescing (in flight)
    A job whose :func:`~repro.service.jobs.job_key_of` identity matches
    a job currently queued or running attaches to it as a *follower*:
    it is journaled (so a crash still replays it) but never enqueued;
    when the primary finishes, every follower completes with the same
    result keys.  Counted in ``service.coalesced``.

Everything else is pulled off the :class:`~repro.service.jobs.JobQueue`
in priority order by the run loop and executed through a
:class:`~repro.core.executor.SweepExecutor` on a worker thread (the
executor may itself fan cells out over processes and retries transient
cell failures once in place).  Up to ``concurrency`` jobs run at once:
each claimed job becomes its own task, so a short warm job is never
stuck behind a long cold one (admission backpressure is unchanged —
``queue_limit`` still bounds *pending* jobs at the server).  A job
that still has failing cells afterwards is retried with exponential
backoff — ``backoff_base * 2**(attempt-1)`` seconds, capped — until
``max_attempts`` is spent, then quarantined as poison
(``service.quarantined``).

The scheduler also feeds two latency histograms the fleet front-end
aggregates across workers: ``service.queue_wait_seconds`` (submission
to claim) and ``service.job_seconds`` (submission to terminal state).
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional

from ..core.executor import SweepExecutor
from ..core.store import ResultStore, spec_key
from ..errors import ConfigurationError
from ..obs.tracing import SpanContext
from .jobs import Job, JobQueue, JobState

__all__ = ["JobScheduler", "LATENCY_BOUNDS"]

LATENCY_BOUNDS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
                  2.5, 5.0, 10.0, 30.0, 60.0, 120.0)
"""Histogram bucket bounds (seconds) for the service latency series."""


class JobScheduler:
    """Drain the job queue through an executor, asynchronously.

    Parameters
    ----------
    queue, store:
        The durable queue and the (shared, warm) result store.
    executor_jobs:
        Worker processes per job's :class:`SweepExecutor` (1 = in
        process, serial — the safe default under asyncio).
    concurrency:
        Jobs executed at once by this scheduler (1 = the strict
        serial behaviour of earlier versions).  Each running job owns
        a worker thread, so warm/short jobs interleave with long ones.
    max_attempts:
        Execution attempts per job before quarantine.
    backoff_base, backoff_cap:
        Exponential retry delay parameters in seconds.
    executor_retries:
        Cell-level transient retries inside each executor run.
    telemetry:
        Hub for the ``service.*`` counters and latency histograms.
    """

    def __init__(
        self,
        queue: JobQueue,
        store: ResultStore,
        executor_jobs: int = 1,
        concurrency: int = 1,
        max_attempts: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        executor_retries: int = 1,
        telemetry=None,
        tracer=None,
    ):
        if telemetry is None:
            from ..obs.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        if concurrency < 1:
            raise ConfigurationError(
                f"scheduler concurrency must be >= 1, got {concurrency}")
        self.queue = queue
        self.store = store
        self.executor_jobs = executor_jobs
        self.concurrency = int(concurrency)
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.executor_retries = executor_retries
        self.telemetry = telemetry
        self.tracer = tracer
        self._inflight: Dict[str, str] = {}  # job_key -> primary job_id
        self._followers: Dict[str, List[str]] = {}
        self._submit_times: Dict[str, float] = {}
        # tracing bookkeeping: pre-minted e2e span context (children are
        # recorded against it before the e2e span itself lands) and the
        # epoch-us wall stamp of the submit for backdating.
        self._job_ctx: Dict[str, tuple] = {}
        self._submit_wall: Dict[str, int] = {}
        self._run_ctx: Dict[str, object] = {}
        # created lazily inside the run loop: binding an asyncio.Event
        # at construction time would capture the wrong loop on py3.9
        self._wakeup: Optional[asyncio.Event] = None
        self._stopped = False
        self._draining = False
        self._running: Dict[str, asyncio.Task] = {}
        self.paused = False
        # on restart, recovered jobs are already in the heap; register
        # their identities so new submissions coalesce against them
        for job in self.queue.jobs():
            if not job.done:
                self._inflight.setdefault(job.job_key, job.job_id)

    # -- submission ----------------------------------------------------

    def submit(self, job: Job) -> Job:
        """Admit one job (event-loop context).

        Applies dedup and coalescing before enqueueing; always journals
        the submission first so a crash between admission and execution
        cannot lose it.
        """
        self.telemetry.counter("service.submitted").inc()
        self._submit_times[job.job_id] = time.monotonic()
        if self.tracer is not None:
            # Mint the job's end-to-end span context *now*: children
            # (queue wait, run, executor) parent to it even though the
            # e2e span itself is only recorded at the terminal state.
            parent = SpanContext.parse(job.trace)
            self._job_ctx[job.job_id] = (
                self.tracer.new_context(parent), parent)
            self._submit_wall[job.job_id] = time.time_ns() // 1000
        primary = self._inflight.get(job.job_key)
        if primary is not None and self.coalesces(job.job_key):
            job.coalesced_with = primary
            self.queue.submit(job)
            self._followers.setdefault(primary, []).append(job.job_id)
            self.telemetry.counter("service.coalesced").inc()
            return job
        self.queue.submit(job)
        warm = self._warm_keys(job)
        if warm is not None:
            self.queue.mark_done(job.job_id, warm,
                                 cells_cached=len(job.cells),
                                 cells_simulated=0)
            self.telemetry.counter("service.dedup_hits").inc()
            self.telemetry.counter("service.completed").inc()
            self._observe_done(job.job_id)
            return job
        self._inflight[job.job_key] = job.job_id
        self._wake()
        return job

    def coalesces(self, job_key: str) -> bool:
        """Would a job with this identity attach to one in flight?"""
        primary = self._inflight.get(job_key)
        primary_job = self.queue.get(primary) if primary else None
        return primary_job is not None and not primary_job.done

    def _warm_keys(self, job: Job) -> Optional[List[str]]:
        """Result keys if *every* cell is already stored, else None."""
        keys = []
        for _key, spec in job.cells:
            if self.store.get(spec) is None:
                return None
            keys.append(spec_key(spec))
        return keys

    # -- latency accounting --------------------------------------------

    def _observe_wait(self, job_id: str) -> None:
        submitted = self._submit_times.get(job_id)
        if submitted is None:
            return
        wait = time.monotonic() - submitted
        self.telemetry.histogram(
            "service.queue_wait_seconds", bounds=LATENCY_BOUNDS
        ).observe(wait)
        if self.tracer is not None and job_id in self._job_ctx:
            ctx, _parent = self._job_ctx[job_id]
            self.tracer.record_span(
                "job.queue_wait", cat="queue", duration_s=wait,
                parent=ctx, ts_us=self._submit_wall.get(job_id),
                attrs={"job_id": job_id})

    def _observe_done(self, job_id: str) -> None:
        submitted = self._submit_times.pop(job_id, None)
        if submitted is None:
            self._job_ctx.pop(job_id, None)
            self._submit_wall.pop(job_id, None)
            return
        elapsed = time.monotonic() - submitted
        self.telemetry.histogram(
            "service.job_seconds", bounds=LATENCY_BOUNDS
        ).observe(elapsed)
        entry = self._job_ctx.pop(job_id, None)
        wall = self._submit_wall.pop(job_id, None)
        if self.tracer is not None and entry is not None:
            ctx, parent = entry
            job = self.queue.get(job_id)
            status = "ok"
            if job is not None and job.state == JobState.QUARANTINED:
                status = "error"
            attrs = {"job_id": job_id}
            if job is not None:
                attrs["state"] = job.state
            self.tracer.record_span(
                "job.e2e", cat="job", duration_s=elapsed,
                parent=parent, context=ctx, ts_us=wall,
                attrs=attrs, status=status)

    # -- the run loop --------------------------------------------------

    def _wake(self) -> None:
        if self._wakeup is not None:
            self._wakeup.set()

    async def run(self) -> None:
        """Claim and execute jobs until :meth:`stop` (or drain).

        Up to :attr:`concurrency` jobs run concurrently, each on its
        own task; the loop tops the running set back up whenever a
        slot frees or a submission wakes it.
        """
        if self._wakeup is None:
            self._wakeup = asyncio.Event()
        while not self._stopped:
            claimed = False
            while not self.paused and len(self._running) < self.concurrency:
                job = self.queue.claim()
                if job is None:
                    break
                claimed = True
                self._observe_wait(job.job_id)
                task = asyncio.create_task(self._execute(job))
                self._running[job.job_id] = task
            if claimed:
                continue
            if self._draining and not self._running:
                break
            self._wakeup.clear()
            try:
                await asyncio.wait_for(self._wakeup.wait(), timeout=0.1)
            except asyncio.TimeoutError:
                pass
        if self._running:
            await asyncio.gather(*list(self._running.values()),
                                 return_exceptions=True)

    async def _execute(self, job: Job) -> None:
        run_ctx = None
        run_t0 = time.monotonic()
        if self.tracer is not None and job.job_id in self._job_ctx:
            run_ctx = self.tracer.new_context(self._job_ctx[job.job_id][0])
            self._run_ctx[job.job_id] = run_ctx
        try:
            outcomes = await asyncio.to_thread(self._run_cells, job)
        except Exception as exc:  # executor machinery itself broke
            outcomes = None
            error = f"executor error: {exc!r}"
        finally:
            self._running.pop(job.job_id, None)
            self._run_ctx.pop(job.job_id, None)
            self._wake()
            if run_ctx is not None and job.job_id in self._job_ctx:
                self.tracer.record_span(
                    "job.run", cat="run",
                    duration_s=time.monotonic() - run_t0,
                    parent=self._job_ctx[job.job_id][0], context=run_ctx,
                    attrs={"job_id": job.job_id,
                           "attempt": job.attempts})
        if outcomes is not None:
            failures = [o for o in outcomes if not o.ok]
            if not failures:
                keys = [spec_key(spec) for _key, spec in job.cells]
                done = self.queue.mark_done(
                    job.job_id, keys,
                    cells_cached=sum(1 for o in outcomes if o.from_cache),
                    cells_simulated=sum(
                        1 for o in outcomes
                        if not o.from_cache and not o.error),
                )
                self.telemetry.counter("service.completed").inc()
                self._finish(done)
                return
            error = (f"{len(failures)}/{len(outcomes)} cells failed; "
                     f"first: {failures[0].error.strip().splitlines()[-1]}")
        self.queue.mark_failed(job.job_id, error)
        if job.attempts >= self.max_attempts:
            quarantined = self.queue.quarantine(job.job_id, error)
            self.telemetry.counter("service.quarantined").inc()
            self._finish(quarantined)
            return
        self.telemetry.counter("service.retries").inc()
        delay = min(self.backoff_cap,
                    self.backoff_base * (2 ** (job.attempts - 1)))
        loop = asyncio.get_running_loop()
        loop.call_later(delay, self._requeue, job.job_id)

    def _run_cells(self, job: Job):
        """Worker-thread body: one executor run over the job's cells."""
        run_ctx = self._run_ctx.get(job.job_id)
        executor = SweepExecutor(
            jobs=self.executor_jobs,
            store=self.store,
            telemetry=self.telemetry,
            retries=self.executor_retries,
            tracer=self.tracer,
        )
        return executor.run(job.cells, trace_parent=run_ctx)

    def _requeue(self, job_id: str) -> None:
        job = self.queue.get(job_id)
        if job is None or job.state != JobState.FAILED:
            return
        self.queue.requeue(job_id)
        self._wake()

    def _finish(self, job: Job) -> None:
        """Terminal bookkeeping: release identity, complete followers."""
        if self._inflight.get(job.job_key) == job.job_id:
            del self._inflight[job.job_key]
        self._observe_done(job.job_id)
        for follower_id in self._followers.pop(job.job_id, ()):
            if job.state == JobState.DONE:
                self.queue.mark_done(
                    follower_id, job.result_keys,
                    cells_cached=len(job.result_keys), cells_simulated=0)
                self.telemetry.counter("service.completed").inc()
            else:
                self.queue.quarantine(
                    follower_id,
                    f"coalesced primary {job.job_id} quarantined: "
                    f"{job.error}")
                self.telemetry.counter("service.quarantined").inc()
            self._observe_done(follower_id)

    # -- lifecycle -----------------------------------------------------

    def drain(self) -> None:
        """Finish the running jobs, then exit; pending jobs stay
        journaled for the next process."""
        self._draining = True
        self.paused = True
        self._wake()

    def stop(self) -> None:
        """Exit the run loop as soon as the current jobs complete."""
        self._stopped = True
        self._wake()

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def running_job(self) -> Optional[str]:
        """One of the currently running job ids (None when idle)."""
        return next(iter(self._running), None)

    @property
    def running_jobs(self) -> List[str]:
        """All currently running job ids."""
        return list(self._running)
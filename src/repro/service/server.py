"""The simulation service's HTTP front end (stdlib asyncio only).

A deliberately small HTTP/1.1 JSON API — no framework, no threads per
connection — in front of the :class:`~repro.service.scheduler
.JobScheduler`:

====================  =================================================
``POST /jobs``        submit a batch of experiment specs; ``202`` with
                      the job record, ``400`` on malformed bodies,
                      ``429`` + ``Retry-After`` under backpressure or
                      rate limiting, ``503`` while draining
``GET /jobs``         every known job (summaries)
``GET /jobs/<id>``    one job's full record
``GET /results/<k>``  a stored result by spec key (``404`` on miss)
``GET /healthz``      liveness + queue depths
``GET /metrics``      telemetry snapshot (JSON; ``?format=prometheus``
                      for text exposition)
====================  =================================================

Backpressure is bounded-queue admission: when ``queue_limit`` jobs are
already pending the server answers ``429`` with a ``Retry-After`` hint
instead of buffering unboundedly — callers are expected to back off
(the bundled :class:`~repro.service.client.ServiceClient` does).

On ``SIGTERM`` (and ``SIGINT``) the server *drains*: it stops
admitting jobs (``503``), lets the running job finish its cells, and
exits; everything still pending is in the journal and replays on the
next start.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from pathlib import Path
from typing import Optional, Union

from ..core.experiment import ExperimentSpec
from ..core.store import ResultStore, result_to_dict
from ..errors import ServiceError
from ..obs.slo import SloTracker
from ..obs.telemetry import Telemetry, render_prometheus
from ..obs.tracing import TRACEPARENT_HEADER, SpanContext, Tracer
from .httpcommon import BadRequest, read_request, respond
from .jobs import Job, JobQueue
from .ratelimit import TokenBucket
from .scheduler import JobScheduler

__all__ = ["ServiceServer", "client_key_of", "parse_job_body"]


def client_key_of(headers: dict, writer,
                  trust_headers: bool = False) -> str:
    """The rate-limit identity of a request.

    ``X-Client-Id`` and ``X-Forwarded-For`` are whatever the peer
    chose to send, so a direct client could mint a fresh identity per
    request and sail past any per-client token bucket.  They are
    therefore honoured only with ``trust_headers=True`` — the peer is
    a vouched-for proxy (a fleet worker hearing from its front end,
    or a server run with ``--behind-proxy``).  Then ``X-Client-Id``
    wins and the first (leftmost) ``X-Forwarded-For`` hop — the
    originating client — is next, so clients sharing the proxy hop
    don't share one bucket.  Untrusted (the default), the socket peer
    address is the identity.
    """
    if trust_headers:
        client = headers.get("x-client-id")
        if client:
            return client
        forwarded = headers.get("x-forwarded-for")
        if forwarded:
            first = forwarded.split(",")[0].strip()
            if first:
                return first
    peer = writer.get_extra_info("peername") if writer else None
    return peer[0] if peer else "anon"


def parse_job_body(body: Optional[bytes], client: str) -> Job:
    """Decode a ``POST /jobs`` body into a :class:`Job`.

    Shared by the single-node server and the fleet front-end so both
    validate (and hash, for ring routing) identically.  An optional
    ``"job_id"`` lets a proxy pin the id it already promised its
    client (failover replay depends on this staying stable).
    """
    if not body:
        raise BadRequest("POST /jobs needs a JSON body")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequest(f"invalid JSON body: {exc}") from None
    if not isinstance(payload, dict):
        raise BadRequest("body must be a JSON object")
    specs = payload.get("specs")
    if not isinstance(specs, list) or not specs:
        raise BadRequest("'specs' must be a non-empty list")
    cells = []
    for index, entry in enumerate(specs):
        if not isinstance(entry, dict):
            raise BadRequest(f"spec #{index} is not an object")
        entry = dict(entry)
        key = entry.pop("key", None)
        key = tuple(key) if isinstance(key, list) else (index,)
        try:
            spec = ExperimentSpec(**entry)
        except TypeError as exc:
            raise BadRequest(f"spec #{index}: {exc}") from None
        cells.append((key, spec))
    priority = payload.get("priority", 10)
    if not isinstance(priority, int):
        raise BadRequest("'priority' must be an integer")
    job = Job.create(cells, priority=priority, client=client)
    job_id = payload.get("job_id")
    if job_id is not None:
        if not isinstance(job_id, str) or not job_id or len(job_id) > 64:
            raise BadRequest("'job_id' must be a short string")
        job.job_id = job_id
    return job


class ServiceServer:
    """A long-running simulation service bound to one store + journal.

    Parameters
    ----------
    store:
        A :class:`ResultStore`, or a path for its disk tier, or
        ``None`` for memory-only.
    journal:
        Job-journal path (``None`` = volatile queue).
    host, port:
        Bind address; port ``0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    queue_limit:
        Pending-job bound before ``429`` backpressure.
    rate, burst:
        Per-client token-bucket rate limit (``rate<=0`` disables).
    trust_proxy_headers:
        Key rate-limit buckets on ``X-Client-Id``/``X-Forwarded-For``
        instead of the socket peer.  Only enable when every direct
        peer is a trusted proxy (the fleet front end sets this for
        its workers; standalone, use ``repro serve --behind-proxy``)
        — the headers are client-controlled and spoofable otherwise.
    executor_jobs, concurrency, max_attempts, backoff_base,
    backoff_cap, executor_retries:
        Forwarded to the :class:`JobScheduler` (``concurrency`` is the
        number of jobs one worker interleaves at once).
    trace_dir, trace_service:
        When ``trace_dir`` is set the server joins distributed traces:
        incoming ``traceparent`` headers parent a ``service.submit``
        span, context flows through scheduler and executor, and spans
        land in a per-process log under ``trace_dir`` (see
        ``docs/observability.md``).  ``None`` (default) disables
        tracing entirely.
    """

    def __init__(
        self,
        store: Optional[Union[str, Path, ResultStore]] = None,
        journal: Optional[Union[str, Path]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = 64,
        rate: float = 0.0,
        burst: int = 20,
        trust_proxy_headers: bool = False,
        executor_jobs: int = 1,
        concurrency: int = 1,
        max_attempts: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        executor_retries: int = 1,
        telemetry: Optional[Telemetry] = None,
        trace_dir: Optional[Union[str, Path]] = None,
        trace_service: str = "service",
    ):
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.tracer = (Tracer(trace_service, log_dir=trace_dir)
                       if trace_dir is not None else None)
        self.slo = SloTracker()
        if isinstance(store, ResultStore):
            self.store = store
        else:
            self.store = ResultStore(store, telemetry=self.telemetry)
        self.queue = JobQueue(journal, telemetry=self.telemetry)
        self.scheduler = JobScheduler(
            self.queue, self.store,
            executor_jobs=executor_jobs,
            concurrency=concurrency,
            max_attempts=max_attempts,
            backoff_base=backoff_base,
            backoff_cap=backoff_cap,
            executor_retries=executor_retries,
            telemetry=self.telemetry,
            tracer=self.tracer,
        )
        self.host = host
        self.port = port
        self.queue_limit = queue_limit
        self.trust_proxy_headers = trust_proxy_headers
        self.limiter = TokenBucket(rate, burst)
        self._server: Optional[asyncio.base_events.Server] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._stopping: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._start_time = time.monotonic()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the scheduler (loop context)."""
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._scheduler_task = asyncio.create_task(self.scheduler.run())
        self._install_signal_handlers()
        self._start_time = time.monotonic()
        self._started.set()

    async def serve(self) -> None:
        """Run until a drain (SIGTERM) or :meth:`shutdown` completes."""
        if self._server is None:
            await self.start()
        await self._stopping.wait()
        await self._shutdown_async()

    def serve_forever(self) -> None:
        """Blocking entry point (``repro serve``)."""
        asyncio.run(self.serve())

    def start_in_thread(self) -> "ServiceServer":
        """Run the server on a daemon thread; returns once bound.

        The test-and-embedding path: the caller keeps its thread, talks
        to :attr:`port` over HTTP, and ends with :meth:`shutdown` (or
        :meth:`abort` to simulate a crash).
        """
        self._thread = threading.Thread(target=self.serve_forever,
                                        daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise ServiceError("service server failed to start")
        return self

    def begin_drain(self) -> None:
        """Stop admitting jobs, finish the running one, then exit."""
        self.scheduler.drain()
        if self._stopping is not None:
            self._stopping.set()

    def shutdown(self) -> None:
        """Graceful stop from any thread (drains first); idempotent."""
        if self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(self.begin_drain)
        except RuntimeError:
            return  # loop already closed: nothing left to stop
        if self._thread is not None:
            self._thread.join(timeout=30)

    def abort(self) -> None:
        """Ungraceful stop: kill the loop without draining.

        Simulates a crash (``kill -9``) for recovery tests — the
        journal keeps whatever was admitted.
        """
        if self._loop is None:
            return

        def _die() -> None:
            self.scheduler.stop()
            if self._scheduler_task is not None:
                self._scheduler_task.cancel()
            if self._server is not None:
                self._server.close()
            self._stopping.set()

        try:
            self._loop.call_soon_threadsafe(_die)
        except RuntimeError:
            pass  # loop already closed: just release the journal below
        if self._thread is not None:
            self._thread.join(timeout=30)
        self.queue.close()

    async def _shutdown_async(self) -> None:
        self.scheduler.drain()
        if self._scheduler_task is not None:
            try:
                await asyncio.wait_for(self._scheduler_task, timeout=None)
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.queue.close()
        if self.tracer is not None:
            self.tracer.flush()

    def _install_signal_handlers(self) -> None:
        try:
            self._loop.add_signal_handler(signal.SIGTERM, self.begin_drain)
            self._loop.add_signal_handler(signal.SIGINT, self.begin_drain)
        except (NotImplementedError, RuntimeError, ValueError):
            # non-main thread or platform without signal support; the
            # embedding code owns shutdown instead
            pass

    # -- request handling ----------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, query, headers, body = \
                    await read_request(reader)
            except BadRequest as exc:
                await respond(writer, 400, {"error": str(exc)})
                return
            except (asyncio.IncompleteReadError, ConnectionError,
                    asyncio.LimitOverrunError):
                return
            except asyncio.CancelledError:
                # loop teardown during drain cancels in-flight
                # handlers; the connection is going away regardless
                return
            self.telemetry.counter("service.http_requests").inc()
            route_start = time.monotonic()
            try:
                status, payload, extra = self._route(
                    method, path, query, headers, body, writer)
            except BadRequest as exc:
                status, payload, extra = 400, {"error": str(exc)}, {}
            except Exception as exc:  # never kill the accept loop
                self.telemetry.counter("service.http_errors").inc()
                status, payload, extra = (
                    500, {"error": f"internal error: {exc!r}"}, {})
            self.slo.observe(time.monotonic() - route_start,
                             error=status >= 500)
            await respond(writer, status, payload, extra)
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def _route(self, method, path, query, headers, body, writer):
        if path == "/healthz" and method == "GET":
            return 200, self._healthz(), {}
        if path == "/metrics" and method == "GET":
            return self._metrics(query)
        if path == "/jobs" and method == "POST":
            return self._submit(headers, body, writer)
        if path == "/jobs" and method == "GET":
            return 200, {"jobs": [job.summary()
                                  for job in self.queue.jobs()]}, {}
        if path.startswith("/jobs/") and method == "GET":
            job = self.queue.get(path[len("/jobs/"):])
            if job is None:
                return 404, {"error": "unknown job"}, {}
            return 200, {"job": job.to_dict()}, {}
        if path.startswith("/results/") and method == "GET":
            key = path[len("/results/"):]
            result = self.store.get_by_key(key)
            if result is None:
                return 404, {"error": "unknown result key"}, {}
            return 200, {"spec_key": key,
                         "result": result_to_dict(result)}, {}
        if path in ("/healthz", "/metrics", "/jobs") or \
                path.startswith(("/jobs/", "/results/")):
            return 405, {"error": f"{method} not allowed on {path}"}, {}
        return 404, {"error": f"no route for {path}"}, {}

    # -- endpoints -----------------------------------------------------

    def _healthz(self) -> dict:
        return {
            "status": "draining" if self.scheduler.draining else "ok",
            "uptime_s": round(time.monotonic() - self._start_time, 3),
            "pending": self.queue.pending_count,
            "running": self.queue.running_count,
            "queue_limit": self.queue_limit,
            "concurrency": self.scheduler.concurrency,
            "store": repr(self.store),
        }

    def _metrics(self, query: str):
        self.slo.export(self.telemetry, "service.slo")
        snapshot = self.telemetry.snapshot()
        if "format=prometheus" in query:
            text = render_prometheus(snapshot)
            return 200, text, {"content_type": "text/plain; version=0.0.4"}
        snapshot.pop("series", None)
        return 200, snapshot, {}

    def _submit(self, headers, body, writer):
        if self.tracer is None:
            return self._submit_inner(headers, body, writer, None)
        parent = SpanContext.parse(headers.get(TRACEPARENT_HEADER))
        with self.tracer.start_span("service.submit", parent=parent,
                                    cat="route") as span:
            status, payload, extra = self._submit_inner(
                headers, body, writer, span)
            span.set_attr("http_status", status)
            if status >= 400:
                span.status = "error"
            return status, payload, extra

    def _submit_inner(self, headers, body, writer, span):
        client = client_key_of(headers, writer,
                               trust_headers=self.trust_proxy_headers)
        allowed, retry_after = self.limiter.allow(client)
        if not allowed:
            self.telemetry.counter("service.rejected_ratelimit").inc()
            return 429, {"error": "rate limit exceeded"}, {
                "retry_after": max(1, int(retry_after + 0.999))}
        if self.scheduler.draining:
            return 503, {"error": "server is draining"}, {}
        job = parse_job_body(body, client)
        if self.queue.get(job.job_id) is not None:
            raise BadRequest(f"duplicate job id {job.job_id!r}")
        # followers of an in-flight job add no work, so they are always
        # admitted; only jobs that would occupy a queue slot backpressure
        if not self.scheduler.coalesces(job.job_key) and \
                self.queue.pending_count >= self.queue_limit:
            self.telemetry.counter("service.rejected_backpressure").inc()
            return 429, {"error": "job queue is full"}, {"retry_after": 2}
        if span is not None:
            # the scheduler parents the job's e2e span under this
            # submit span; the context must survive a journal replay
            job.trace = span.context.to_traceparent()
            span.set_attr("job_id", job.job_id)
            span.set_attr("client", client)
        job = self.scheduler.submit(job)
        return 202, {"job": job.summary()}, {}

"""Consistent-hash ring for sharding job keys over fleet workers.

The fleet front-end routes every job to ``ring.lookup(job_key)``, so
identical spec sets always land on the same worker and that worker's
in-flight coalescing and warm-store dedup keep working fleet-wide.
Consistent hashing (Karger et al.) gives the two properties the fleet
leans on:

balance
    Each worker owns many small arcs of the hash space (``replicas``
    virtual points per worker), so key shares concentrate around
    ``1/N`` instead of degenerating to modulo-hash hot spots.

minimal remap
    Removing a worker reassigns *only* the keys that worker owned;
    adding one steals only the keys it now owns.  Every other key
    keeps its route, so a worker death invalidates the smallest
    possible slice of the fleet's routing (and of each surviving
    worker's warm in-memory state).

Hashes are sha256-derived and platform-independent: the same ring
membership yields the same routes on every host and Python version
(``hash()`` randomization never leaks in).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

from ..errors import ConfigurationError

__all__ = ["HashRing"]


def _hash64(data: str) -> int:
    """First 8 bytes of sha256 as a big-endian integer."""
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys to member nodes.

    Parameters
    ----------
    nodes:
        Initial members.
    replicas:
        Virtual points per node.  More points tighten the balance
        bound at the cost of a larger (still tiny) sorted table;
        64 keeps the max/min key share within ~2x for small fleets.
    """

    def __init__(self, nodes: Iterable[str] = (), replicas: int = 64):
        if replicas < 1:
            raise ConfigurationError(
                f"ring replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._points: List[Tuple[int, str]] = []  # sorted (hash, node)
        self._hashes: List[int] = []  # parallel key list for bisect
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------

    def add(self, node: str) -> None:
        """Add ``node``; a no-op error if it is already a member."""
        if node in self._nodes:
            raise ConfigurationError(f"node {node!r} already in ring")
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = (_hash64(f"{node}#{replica}"), node)
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._hashes.insert(index, point[0])

    def remove(self, node: str) -> None:
        """Remove ``node`` and all its virtual points."""
        if node not in self._nodes:
            raise ConfigurationError(f"node {node!r} not in ring")
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]
        self._hashes = [h for h, _ in self._points]

    @property
    def nodes(self) -> List[str]:
        """Current members, sorted for stable iteration."""
        return sorted(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # -- routing -------------------------------------------------------

    def lookup(self, key: str) -> str:
        """The node owning ``key``: first point clockwise of its hash."""
        if not self._points:
            raise ConfigurationError("cannot route on an empty ring")
        index = bisect.bisect_right(self._hashes, _hash64(key))
        if index == len(self._points):
            index = 0  # wrap past the top of the hash space
        return self._points[index][1]

    def shares(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of ``keys`` each node owns (balance diagnostics)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts

    def describe(self) -> dict:
        """JSON-ready summary for ``/healthz``."""
        return {
            "nodes": self.nodes,
            "replicas": self.replicas,
            "points": len(self._points),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"HashRing(nodes={self.nodes}, "
                f"replicas={self.replicas})")

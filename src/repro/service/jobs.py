"""Durable priority job queue for the simulation service.

A :class:`Job` is a batch of experiment cells — ``(key, spec)`` pairs,
the same shape :class:`~repro.core.executor.SweepExecutor` consumes —
plus submission metadata (priority, client, attempts).  The
:class:`JobQueue` orders pending jobs by ``(priority, submission
order)`` and records every state transition in an append-only JSONL
*journal*, so a service process killed at any instant can rebuild its
queue on restart:

* ``done`` and ``quarantined`` jobs replay into their terminal state;
* ``submitted``, ``running``, and ``failed`` jobs re-enqueue — a crash
  mid-simulation simply costs the lost attempt (results are
  deterministic and store-deduplicated, so a re-run of a half-finished
  job re-simulates only the cells that never reached the store);
* a torn trailing line (the write the crash interrupted) is skipped
  and counted, never fatal.

The queue is synchronous and not thread-safe by itself; the service
confines it to the scheduler's event loop.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import json
import os
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.experiment import ExperimentSpec
from ..core.store import spec_key
from ..errors import ServiceError

__all__ = ["JOURNAL_SCHEMA_VERSION", "JobState", "Job", "JobQueue",
           "job_key_of"]

JOURNAL_SCHEMA_VERSION = 1
"""Version stamp on every journal line; unknown versions are skipped."""


class JobState:
    """The job lifecycle (see ``docs/service.md`` for the state machine).

    ``submitted -> running -> done`` is the happy path; a failing run
    goes ``running -> failed -> submitted`` (retry with backoff) until
    the attempt budget is spent, then ``failed -> quarantined``.
    """

    SUBMITTED = "submitted"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    QUARANTINED = "quarantined"

    ALL = (SUBMITTED, RUNNING, DONE, FAILED, QUARANTINED)
    TERMINAL = frozenset({DONE, QUARANTINED})


def job_key_of(cells: List[Tuple[tuple, ExperimentSpec]]) -> str:
    """Content identity of a job: a digest over its cells' spec keys.

    Two jobs that request the same set of experiments (in any order,
    under any cell labels) hash identically — this is what the
    scheduler dedups and coalesces on.
    """
    keys = sorted(spec_key(spec) for _key, spec in cells)
    digest = hashlib.sha256("\n".join(keys).encode("ascii"))
    return digest.hexdigest()


def new_job_id() -> str:
    return uuid.uuid4().hex[:12]


@dataclass
class Job:
    """One submitted batch of experiment cells and its accounting."""

    job_id: str
    cells: List[Tuple[tuple, ExperimentSpec]]
    priority: int = 10
    client: str = "anon"
    state: str = JobState.SUBMITTED
    attempts: int = 0
    error: Optional[str] = None
    seq: int = 0
    job_key: str = ""
    coalesced_with: Optional[str] = None
    result_keys: List[str] = field(default_factory=list)
    cells_cached: int = 0
    cells_simulated: int = 0
    trace: Optional[str] = None
    """Incoming ``traceparent`` context of the submit, if traced."""

    def __post_init__(self) -> None:
        if not self.cells:
            raise ServiceError("a job needs at least one cell")
        if not self.job_key:
            self.job_key = job_key_of(self.cells)

    @classmethod
    def create(
        cls,
        cells: List[Tuple[tuple, ExperimentSpec]],
        priority: int = 10,
        client: str = "anon",
    ) -> "Job":
        return cls(job_id=new_job_id(), cells=list(cells),
                   priority=priority, client=client)

    @property
    def done(self) -> bool:
        return self.state in JobState.TERMINAL

    # -- codecs --------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON form (journal lines and API responses)."""
        return {
            "job_id": self.job_id,
            "cells": [
                {"key": list(key), "spec": dataclasses.asdict(spec)}
                for key, spec in self.cells
            ],
            "priority": self.priority,
            "client": self.client,
            "state": self.state,
            "attempts": self.attempts,
            "error": self.error,
            "seq": self.seq,
            "job_key": self.job_key,
            "coalesced_with": self.coalesced_with,
            "result_keys": list(self.result_keys),
            "cells_cached": self.cells_cached,
            "cells_simulated": self.cells_simulated,
            "trace": self.trace,
        }

    def summary(self) -> dict:
        """The API view: :meth:`to_dict` without the spec payloads."""
        payload = self.to_dict()
        payload["cells"] = len(self.cells)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Job":
        cells = [
            (tuple(cell["key"]), ExperimentSpec(**cell["spec"]))
            for cell in payload["cells"]
        ]
        return cls(
            job_id=payload["job_id"],
            cells=cells,
            priority=payload.get("priority", 10),
            client=payload.get("client", "anon"),
            state=payload.get("state", JobState.SUBMITTED),
            attempts=payload.get("attempts", 0),
            error=payload.get("error"),
            seq=payload.get("seq", 0),
            job_key=payload.get("job_key", ""),
            coalesced_with=payload.get("coalesced_with"),
            result_keys=list(payload.get("result_keys", [])),
            cells_cached=payload.get("cells_cached", 0),
            cells_simulated=payload.get("cells_simulated", 0),
            trace=payload.get("trace"),
        )


class JobQueue:
    """Priority queue of jobs with an optional crash-safe journal.

    Parameters
    ----------
    journal:
        Path of the append-only JSONL journal; ``None`` keeps the queue
        memory-only (it then survives nothing, which is fine for tests
        and embedded use).  An existing journal is replayed on
        construction — see :attr:`replayed` / :attr:`recovered`.
    telemetry:
        Optional telemetry hub; mirrors queue depth into the
        ``service.queue_depth`` gauge.
    """

    def __init__(self, journal: Optional[Union[str, Path]] = None,
                 telemetry=None):
        if telemetry is None:
            from ..obs.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self.telemetry = telemetry
        self.journal_path = Path(journal) if journal is not None else None
        self._jobs: Dict[str, Job] = {}
        self._heap: List[Tuple[int, int, str]] = []
        self._seq = 0
        self._journal_handle = None
        self.replayed = 0
        """Journal lines applied during replay."""
        self.recovered = 0
        """Jobs re-enqueued by replay (were submitted/running/failed)."""
        self.torn_lines = 0
        """Corrupt journal lines skipped during replay."""
        if self.journal_path is not None and self.journal_path.exists():
            self._replay()

    # -- submission / claiming -----------------------------------------

    def submit(self, job: Job) -> Job:
        """Enqueue ``job`` (journaled); returns it with ``seq`` set."""
        if job.job_id in self._jobs:
            raise ServiceError(f"duplicate job id {job.job_id!r}")
        self._seq += 1
        job.seq = self._seq
        job.state = JobState.SUBMITTED
        self._jobs[job.job_id] = job
        self._append({"event": "submit", "job": job.to_dict()})
        if job.coalesced_with is None:
            heapq.heappush(self._heap, (job.priority, job.seq, job.job_id))
        self._update_depth()
        return job

    def claim(self) -> Optional[Job]:
        """Pop the highest-priority pending job and mark it running.

        Returns ``None`` when nothing is pending.  Claiming counts an
        attempt.
        """
        while self._heap:
            _prio, _seq, job_id = heapq.heappop(self._heap)
            job = self._jobs.get(job_id)
            if job is None or job.state != JobState.SUBMITTED:
                continue  # stale heap entry (job was requeued/completed)
            job.state = JobState.RUNNING
            job.attempts += 1
            self._append_update(job)
            self._update_depth()
            return job
        return None

    # -- state transitions ---------------------------------------------

    def mark_done(self, job_id: str, result_keys: List[str],
                  cells_cached: int, cells_simulated: int) -> Job:
        job = self._require(job_id)
        job.state = JobState.DONE
        job.error = None
        job.result_keys = list(result_keys)
        job.cells_cached = cells_cached
        job.cells_simulated = cells_simulated
        self._append_update(job)
        return job

    def mark_failed(self, job_id: str, error: str) -> Job:
        job = self._require(job_id)
        job.state = JobState.FAILED
        job.error = error
        self._append_update(job)
        return job

    def requeue(self, job_id: str) -> Job:
        """Put a failed job back in the pending heap (retry path)."""
        job = self._require(job_id)
        job.state = JobState.SUBMITTED
        self._append_update(job)
        heapq.heappush(self._heap, (job.priority, job.seq, job.job_id))
        self._update_depth()
        return job

    def quarantine(self, job_id: str, error: str) -> Job:
        """Poison a job: no further retries, terminal state."""
        job = self._require(job_id)
        job.state = JobState.QUARANTINED
        job.error = error
        self._append_update(job)
        return job

    # -- inspection ----------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every known job in submission order."""
        return sorted(self._jobs.values(), key=lambda j: j.seq)

    @property
    def pending_count(self) -> int:
        return sum(1 for j in self._jobs.values()
                   if j.state == JobState.SUBMITTED
                   and j.coalesced_with is None)

    @property
    def running_count(self) -> int:
        return sum(1 for j in self._jobs.values()
                   if j.state == JobState.RUNNING)

    def close(self) -> None:
        if self._journal_handle is not None:
            self._journal_handle.close()
            self._journal_handle = None

    # -- journal internals ---------------------------------------------

    def _require(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def _append_update(self, job: Job) -> None:
        self._append({
            "event": "update",
            "job_id": job.job_id,
            "state": job.state,
            "attempts": job.attempts,
            "error": job.error,
            "result_keys": list(job.result_keys),
            "cells_cached": job.cells_cached,
            "cells_simulated": job.cells_simulated,
        })

    def _append(self, record: dict) -> None:
        if self.journal_path is None:
            return
        if self._journal_handle is None:
            self.journal_path.parent.mkdir(parents=True, exist_ok=True)
            self._journal_handle = open(self.journal_path, "a")
        record = dict(record, schema=JOURNAL_SCHEMA_VERSION)
        self._journal_handle.write(
            json.dumps(record, separators=(",", ":")) + "\n")
        self._journal_handle.flush()
        os.fsync(self._journal_handle.fileno())

    def _replay(self) -> None:
        """Rebuild queue state from the journal (constructor path)."""
        for raw in self.journal_path.read_text().splitlines():
            if not raw.strip():
                continue
            try:
                record = json.loads(raw)
                if record.get("schema") != JOURNAL_SCHEMA_VERSION:
                    raise ValueError("unknown journal schema")
                event = record["event"]
                if event == "submit":
                    job = Job.from_dict(record["job"])
                elif event == "update":
                    job = self._jobs[record["job_id"]]
                else:
                    raise ValueError(f"unknown event {event!r}")
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                self.torn_lines += 1
                continue
            if event == "submit":
                self._jobs[job.job_id] = job
                self._seq = max(self._seq, job.seq)
            else:
                job.state = record["state"]
                job.attempts = record.get("attempts", job.attempts)
                job.error = record.get("error")
                job.result_keys = list(record.get("result_keys", []))
                job.cells_cached = record.get("cells_cached", 0)
                job.cells_simulated = record.get("cells_simulated", 0)
            self.replayed += 1
        # Non-terminal jobs lost their process; re-enqueue them.  A
        # coalesced follower re-enqueues standalone (its primary may
        # have finished in the lost process without journaling it).
        for job in self.jobs():
            if job.state in JobState.TERMINAL:
                continue
            job.state = JobState.SUBMITTED
            job.coalesced_with = None
            heapq.heappush(self._heap, (job.priority, job.seq, job.job_id))
            self.recovered += 1
        self._update_depth()

    def _update_depth(self) -> None:
        self.telemetry.gauge("service.queue_depth").set(self.pending_count)

"""Per-client token-bucket rate limiting for the service API.

Each client key (the ``X-Client-Id`` header, falling back to the peer
address) owns a bucket of ``burst`` tokens refilled at ``rate`` tokens
per second.  A request costs one token; an empty bucket yields a
``429`` with a ``Retry-After`` hint of how long until one token
refills.  The clock is injectable so tests are deterministic.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

from ..errors import ConfigurationError

__all__ = ["TokenBucket"]


class TokenBucket:
    """Keyed token buckets: ``allow(key)`` -> ``(ok, retry_after_s)``.

    ``rate <= 0`` disables limiting (every request is allowed) so the
    server can treat "no limit configured" and "limiter" uniformly.
    """

    def __init__(self, rate: float, burst: int = 10,
                 clock: Callable[[], float] = time.monotonic):
        if rate > 0 and burst < 1:
            raise ConfigurationError(
                f"burst must be >= 1 when rate limiting, got {burst}")
        self.rate = float(rate)
        self.burst = int(burst)
        self.clock = clock
        self._buckets: Dict[str, Tuple[float, float]] = {}

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def allow(self, key: str) -> Tuple[bool, float]:
        """Spend one token for ``key``.

        Returns ``(True, 0.0)`` when allowed, else ``(False, seconds)``
        where ``seconds`` is the time until the next token refills.
        """
        if not self.enabled:
            return True, 0.0
        now = self.clock()
        tokens, last = self._buckets.get(key, (float(self.burst), now))
        tokens = min(float(self.burst), tokens + (now - last) * self.rate)
        if tokens >= 1.0:
            self._buckets[key] = (tokens - 1.0, now)
            return True, 0.0
        self._buckets[key] = (tokens, now)
        return False, (1.0 - tokens) / self.rate

"""Sharded multi-worker service fleet behind one HTTP front end.

``repro fleet`` scales the single-process service horizontally: N
worker processes — each a full :class:`~repro.service.server
.ServiceServer` (journaled queue, scheduler, executor) — behind an
asyncio front end that

* **routes** every submitted job over a consistent-hash ring
  (:class:`~repro.service.ring.HashRing`) keyed by the job's content
  identity (:func:`~repro.service.jobs.job_key_of`), so identical
  spec sets always land on the same worker and that worker's
  in-flight coalescing keeps working fleet-wide;
* **dedups fleet-wide** through the shared content-addressed
  :class:`~repro.core.store.ResultStore`: every worker mounts the
  same store directory (safe for concurrent multi-process writers),
  so a cell simulated by one worker is a warm hit on all of them;
* **health-checks** workers and, when one dies, removes it from the
  ring (minimal remap — only its keys move) and **journal-replays**
  its non-terminal jobs onto the survivors with their job ids
  preserved, so clients polling through the front end never notice
  beyond added latency; replays that bounce off survivor
  backpressure (429/503) are parked and retried by the health loop
  until a survivor admits them, with the journaled record served to
  pollers in the meantime;
* **aggregates** observability: ``/metrics`` merges every worker's
  telemetry snapshot (per-worker queue depth, queue-wait and
  end-to-end job latency histograms) with the front end's own
  routing metrics.

The front end speaks the same HTTP API as a single worker (``POST
/jobs``, ``GET /jobs[/<id>]``, ``GET /results/<key>``, ``/healthz``,
``/metrics``), so :class:`~repro.service.client.ServiceClient`,
``repro submit`` and ``repro loadgen`` work against either
unmodified.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import signal
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.store import ResultStore, result_to_dict
from ..errors import ConfigurationError, ServiceError
from ..obs.slo import SloTracker
from ..obs.telemetry import (
    Telemetry,
    merge_snapshots,
    render_prometheus,
)
from ..obs.tracing import TRACEPARENT_HEADER, SpanContext, Tracer
from .httpcommon import BadRequest, fetch, read_request, respond
from .jobs import JobQueue, JobState
from .ring import HashRing
from .scheduler import LATENCY_BOUNDS
from .server import client_key_of, parse_job_body

__all__ = ["FleetServer", "WorkerHandle"]


def _worker_main(conn, config: dict) -> None:
    """Child-process body: run one ServiceServer, report its port.

    Top-level so the spawn context can pickle it.  The child owns its
    own asyncio loop and signal handlers: SIGTERM drains it exactly
    like a standalone ``repro serve`` process.
    """
    from .server import ServiceServer

    server = ServiceServer(**config)

    async def _run() -> None:
        await server.start()
        conn.send(server.port)
        conn.close()
        await server.serve()

    asyncio.run(_run())


@dataclass
class WorkerHandle:
    """The front end's view of one worker process."""

    name: str
    process: multiprocessing.process.BaseProcess
    port: int
    journal: Path
    alive: bool = True
    fails: int = 0

    def describe(self) -> dict:
        return {
            "port": self.port,
            "pid": self.process.pid,
            "alive": self.alive,
            "consecutive_fails": self.fails,
        }


@dataclass
class _Route:
    """Where one fleet-admitted job lives (and its replay payload).

    ``worker=None`` means the owning worker died and the job is
    parked awaiting re-admission (see :class:`_PendingReplay`);
    ``snapshot`` then carries the journaled record served to pollers
    until a survivor accepts the replay.
    """

    worker: Optional[str]
    body: dict
    job_key: str
    client: str
    snapshot: Optional[dict] = None
    replays: int = 0
    trace: Optional[str] = None
    """``traceparent`` of the front end's accept span, if traced."""


@dataclass
class _PendingReplay:
    """A dead worker's job waiting for a survivor with queue room.

    The first replay attempt happens inline during failover; if every
    survivor answers 429/503 the job lands here and the health loop
    keeps retrying until one admits it (or ``replay_retries`` ticks
    pass, which pins a terminal error so clients see a definitive
    failure instead of polling forever).
    """

    job_id: str
    job_key: str
    body: dict
    client: str
    snapshot: dict
    attempts: int = 0
    trace: Optional[str] = None


@dataclass
class _WorkerDefaults:
    """Scheduler/executor knobs forwarded to every worker."""

    queue_limit: int = 64
    rate: float = 0.0
    burst: int = 20
    executor_jobs: int = 1
    concurrency: int = 1
    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    executor_retries: int = 1


class FleetServer:
    """N service workers behind a consistent-hash routing front end.

    Parameters
    ----------
    workers:
        Worker process count (>= 1).
    store:
        Directory of the shared result store.  All workers and the
        front end mount it; it is the fleet-wide dedup backbone.
        ``None`` creates a temporary directory (fine for tests, wrong
        for production — results vanish with it).
    journal_dir:
        Directory for per-worker job journals
        (``worker-<name>.jsonl``).  Reusing the same directory across
        fleet restarts replays each worker's pending jobs.  ``None``
        creates a temporary directory.
    host, port:
        Front-end bind address (port ``0`` picks a free port).
    replicas:
        Virtual ring points per worker (balance knob).
    health_interval, health_fails:
        Seconds between health probes, and consecutive probe failures
        before a worker is declared dead.  A dead *process* is failed
        immediately regardless.
    proxy_timeout:
        Per-request timeout talking to workers.
    replay_retries:
        Health-loop ticks a parked failover replay is retried against
        survivor backpressure before the job is pinned terminal with
        an error (default 240 ≈ one minute at the default interval).
    trust_proxy_headers:
        Honour ``X-Client-Id``/``X-Forwarded-For`` from the front
        end's *own* clients (only sane when the fleet itself sits
        behind another trusted proxy).  Workers always trust these
        headers from the front end.
    trace_dir:
        Shared span-log directory enabling distributed tracing: the
        front end roots a ``job.accept`` span per submission and every
        worker (and its executor subprocesses) appends spans to its own
        log under this directory.  ``repro trace --job <id>
        --trace-dir <dir>`` merges them.  ``None`` disables tracing.
    queue_limit, rate, burst, executor_jobs, concurrency,
    max_attempts, backoff_base, backoff_cap, executor_retries:
        Forwarded to each worker's :class:`ServiceServer`.
    """

    FINALS_CAP = 4096
    """Terminal records pinned at the front end after worker deaths."""
    SEEN_CAP = 65536
    """Retired job ids remembered for the duplicate-id check."""

    def __init__(
        self,
        workers: int = 2,
        store: Optional[Union[str, Path]] = None,
        journal_dir: Optional[Union[str, Path]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = 64,
        health_interval: float = 0.25,
        health_fails: int = 3,
        proxy_timeout: float = 30.0,
        replay_retries: int = 240,
        trust_proxy_headers: bool = False,
        telemetry: Optional[Telemetry] = None,
        trace_dir: Optional[Union[str, Path]] = None,
        **worker_knobs,
    ):
        if workers < 1:
            raise ConfigurationError(
                f"fleet needs at least one worker, got {workers}")
        self.defaults = _WorkerDefaults(**worker_knobs)
        self.worker_count = int(workers)
        if store is None:
            store = tempfile.mkdtemp(prefix="repro-fleet-store-")
        if journal_dir is None:
            journal_dir = tempfile.mkdtemp(prefix="repro-fleet-journal-")
        self.store_path = Path(store)
        self.journal_dir = Path(journal_dir)
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        self.host = host
        self.port = port
        self.replicas = replicas
        self.health_interval = health_interval
        self.health_fails = health_fails
        self.proxy_timeout = proxy_timeout
        self.replay_retries = replay_retries
        self.trust_proxy_headers = trust_proxy_headers
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.tracer = (Tracer("fleet-front", log_dir=self.trace_dir)
                       if self.trace_dir is not None else None)
        self.slo = SloTracker()
        self.store = ResultStore(self.store_path, telemetry=self.telemetry)
        self.ring = HashRing(replicas=replicas)
        self.workers: Dict[str, WorkerHandle] = {}
        self._routes: Dict[str, _Route] = {}
        self._pending_replays: Dict[str, _PendingReplay] = {}
        self._finals: "OrderedDict[str, dict]" = OrderedDict()
        self._seen_ids: "OrderedDict[str, None]" = OrderedDict()
        self._mp = multiprocessing.get_context("spawn")
        self._server: Optional[asyncio.AbstractServer] = None
        self._health_task: Optional[asyncio.Task] = None
        self._stopping: Optional[asyncio.Event] = None
        self._failover_lock: Optional[asyncio.Lock] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._draining = False
        self._start_time = time.monotonic()

    # -- worker lifecycle ----------------------------------------------

    def _worker_config(self, name: str) -> dict:
        d = self.defaults
        return {
            "store": str(self.store_path),
            "journal": str(self.journal_dir / f"worker-{name}.jsonl"),
            "host": "127.0.0.1",
            "port": 0,
            "queue_limit": d.queue_limit,
            "rate": d.rate,
            "burst": d.burst,
            "executor_jobs": d.executor_jobs,
            "concurrency": d.concurrency,
            "max_attempts": d.max_attempts,
            "backoff_base": d.backoff_base,
            "backoff_cap": d.backoff_cap,
            "executor_retries": d.executor_retries,
            # the only peer a worker hears from is the front end, whose
            # forwarded identity headers are authoritative
            "trust_proxy_headers": True,
            **({"trace_dir": str(self.trace_dir),
                "trace_service": f"service-{name}"}
               if self.trace_dir is not None else {}),
        }

    def _spawn_worker(self, name: str) -> WorkerHandle:
        """Blocking: start one worker process and wait for its port."""
        config = self._worker_config(name)
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=_worker_main, args=(child_conn, config),
            name=f"repro-fleet-{name}", daemon=True)
        process.start()
        child_conn.close()
        if not parent_conn.poll(timeout=60):
            process.kill()
            raise ServiceError(f"fleet worker {name} failed to start")
        try:
            port = parent_conn.recv()
        except EOFError:
            process.kill()
            raise ServiceError(
                f"fleet worker {name} died during startup") from None
        parent_conn.close()
        return WorkerHandle(
            name=name, process=process, port=port,
            journal=Path(config["journal"]))

    async def start(self) -> None:
        """Spawn the workers, bind the front-end socket (loop ctx)."""
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._failover_lock = asyncio.Lock()
        names = [f"w{i}" for i in range(self.worker_count)]
        handles = await asyncio.gather(
            *(asyncio.to_thread(self._spawn_worker, name)
              for name in names))
        for handle in handles:
            self.workers[handle.name] = handle
            self.ring.add(handle.name)
        self.telemetry.gauge("fleet.workers").set(len(self.ring))
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._health_task = asyncio.create_task(self._health_loop())
        self._install_signal_handlers()
        self._start_time = time.monotonic()
        self._started.set()

    async def serve(self) -> None:
        """Run until drain/shutdown completes."""
        if self._server is None:
            await self.start()
        await self._stopping.wait()
        await self._shutdown_async()

    def serve_forever(self) -> None:
        """Blocking entry point (``repro fleet``)."""
        asyncio.run(self.serve())

    def start_in_thread(self) -> "FleetServer":
        """Run the fleet on a daemon thread; returns once bound."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=120):
            raise ServiceError("fleet front end failed to start")
        return self

    def begin_drain(self) -> None:
        """Stop admitting, SIGTERM the workers, then exit."""
        self._draining = True
        if self._stopping is not None:
            self._stopping.set()

    def shutdown(self) -> None:
        """Graceful stop from any thread; idempotent."""
        if self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(self.begin_drain)
        except RuntimeError:
            return
        if self._thread is not None:
            self._thread.join(timeout=120)

    def abort(self) -> None:
        """Ungraceful stop: kill workers and the loop outright."""
        for worker in self.workers.values():
            if worker.process.is_alive():
                worker.process.kill()
        if self._loop is None:
            return

        def _die() -> None:
            if self._health_task is not None:
                self._health_task.cancel()
            if self._server is not None:
                self._server.close()
            self._stopping.set()

        try:
            self._loop.call_soon_threadsafe(_die)
        except RuntimeError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=30)

    async def _shutdown_async(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
        for worker in self.workers.values():
            if worker.process.is_alive():
                worker.process.terminate()  # SIGTERM -> worker drains

        def _join_all() -> None:
            for worker in self.workers.values():
                worker.process.join(timeout=60)

        await asyncio.to_thread(_join_all)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.tracer is not None:
            self.tracer.flush()

    def _install_signal_handlers(self) -> None:
        try:
            self._loop.add_signal_handler(signal.SIGTERM, self.begin_drain)
            self._loop.add_signal_handler(signal.SIGINT, self.begin_drain)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread; the embedding code owns shutdown

    # -- chaos / test hooks --------------------------------------------

    def kill_worker(self, name: str) -> None:
        """SIGKILL one worker (thread-safe chaos hook for tests).

        The health loop (or the next failed forward) notices, removes
        it from the ring, and replays its journal onto the survivors.
        """
        worker = self.workers[name]
        if worker.process.is_alive():
            worker.process.kill()

    @property
    def live_workers(self) -> List[str]:
        return [name for name, w in self.workers.items() if w.alive]

    def route_of(self, job_id: str) -> Optional[str]:
        """Which worker currently owns a fleet-admitted job id."""
        route = self._routes.get(job_id)
        return route.worker if route else None

    # -- health + failover ---------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            await asyncio.gather(
                *(self._check_worker(name) for name in self.live_workers),
                return_exceptions=True)
            try:
                await self._drain_pending_replays()
            except Exception:
                self.telemetry.counter("fleet.replay_errors").inc()

    async def _check_worker(self, name: str) -> None:
        worker = self.workers.get(name)
        if worker is None or not worker.alive:
            return
        if not worker.process.is_alive():
            await self._fail_worker(name, "process died")
            return
        try:
            status, _headers, _payload = await fetch(
                "127.0.0.1", worker.port, "GET", "/healthz",
                timeout=max(1.0, 4 * self.health_interval))
            ok = status == 200
        except ServiceError:
            ok = False
        if ok:
            worker.fails = 0
            return
        worker.fails += 1
        if worker.fails >= self.health_fails:
            await self._fail_worker(
                name, f"{worker.fails} consecutive health failures")

    async def _fail_worker(self, name: str, reason: str) -> None:
        """Remove a dead worker and replay its journal onto survivors.

        The lock serialises concurrent failure detections (health
        loop, submit path, poll path).  It is NOT reentrant: any code
        already holding it (replay discovering a second dead worker)
        must go through :meth:`_fail_worker_locked` instead.
        """
        async with self._failover_lock:
            await self._fail_worker_locked(name, reason)

    async def _fail_worker_locked(self, name: str, reason: str) -> None:
        """:meth:`_fail_worker` body; caller holds ``_failover_lock``."""
        worker = self.workers.get(name)
        if worker is None or not worker.alive:
            return
        worker.alive = False
        if name in self.ring:
            self.ring.remove(name)
        self.telemetry.counter("fleet.worker_deaths").inc()
        self.telemetry.gauge("fleet.workers").set(len(self.ring))
        if worker.process.is_alive():
            worker.process.kill()
        await self._replay_journal(worker, reason)

    async def _replay_journal(self, worker: WorkerHandle,
                              reason: str) -> None:
        """Re-route the dead worker's non-terminal jobs.

        The worker journaled every admission and transition before
        acting on it, so its journal is the authoritative record of
        what it still owed.  Terminal jobs are pinned at the front end
        (their results live in the shared store); everything else is
        re-submitted — same job id, same cells, same priority — to
        whichever survivor the shrunken ring now picks.  A replay the
        survivors bounce (429 backpressure, 503) is parked in
        ``_pending_replays`` and retried by the health loop, never
        dropped.

        Runs while holding ``_failover_lock``, so forwarding goes
        through the locked failover path (a survivor found dead here
        is failed without re-acquiring the lock).
        """
        if not worker.journal.exists():
            return
        recovered = JobQueue(worker.journal)  # read-only replay
        recovered.close()
        for job in recovered.jobs():
            route = self._routes.get(job.job_id)
            if job.state in JobState.TERMINAL:
                record = job.to_dict()
                record["worker"] = worker.name
                self._pin_final(job.job_id, record)
                continue
            replay_headers = {"X-Client-Id": job.client}
            span = None
            if self.tracer is not None:
                # re-join the job's original trace: the accept span if
                # the front end routed it, else the dead worker's
                # journaled submit context
                parent = SpanContext.parse(
                    (route.trace if route is not None else None)
                    or job.trace)
                span = self.tracer.start_span(
                    "job.replay", parent=parent, cat="replay",
                    attrs={"job_id": job.job_id,
                           "dead_worker": worker.name})
                replay_headers[TRACEPARENT_HEADER] = \
                    span.context.to_traceparent()
            status, payload = await self._forward(
                job.job_key, _job_body(job), replay_headers, locked=True)
            if span is not None:
                span.set_attr("http_status", status)
                if not (status == 202 or _is_duplicate(status, payload)):
                    span.status = "error"
                span.finish()
            if status == 202 or _is_duplicate(status, payload):
                self.telemetry.counter("fleet.replayed").inc()
                if route is not None:
                    route.replays += 1
            else:
                self._defer_replay(job, route)

    def _defer_replay(self, job, route: Optional[_Route]) -> None:
        """Park a bounced replay for the health loop to retry."""
        snapshot = job.to_dict()
        snapshot["state"] = JobState.SUBMITTED
        snapshot["worker"] = None
        if route is not None:
            route.worker = None
            route.snapshot = snapshot
        self._pending_replays[job.job_id] = _PendingReplay(
            job_id=job.job_id, job_key=job.job_key,
            body=_job_body(job), client=job.client, snapshot=snapshot,
            trace=(route.trace if route is not None else None) or job.trace)
        self.telemetry.counter("fleet.replay_deferred").inc()

    async def _drain_pending_replays(self) -> None:
        """Retry parked replays (health-loop tick, lock not held)."""
        for job_id in list(self._pending_replays):
            entry = self._pending_replays.get(job_id)
            if entry is None:
                continue
            retry_headers = {"X-Client-Id": entry.client}
            span = None
            if self.tracer is not None:
                span = self.tracer.start_span(
                    "job.replay", parent=SpanContext.parse(entry.trace),
                    cat="replay",
                    attrs={"job_id": job_id,
                           "attempt": entry.attempts + 1})
                retry_headers[TRACEPARENT_HEADER] = \
                    span.context.to_traceparent()
            status, payload = await self._forward(
                entry.job_key, entry.body, retry_headers)
            if span is not None:
                span.set_attr("http_status", status)
                if not (status == 202 or _is_duplicate(status, payload)):
                    span.status = "error"
                span.finish()
            if status == 202 or _is_duplicate(status, payload):
                self._pending_replays.pop(job_id, None)
                route = self._routes.get(job_id)
                if route is not None:
                    route.snapshot = None
                    route.replays += 1
                self.telemetry.counter("fleet.replayed").inc()
                continue
            entry.attempts += 1
            if entry.attempts >= self.replay_retries:
                # give the client a definitive failure instead of an
                # eternally-queued phantom
                self._pending_replays.pop(job_id, None)
                record = dict(entry.snapshot)
                record["state"] = JobState.QUARANTINED
                record["error"] = (
                    f"failover replay exhausted after "
                    f"{entry.attempts} attempts (last status {status})")
                self._pin_final(job_id, record)
                self.telemetry.counter("fleet.replay_failures").inc()

    async def _forward(self, job_key: str, body: dict,
                       headers: dict, locked: bool = False):
        """POST one job to the ring's pick, failing workers over.

        Returns ``(status, payload)``; records the route on 202.
        Retries through worker deaths until the ring is empty.
        ``locked`` means the caller already holds ``_failover_lock``
        (journal replay), so dead survivors are failed via the
        non-locking path — re-acquiring the lock here would deadlock.
        """
        for _attempt in range(self.worker_count + 1):
            if len(self.ring) == 0:
                return 503, {"error": "no live workers"}
            name = self.ring.lookup(job_key)
            worker = self.workers[name]
            try:
                status, _resp_headers, payload = await fetch(
                    "127.0.0.1", worker.port, "POST", "/jobs",
                    body=body, headers=headers,
                    timeout=self.proxy_timeout)
            except ServiceError:
                self.telemetry.counter("fleet.rerouted").inc()
                if locked:
                    await self._fail_worker_locked(
                        name, "unreachable during submit")
                else:
                    await self._fail_worker(
                        name, "unreachable during submit")
                continue
            if status == 202:
                job_id = payload.get("job", {}).get("job_id")
                if job_id:
                    route = self._routes.get(job_id)
                    if route is None:
                        self._routes[job_id] = _Route(
                            worker=name, body=body, job_key=job_key,
                            client=headers.get("X-Client-Id", "anon"),
                            trace=headers.get(TRACEPARENT_HEADER))
                    else:
                        route.worker = name
                        route.snapshot = None
            return status, payload
        return 502, {"error": "no worker accepted the job"}

    # -- front-end job bookkeeping -------------------------------------

    def _pin_final(self, job_id: str, record: dict) -> None:
        """Keep a terminal record the workers can no longer serve.

        Bounded: the oldest pinned record falls off once FINALS_CAP is
        reached (its result still lives in the shared store); the id
        moves to the seen-set so duplicate submissions stay rejected.
        """
        self._routes.pop(job_id, None)
        self._pending_replays.pop(job_id, None)
        self._finals[job_id] = record
        self._finals.move_to_end(job_id)
        while len(self._finals) > self.FINALS_CAP:
            old_id, _record = self._finals.popitem(last=False)
            self._remember_seen(old_id)

    def _remember_seen(self, job_id: str) -> None:
        self._seen_ids[job_id] = None
        self._seen_ids.move_to_end(job_id)
        while len(self._seen_ids) > self.SEEN_CAP:
            self._seen_ids.popitem(last=False)

    def _retire_route(self, job_id: str) -> None:
        """Drop a route observed terminal at a live worker.

        The worker keeps the authoritative record (later polls reach
        it through the broadcast fallback); the front end only needs
        the id for the duplicate check.  This is what keeps
        ``_routes`` bounded by in-flight work instead of growing with
        every job ever admitted.
        """
        if self._routes.pop(job_id, None) is not None:
            self._remember_seen(job_id)

    def _local_job(self, job_id: str) -> Optional[dict]:
        """A record the front end can serve without any worker."""
        final = self._finals.get(job_id)
        if final is not None:
            return final
        route = self._routes.get(job_id)
        if route is not None and route.worker is None \
                and route.snapshot is not None:
            return route.snapshot
        pending = self._pending_replays.get(job_id)
        if pending is not None:
            return pending.snapshot
        return None

    # -- request handling ----------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, query, headers, body = \
                    await read_request(reader)
            except BadRequest as exc:
                await respond(writer, 400, {"error": str(exc)})
                return
            except (asyncio.IncompleteReadError, ConnectionError,
                    asyncio.LimitOverrunError):
                return
            except asyncio.CancelledError:
                # loop teardown during drain cancels in-flight
                # handlers; the connection is going away regardless
                return
            self.telemetry.counter("fleet.http_requests").inc()
            route_start = time.monotonic()
            try:
                status, payload, extra = await self._route_request(
                    method, path, query, headers, body, writer)
            except BadRequest as exc:
                status, payload, extra = 400, {"error": str(exc)}, {}
            except Exception as exc:  # never kill the accept loop
                self.telemetry.counter("fleet.http_errors").inc()
                status, payload, extra = (
                    500, {"error": f"internal error: {exc!r}"}, {})
            self.slo.observe(time.monotonic() - route_start,
                             error=status >= 500)
            await respond(writer, status, payload, extra)
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _route_request(self, method, path, query, headers, body,
                             writer):
        if path == "/healthz" and method == "GET":
            return 200, self._healthz(), {}
        if path == "/metrics" and method == "GET":
            return await self._metrics(query)
        if path == "/jobs" and method == "POST":
            return await self._submit(headers, body, writer)
        if path == "/jobs" and method == "GET":
            return await self._list_jobs()
        if path.startswith("/jobs/") and method == "GET":
            return await self._get_job(path[len("/jobs/"):])
        if path.startswith("/results/") and method == "GET":
            key = path[len("/results/"):]
            result = self.store.get_by_key(key)
            if result is None:
                return 404, {"error": "unknown result key"}, {}
            return 200, {"spec_key": key,
                         "result": result_to_dict(result)}, {}
        if path in ("/healthz", "/metrics", "/jobs") or \
                path.startswith(("/jobs/", "/results/")):
            return 405, {"error": f"{method} not allowed on {path}"}, {}
        return 404, {"error": f"no route for {path}"}, {}

    # -- endpoints -----------------------------------------------------

    async def _submit(self, headers, body, writer):
        if self.tracer is None:
            return await self._submit_inner(headers, body, writer, None)
        # The fleet's accept span is the trace root for untraced
        # clients; a client-minted traceparent parents it instead.
        parent = SpanContext.parse(headers.get(TRACEPARENT_HEADER))
        with self.tracer.start_span("job.accept", parent=parent,
                                    cat="route") as span:
            status, payload, extra = await self._submit_inner(
                headers, body, writer, span)
            span.set_attr("http_status", status)
            if status >= 400:
                span.status = "error"
            return status, payload, extra

    async def _submit_inner(self, headers, body, writer, span):
        if self._draining:
            return 503, {"error": "fleet is draining"}, {}
        client = client_key_of(headers, writer,
                               trust_headers=self.trust_proxy_headers)
        job = parse_job_body(body, client)
        if job.job_id in self._routes or job.job_id in self._finals \
                or job.job_id in self._seen_ids:
            return 400, {"error": f"duplicate job id {job.job_id!r}"}, {}
        forward_headers = {"X-Client-Id": client}
        if span is not None:
            span.set_attr("job_id", job.job_id)
            span.set_attr("client", client)
            forward_headers[TRACEPARENT_HEADER] = \
                span.context.to_traceparent()
        peer = writer.get_extra_info("peername")
        if peer:
            # only propagate a caller-supplied forwarding chain when
            # this front end itself trusts its callers; otherwise it
            # starts a fresh chain at the socket peer
            forwarded = headers.get("x-forwarded-for") \
                if self.trust_proxy_headers else None
            forward_headers["X-Forwarded-For"] = (
                f"{forwarded}, {peer[0]}" if forwarded else peer[0])
        forward_body = _job_body(job)
        start = time.monotonic()
        status, payload = await self._forward(
            job.job_key, forward_body, forward_headers)
        elapsed = time.monotonic() - start
        self.telemetry.histogram(
            "fleet.submit_seconds", bounds=LATENCY_BOUNDS
        ).observe(elapsed)
        if span is not None:
            self.tracer.record_span(
                "fleet.forward", cat="route", duration_s=elapsed,
                parent=span.context,
                attrs={"job_id": job.job_id, "http_status": status})
        extra = {}
        if status == 429:
            extra["retry_after"] = 2
        return status, payload, extra

    async def _get_job(self, job_id: str):
        record = self._local_job(job_id)
        if record is not None:
            return 200, {"job": record}, {}
        route = self._routes.get(job_id)
        if route is None:
            # not fleet-admitted (or retired/pre-restart): ask every
            # worker — whichever ran it keeps the record
            for name in self.live_workers:
                worker = self.workers[name]
                try:
                    status, _h, payload = await fetch(
                        "127.0.0.1", worker.port, "GET",
                        f"/jobs/{job_id}", timeout=self.proxy_timeout)
                except ServiceError:
                    continue
                if status == 200:
                    return 200, payload, {}
            return 404, {"error": "unknown job"}, {}
        response = await self._poll_route(job_id, route)
        if response is not None:
            return response
        # the owning worker died mid-poll: wait for the in-flight
        # failover to re-route (or pin/park) the job, then re-check
        async with self._failover_lock:
            pass
        record = self._local_job(job_id)
        if record is not None:
            return 200, {"job": record}, {}
        route = self._routes.get(job_id)
        if route is not None:
            response = await self._poll_route(job_id, route)
            if response is not None:
                return response
        return 502, {"error": f"job {job_id} temporarily unroutable"}, {}

    async def _poll_route(self, job_id: str, route: _Route):
        """Proxy one job poll to its worker; ``None`` if it just died."""
        if route.worker is None:
            return None  # parked mid-transition; caller re-checks
        worker = self.workers.get(route.worker)
        if worker is None or not worker.alive:
            return None
        try:
            status, _h, payload = await fetch(
                "127.0.0.1", worker.port, "GET", f"/jobs/{job_id}",
                timeout=self.proxy_timeout)
        except ServiceError:
            await self._fail_worker(route.worker,
                                    "unreachable during poll")
            return None
        if status == 200 and isinstance(payload, dict):
            record = payload.get("job")
            if isinstance(record, dict) and \
                    record.get("state") in JobState.TERMINAL:
                self._retire_route(job_id)
        return status, payload, {}

    async def _list_jobs(self):
        jobs: List[dict] = []
        for name in self.live_workers:
            worker = self.workers[name]
            try:
                status, _h, payload = await fetch(
                    "127.0.0.1", worker.port, "GET", "/jobs",
                    timeout=self.proxy_timeout)
            except ServiceError:
                continue
            if status == 200:
                for job in payload.get("jobs", []):
                    job["worker"] = name
                    jobs.append(job)
        # jobs no live worker can report: terminal records pinned
        # after a worker death, and parked failover replays
        listed = {job.get("job_id") for job in jobs}
        for job_id, record in list(self._finals.items()):
            if job_id not in listed:
                listed.add(job_id)
                jobs.append(_summary_of(record))
        for job_id, route in list(self._routes.items()):
            if route.worker is None and route.snapshot is not None \
                    and job_id not in listed:
                listed.add(job_id)
                jobs.append(_summary_of(route.snapshot))
        for job_id, entry in list(self._pending_replays.items()):
            if job_id not in listed:
                listed.add(job_id)
                jobs.append(_summary_of(entry.snapshot))
        return 200, {"jobs": jobs}, {}

    def _healthz(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "role": "fleet-front-end",
            "uptime_s": round(time.monotonic() - self._start_time, 3),
            "workers": {name: worker.describe()
                        for name, worker in self.workers.items()},
            "live_workers": len(self.ring),
            "ring": self.ring.describe(),
            "routed_jobs": len(self._routes),
            "pinned_jobs": len(self._finals),
            "pending_replays": len(self._pending_replays),
            "store": repr(self.store),
        }

    async def _metrics(self, query: str):
        worker_snaps: Dict[str, dict] = {}

        async def grab(name: str) -> None:
            worker = self.workers[name]
            try:
                status, _h, payload = await fetch(
                    "127.0.0.1", worker.port, "GET", "/metrics",
                    timeout=self.proxy_timeout)
            except ServiceError:
                return
            if status == 200 and isinstance(payload, dict):
                worker_snaps[name] = payload

        await asyncio.gather(*(grab(name) for name in self.live_workers),
                             return_exceptions=True)
        self.slo.export(self.telemetry, "fleet.slo")
        own = self.telemetry.snapshot()
        own.pop("series", None)
        for name, snap in worker_snaps.items():
            depth = snap.get("gauges", {}).get("service.queue_depth", 0)
            own.setdefault("gauges", {})[
                f"fleet.worker_depth.{name}"] = depth
        aggregate = merge_snapshots([own] + list(worker_snaps.values()))
        if "format=prometheus" in query:
            text = render_prometheus(aggregate)
            return 200, text, {"content_type": "text/plain; version=0.0.4"}
        return 200, {"fleet": own, "workers": worker_snaps,
                     "aggregate": aggregate}, {}


def _job_body(job) -> dict:
    """The ``POST /jobs`` payload that reproduces ``job`` exactly."""
    specs = []
    for key, spec in job.cells:
        entry = dataclasses.asdict(spec)
        entry["key"] = list(key)
        specs.append(entry)
    return {"specs": specs, "priority": job.priority,
            "job_id": job.job_id}


def _summary_of(record: dict) -> dict:
    """Listing view of a pinned/parked record (specs elided)."""
    summary = dict(record)
    cells = summary.get("cells")
    if isinstance(cells, list):
        summary["cells"] = len(cells)
    return summary


def _is_duplicate(status: int, payload) -> bool:
    """A 400 'duplicate job id' during replay means it already made it."""
    return (status == 400 and isinstance(payload, dict)
            and "duplicate job id" in str(payload.get("error", "")))

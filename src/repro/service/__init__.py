"""repro.service — simulation as a service.

A long-running job layer over the experiment machinery: submit batches
of :class:`~repro.core.experiment.ExperimentSpec` cells to a live
process over HTTP, share one warm
:class:`~repro.core.store.ResultStore` across every caller, and
survive crashes via a durable job journal.

The pieces (see ``docs/service.md``):

* :mod:`repro.service.jobs` — the priority :class:`JobQueue` and its
  crash-safe JSONL journal;
* :mod:`repro.service.scheduler` — the async :class:`JobScheduler`
  with store dedup, in-flight coalescing, bounded job concurrency,
  exponential-backoff retries and poison-job quarantine;
* :mod:`repro.service.server` — the stdlib-asyncio HTTP API
  (:class:`ServiceServer`) with bounded-queue backpressure, per-client
  rate limiting, ``/metrics`` telemetry export, and graceful drain;
* :mod:`repro.service.ring` — the consistent-hash :class:`HashRing`
  the fleet routes job identities over;
* :mod:`repro.service.fleet` — N worker processes behind one routing
  front end (:class:`FleetServer`) with health-checked journal-replay
  failover and aggregated metrics;
* :mod:`repro.service.client` — the synchronous
  :class:`ServiceClient` behind ``repro submit`` / ``repro jobs``
  (it speaks to a single server and a fleet identically).
"""

from .client import ServiceClient
from .fleet import FleetServer
from .jobs import Job, JobQueue, JobState, job_key_of
from .ratelimit import TokenBucket
from .ring import HashRing
from .scheduler import JobScheduler
from .server import ServiceServer

__all__ = [
    "FleetServer",
    "HashRing",
    "Job",
    "JobQueue",
    "JobState",
    "JobScheduler",
    "ServiceClient",
    "ServiceServer",
    "TokenBucket",
    "job_key_of",
]

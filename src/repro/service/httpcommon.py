"""Shared stdlib HTTP/1.1 plumbing for the service tier.

Both HTTP servers in the package — the single-node
:class:`~repro.service.server.ServiceServer` and the fleet front-end
:class:`~repro.service.fleet.FleetServer` — speak the same hand-rolled
wire format.  This module owns the pieces they share so the two stay
byte-compatible: request parsing (:func:`read_request`), response
framing (:func:`respond`), and the asyncio client (:func:`fetch`) the
front-end and the load generator use to talk to workers.

Everything is ``Connection: close`` HTTP/1.1 over asyncio streams; no
keep-alive, no chunked encoding — one request, one response, one
socket, which keeps failure handling trivial (a dead peer is a
connection error, never a half-open stream).
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from ..errors import ServiceError

__all__ = [
    "MAX_BODY_BYTES",
    "STATUS_TEXT",
    "BadRequest",
    "read_request",
    "respond",
    "fetch",
]

MAX_BODY_BYTES = 8 * 1024 * 1024
STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    502: "Bad Gateway", 503: "Service Unavailable",
}


class BadRequest(ServiceError):
    """Maps to a 400 response."""


async def read_request(reader: asyncio.StreamReader) -> Tuple[
        str, str, str, dict, Optional[bytes]]:
    """Parse one request: ``(method, path, query, headers, body)``.

    Raises :class:`BadRequest` on malformed input and
    ``asyncio.IncompleteReadError`` on a closed/empty connection.
    Header names are lower-cased; the body is read iff a valid
    ``Content-Length`` is present (bounded by :data:`MAX_BODY_BYTES`).
    """
    request_line = (await reader.readline()).decode("latin-1").strip()
    if not request_line:
        raise asyncio.IncompleteReadError(b"", None)
    parts = request_line.split()
    if len(parts) != 3:
        raise BadRequest(f"malformed request line {request_line!r}")
    method, target, _version = parts
    path, _, query = target.partition("?")
    headers = {}
    while True:
        line = (await reader.readline()).decode("latin-1").strip()
        if not line:
            break
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    body = None
    length = headers.get("content-length")
    if length is not None:
        try:
            length = int(length)
        except ValueError:
            raise BadRequest("invalid Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise BadRequest("request body too large")
        body = await reader.readexactly(length)
    return method.upper(), path, query, headers, body


async def respond(writer: asyncio.StreamWriter, status: int, payload,
                  extra: Optional[dict] = None) -> None:
    """Write one framed response and drain.

    ``payload`` may be a ``str`` (sent as-is, e.g. Prometheus text) or
    any JSON-serializable object.  ``extra`` carries ``content_type``
    and ``retry_after`` overrides.
    """
    extra = extra or {}
    content_type = extra.get("content_type", "application/json")
    if isinstance(payload, str):
        body = payload.encode("utf-8")
    else:
        body = (json.dumps(payload, indent=1) + "\n").encode("utf-8")
    head = [
        f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    if "retry_after" in extra:
        head.append(f"Retry-After: {extra['retry_after']}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                 + body)
    await writer.drain()


async def fetch(host: str, port: int, method: str, path: str,
                body: Optional[dict] = None,
                headers: Optional[dict] = None,
                timeout: float = 10.0) -> Tuple[int, dict, object]:
    """One asyncio HTTP round-trip: ``(status, headers, payload)``.

    The JSON-decoded body is returned when it parses, else the raw
    text.  Connection-level failures raise :class:`ServiceError` — the
    caller decides whether that means "worker is dead".
    """
    data = b""
    if body is not None:
        data = json.dumps(body).encode("utf-8")
    head = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}:{port}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    if body is not None:
        head.append("Content-Type: application/json")
    head.append(f"Content-Length: {len(data)}")

    async def _roundtrip() -> Tuple[int, dict, object]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(("\r\n".join(head) + "\r\n\r\n")
                         .encode("latin-1") + data)
            await writer.drain()
            status_line = (await reader.readline()).decode("latin-1")
            parts = status_line.split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ServiceError(
                    f"malformed status line {status_line!r} "
                    f"from {host}:{port}")
            status = int(parts[1])
            response_headers = {}
            while True:
                line = (await reader.readline()).decode("latin-1").strip()
                if not line:
                    break
                name, _, value = line.partition(":")
                response_headers[name.strip().lower()] = value.strip()
            raw = await reader.read()
            length = response_headers.get("content-length")
            if length is not None and length.isdigit():
                raw = raw[:int(length)]
            text = raw.decode("utf-8", errors="replace")
            try:
                payload = json.loads(text) if text else {}
            except json.JSONDecodeError:
                payload = text
            return status, response_headers, payload
        finally:
            try:
                writer.close()
            except Exception:
                pass

    try:
        return await asyncio.wait_for(_roundtrip(), timeout=timeout)
    except (OSError, asyncio.IncompleteReadError) as exc:
        raise ServiceError(
            f"cannot reach http://{host}:{port}{path}: {exc}") from None
    except asyncio.TimeoutError:
        raise ServiceError(
            f"timeout after {timeout}s on "
            f"http://{host}:{port}{path}") from None

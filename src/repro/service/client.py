"""Thin synchronous client for the simulation service.

Speaks the ``repro serve`` HTTP API with nothing but ``http.client``:

>>> client = ServiceClient("http://127.0.0.1:8765")     # doctest: +SKIP
>>> job = client.submit([ExperimentSpec(mix="mix5")])   # doctest: +SKIP
>>> job = client.wait(job["job_id"])                    # doctest: +SKIP
>>> result = client.result(job["result_keys"][0])       # doctest: +SKIP

``submit`` transparently honours ``429`` backpressure: it sleeps the
server's ``Retry-After`` hint and retries until ``busy_timeout`` is
spent, then raises :class:`~repro.errors.ServiceError` with the status
attached.  Every other non-2xx response raises immediately.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import time
from typing import Iterable, List, Optional, Tuple, Union
from urllib.parse import urlsplit

from ..core.experiment import ExperimentSpec
from ..core.store import result_from_dict
from ..errors import ServiceError
from .jobs import JobState

__all__ = ["ServiceClient"]

SpecLike = Union[ExperimentSpec, dict]


class ServiceClient:
    """Synchronous HTTP client bound to one service URL.

    Parameters
    ----------
    url:
        Base URL, e.g. ``http://127.0.0.1:8765``.
    client_id:
        Sent as ``X-Client-Id``; the server rate-limits per client.
    timeout:
        Socket timeout per request, seconds.
    busy_timeout:
        Total time :meth:`submit` keeps retrying through ``429``
        responses before giving up (0 = fail on the first 429).
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer`.  When set,
        :meth:`submit` opens a ``client.submit`` span and sends its
        context as a ``traceparent`` header, so the server-side trace
        chains all the way back to the caller.
    """

    def __init__(self, url: str, client_id: str = "anon",
                 timeout: float = 30.0, busy_timeout: float = 0.0,
                 tracer=None):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ServiceError(f"unsupported URL scheme {parts.scheme!r}")
        if not parts.hostname:
            raise ServiceError(f"invalid service URL {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 8765
        self.client_id = client_id
        self.timeout = timeout
        self.busy_timeout = busy_timeout
        self.tracer = tracer

    # -- API calls -----------------------------------------------------

    def submit(self, specs: Iterable[SpecLike], priority: int = 10,
               keys: Optional[List[tuple]] = None) -> dict:
        """Submit one job; returns the job summary dict (state etc.).

        ``specs`` may be :class:`ExperimentSpec` instances or plain
        dicts; ``keys`` optionally labels each cell (defaults to its
        index).
        """
        entries = []
        for index, spec in enumerate(specs):
            entry = (dataclasses.asdict(spec)
                     if isinstance(spec, ExperimentSpec) else dict(spec))
            if keys is not None:
                entry["key"] = list(keys[index])
            entries.append(entry)
        body = {"specs": entries, "priority": priority}
        span = None
        extra_headers = None
        if self.tracer is not None:
            span = self.tracer.start_span("client.submit", cat="route",
                                          attrs={"client": self.client_id})
            extra_headers = {"traceparent": span.context.to_traceparent()}
        try:
            deadline = time.monotonic() + self.busy_timeout
            while True:
                status, headers, payload = self._request(
                    "POST", "/jobs", body, extra_headers=extra_headers)
                if status != 429:
                    self._check(status, payload)
                    if span is not None:
                        span.set_attr("job_id",
                                      payload["job"].get("job_id"))
                    return payload["job"]
                retry_after = float(headers.get("retry-after", 1))
                if time.monotonic() + retry_after > deadline:
                    raise ServiceError(
                        f"server busy: {payload.get('error', '429')}",
                        status=429, retry_after=retry_after)
                time.sleep(retry_after)
        except Exception:
            if span is not None:
                span.status = "error"
            raise
        finally:
            if span is not None:
                span.finish()

    def job(self, job_id: str) -> dict:
        status, _headers, payload = self._request(
            "GET", f"/jobs/{job_id}")
        self._check(status, payload)
        return payload["job"]

    def jobs(self) -> List[dict]:
        status, _headers, payload = self._request("GET", "/jobs")
        self._check(status, payload)
        return payload["jobs"]

    def wait(self, job_id: str, timeout: float = 600.0,
             poll: float = 0.1) -> dict:
        """Poll until the job reaches a terminal state; returns it.

        Raises :class:`ServiceError` on timeout — but *not* on a
        quarantined job: the terminal record (with its error) is
        returned for the caller to inspect.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in JobState.TERMINAL:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job['state']} after {timeout}s")
            time.sleep(poll)

    def result(self, key: str, decode: bool = True):
        """Fetch a stored result by spec key.

        ``decode=True`` returns an
        :class:`~repro.core.experiment.ExperimentResult`; ``False``
        returns the raw record dict (useful for byte-level comparisons).
        """
        status, _headers, payload = self._request(
            "GET", f"/results/{key}")
        self._check(status, payload)
        if decode:
            return result_from_dict(payload["result"])
        return payload

    def healthz(self) -> dict:
        status, _headers, payload = self._request("GET", "/healthz")
        self._check(status, payload)
        return payload

    def metrics(self) -> dict:
        status, _headers, payload = self._request("GET", "/metrics")
        self._check(status, payload)
        return payload

    def metrics_text(self) -> str:
        """The Prometheus text exposition of ``/metrics``."""
        status, _headers, payload = self._request(
            "GET", "/metrics?format=prometheus", raw=True)
        if status != 200:
            raise ServiceError(f"metrics failed: HTTP {status}",
                               status=status)
        return payload

    # -- plumbing ------------------------------------------------------

    def _request(self, method: str, path: str, body: Optional[dict] = None,
                 raw: bool = False,
                 extra_headers: Optional[dict] = None,
                 ) -> Tuple[int, dict, object]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            headers = {"X-Client-Id": self.client_id}
            if extra_headers:
                headers.update(extra_headers)
            data = None
            if body is not None:
                data = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                connection.request(method, path, body=data, headers=headers)
                response = connection.getresponse()
                text = response.read().decode("utf-8")
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach service at "
                    f"http://{self.host}:{self.port}: {exc}") from None
            response_headers = {k.lower(): v
                                for k, v in response.getheaders()}
            if raw:
                return response.status, response_headers, text
            try:
                payload = json.loads(text) if text else {}
            except json.JSONDecodeError:
                payload = {"error": text.strip()}
            return response.status, response_headers, payload
        finally:
            connection.close()

    @staticmethod
    def _check(status: int, payload) -> None:
        if 200 <= status < 300:
            return
        message = (payload.get("error", f"HTTP {status}")
                   if isinstance(payload, dict) else f"HTTP {status}")
        raise ServiceError(f"service error: {message}", status=status)

"""Exception hierarchy for the ``repro`` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid machine, cache, workload, or experiment configuration."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state.

    This indicates a bug in the simulator (for example a coherence
    invariant violation), not a user mistake.
    """


class CoherenceError(SimulationError):
    """A cache-coherence invariant was violated."""


class SweepError(ReproError):
    """One or more cells of a sweep failed.

    The executor never aborts a grid on a cell failure; once every cell
    has been attempted, the sweep helpers raise this with the
    per-cell tracebacks in :attr:`failures` (keyed by axis-value
    tuple).
    """

    def __init__(self, failures):
        self.failures = dict(failures)
        cells = ", ".join(repr(key) for key in self.failures)
        first = next(iter(self.failures.values()), "")
        last_line = first.strip().splitlines()[-1] if first else ""
        super().__init__(
            f"{len(self.failures)} sweep cell(s) failed: {cells}"
            + (f" — first error: {last_line}" if last_line else "")
        )


class ServiceError(ReproError):
    """A simulation-service request or job failed.

    Raised by :class:`repro.service.client.ServiceClient` when the
    server rejects a request (with :attr:`status` carrying the HTTP
    status and :attr:`retry_after` the server's back-off hint, when
    given) and by service helpers when a job ends quarantined.
    """

    def __init__(self, message, status=None, retry_after=None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class WorkloadError(ReproError):
    """A workload profile or generator was misused or is inconsistent."""


class CheckpointError(ReproError):
    """A workload checkpoint could not be written or restored."""


class SchedulingError(ReproError):
    """A thread-to-core assignment could not be produced.

    Raised when a scheduling policy cannot place the requested threads on
    the requested machine (for example more runnable threads than cores,
    since the paper's methodology never over-commits the machine).
    """

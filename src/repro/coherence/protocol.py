"""Functional MOESI directory protocol.

:class:`CoherenceController` resolves last-level-cache domain misses:
given ``(block, requesting domain, read/write)`` it decides where the
data comes from (memory, a clean remote cache, or a dirty remote cache),
which remote domains must be invalidated, and updates the directory.
It is purely *functional* — latency composition (hops to the home tile,
directory-cache timing, queueing) lives in the machine model, which
receives everything it needs in the returned :class:`FetchOutcome`.

The clean/dirty distinction matters because the paper's Table II
characterizes workloads by the fraction of misses served by
cache-to-cache transfers and how many of those transfers carry dirty
data; TPC-H's heavy join/merge synchronization makes most of its
transfers dirty, while SPECjbb/SPECweb mostly move read-shared (clean)
lines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..errors import CoherenceError
from .directory import Directory, DirectoryEntry
from .states import DirState

__all__ = ["DataSource", "FetchOutcome", "CoherenceStats", "CoherenceController"]


class DataSource(enum.IntEnum):
    """Where the data for a domain miss comes from."""

    MEMORY = 0
    C2C_CLEAN = 1
    C2C_DIRTY = 2
    NONE = 3  # upgrade: requester already has current data


@dataclass(frozen=True)
class FetchOutcome:
    """Result of resolving one domain-level miss or upgrade.

    Attributes
    ----------
    source:
        Data provenance (memory / clean c2c / dirty c2c / none).
    provider_domain:
        Domain that supplies the data for c2c sources (routing target);
        -1 for memory or upgrades.
    invalidate_domains:
        Remote domains that must drop their copies (write requests).
    fill_dirty:
        Whether the requester's new L2 line starts dirty (it obtained
        ownership of modified data).
    memory_writeback:
        True when the transaction pushes modified data back to memory
        (e.g. a write steals a dirty block: the old owner's data is
        forwarded and memory is also updated, Origin-style).
    """

    source: DataSource
    provider_domain: int = -1
    invalidate_domains: tuple = ()
    fill_dirty: bool = False
    memory_writeback: bool = False


@dataclass
class CoherenceStats:
    """Protocol-level event counters."""

    read_misses: int = 0
    write_misses: int = 0
    upgrades: int = 0
    c2c_clean: int = 0
    c2c_dirty: int = 0
    memory_fetches: int = 0
    invalidations_sent: int = 0
    writebacks: int = 0

    @property
    def c2c_total(self) -> int:
        return self.c2c_clean + self.c2c_dirty

    @property
    def c2c_fraction(self) -> float:
        """Fraction of domain misses served by another on-chip cache."""
        fetches = self.c2c_total + self.memory_fetches
        return self.c2c_total / fetches if fetches else 0.0

    @property
    def dirty_fraction(self) -> float:
        """Fraction of c2c transfers that carried dirty data."""
        return self.c2c_dirty / self.c2c_total if self.c2c_total else 0.0


class CoherenceController:
    """Resolves domain misses against the striped directory."""

    def __init__(self, directory: Directory, num_domains: int):
        if num_domains <= 0:
            raise CoherenceError("need at least one L2 domain")
        self.directory = directory
        self.num_domains = num_domains
        self.stats = CoherenceStats()

    # ------------------------------------------------------------------
    # miss resolution
    # ------------------------------------------------------------------

    def fetch(self, block: int, domain: int, is_write: bool) -> FetchOutcome:
        """Resolve a domain miss (the block is absent from ``domain``)."""
        self._check_domain(domain)
        entry = self.directory.entry(block)
        if entry.is_sharer(domain):
            raise CoherenceError(
                f"domain {domain} missed on block {block:#x} but the "
                f"directory lists it as a sharer ({entry!r}); eviction "
                "notifications are out of sync"
            )
        if is_write:
            return self._fetch_write(block, entry, domain)
        return self._fetch_read(block, entry, domain)

    def upgrade(self, block: int, domain: int) -> FetchOutcome:
        """Resolve a write to a block the domain holds in SHARED state.

        Remote sharers are invalidated; no data moves (the requester's
        copy is current because memory was current).
        """
        self._check_domain(domain)
        entry = self.directory.entry(block)
        if not entry.is_sharer(domain):
            raise CoherenceError(
                f"upgrade on block {block:#x} from non-sharer domain "
                f"{domain} ({entry!r})"
            )
        self.stats.upgrades += 1
        victims = tuple(d for d in entry.sharer_list() if d != domain)
        writeback = False
        if entry.state.has_owner and entry.owner != domain:
            # another domain owns modified data; its copy (and data)
            # must be folded in — rare path, only via OWNED state
            writeback = True
            self.stats.writebacks += 1
        entry.state = DirState.MODIFIED
        entry.owner = domain
        entry.sharers = 1 << domain
        if victims:
            self.stats.invalidations_sent += len(victims)
        return FetchOutcome(
            source=DataSource.NONE,
            invalidate_domains=victims,
            fill_dirty=True,
            memory_writeback=writeback,
        )

    def _fetch_read(self, block: int, entry: DirectoryEntry, domain: int) -> FetchOutcome:
        self.stats.read_misses += 1
        if entry.state == DirState.INVALID:
            self.stats.memory_fetches += 1
            entry.state = DirState.SHARED
            entry.add_sharer(domain)
            return FetchOutcome(source=DataSource.MEMORY)
        if entry.state == DirState.SHARED:
            self.stats.c2c_clean += 1
            provider = self._closest_sharer(entry, domain)
            entry.add_sharer(domain)
            return FetchOutcome(source=DataSource.C2C_CLEAN, provider_domain=provider)
        # MODIFIED or OWNED: owner forwards dirty data, retains ownership
        owner = entry.owner
        if owner == domain:
            raise CoherenceError(
                f"domain {domain} missed on block {block:#x} it owns"
            )
        self.stats.c2c_dirty += 1
        entry.state = DirState.OWNED
        entry.add_sharer(domain)
        return FetchOutcome(source=DataSource.C2C_DIRTY, provider_domain=owner)

    def _fetch_write(self, block: int, entry: DirectoryEntry, domain: int) -> FetchOutcome:
        self.stats.write_misses += 1
        if entry.state == DirState.INVALID:
            self.stats.memory_fetches += 1
            entry.state = DirState.MODIFIED
            entry.owner = domain
            entry.sharers = 1 << domain
            return FetchOutcome(source=DataSource.MEMORY, fill_dirty=True)
        if entry.state == DirState.SHARED:
            victims = tuple(entry.sharer_list())
            self.stats.c2c_clean += 1
            self.stats.invalidations_sent += len(victims)
            provider = self._closest_sharer(entry, domain)
            entry.state = DirState.MODIFIED
            entry.owner = domain
            entry.sharers = 1 << domain
            return FetchOutcome(
                source=DataSource.C2C_CLEAN,
                provider_domain=provider,
                invalidate_domains=victims,
                fill_dirty=True,
            )
        # MODIFIED or OWNED: steal ownership, invalidate everyone else
        owner = entry.owner
        victims = tuple(d for d in entry.sharer_list() if d != domain)
        self.stats.c2c_dirty += 1
        self.stats.invalidations_sent += len(victims)
        entry.state = DirState.MODIFIED
        entry.owner = domain
        entry.sharers = 1 << domain
        return FetchOutcome(
            source=DataSource.C2C_DIRTY,
            provider_domain=owner,
            invalidate_domains=victims,
            fill_dirty=True,
        )

    # ------------------------------------------------------------------
    # eviction notifications (keep directory exact)
    # ------------------------------------------------------------------

    def domain_evicted(self, block: int, domain: int, was_dirty: bool) -> None:
        """A domain dropped its copy (capacity eviction or back-inval)."""
        self._check_domain(domain)
        entry = self.directory.peek(block)
        if entry is None or not entry.is_sharer(domain):
            # Invalidation initiated by the directory itself: the
            # sharer bit is already gone. Nothing to do.
            return
        entry.drop_sharer(domain)
        if entry.owner == domain:
            entry.owner = -1
            if was_dirty:
                self.stats.writebacks += 1
            entry.state = DirState.SHARED if entry.sharers else DirState.INVALID
        elif not entry.sharers:
            entry.state = DirState.INVALID
        if entry.state == DirState.INVALID:
            self.directory.forget(block)

    # ------------------------------------------------------------------

    def _closest_sharer(self, entry: DirectoryEntry, domain: int) -> int:
        """Pick the providing sharer.

        The machine model refines the routing distance; functionally we
        return the owner if there is one (Origin forwards from the
        owner) else the lowest-numbered sharer, which is deterministic.
        """
        if entry.state.has_owner and entry.owner != domain:
            return entry.owner
        for d in entry.sharer_list():
            if d != domain:
                return d
        raise CoherenceError("SHARED entry has no sharer other than requester")

    def _check_domain(self, domain: int) -> None:
        if not (0 <= domain < self.num_domains):
            raise CoherenceError(
                f"domain id {domain} out of range [0, {self.num_domains})"
            )

    # ------------------------------------------------------------------

    def check_invariants(self, resident: Optional[List[set]] = None) -> None:
        """Validate directory invariants; raise :class:`CoherenceError`.

        Parameters
        ----------
        resident:
            Optional list (indexed by domain) of block sets actually
            resident in each L2 domain; when given, the directory's
            sharer bits are cross-checked against reality.
        """
        for block, entry in list(self.directory._entries.items()):
            state = entry.state
            if state == DirState.INVALID:
                if entry.sharers or entry.owner != -1:
                    raise CoherenceError(f"INVALID entry with residue: {entry!r}")
            elif state == DirState.SHARED:
                if entry.owner != -1:
                    raise CoherenceError(f"SHARED entry with owner: {entry!r}")
                if not entry.sharers:
                    raise CoherenceError(f"SHARED entry with no sharers: {entry!r}")
            elif state in (DirState.MODIFIED, DirState.OWNED):
                if entry.owner == -1:
                    raise CoherenceError(f"{state.name} entry without owner: {entry!r}")
                if not entry.is_sharer(entry.owner):
                    raise CoherenceError(
                        f"{state.name} owner not in sharer set: {entry!r}"
                    )
                if state == DirState.MODIFIED and entry.num_sharers != 1:
                    raise CoherenceError(
                        f"MODIFIED entry with multiple sharers: {entry!r}"
                    )
            if resident is not None:
                for d in entry.sharer_list():
                    if block not in resident[d]:
                        raise CoherenceError(
                            f"directory lists domain {d} for block {block:#x} "
                            "but the domain does not hold it"
                        )

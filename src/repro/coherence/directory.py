"""Striped directory with per-tile directory caches.

Following the paper's methodology (Section IV-A), directory entries are
striped across the 16 tiles by physical address — the *home tile* of
block ``b`` is ``b mod num_tiles`` — and each tile has a directory
cache so most directory lookups avoid an off-chip access for the entry.

The full directory state (the backing store, conceptually in memory) is
a dict and is always exact; the directory cache affects *timing only*:
a lookup that misses the home tile's directory cache pays a memory
access to fetch the entry.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..caches.geometry import CacheGeometry
from ..caches.setassoc import SetAssocCache
from .states import DirState

__all__ = ["DirectoryEntry", "DirectoryCache", "Directory"]


class DirectoryEntry:
    """Global coherence state of one block.

    ``sharers`` is a bitmask over L2 *domain* ids; ``owner`` is a domain
    id or -1.  See :class:`repro.coherence.states.DirState`.
    """

    __slots__ = ("state", "owner", "sharers")

    def __init__(self) -> None:
        self.state = DirState.INVALID
        self.owner = -1
        self.sharers = 0

    def add_sharer(self, domain: int) -> None:
        self.sharers |= 1 << domain

    def drop_sharer(self, domain: int) -> None:
        self.sharers &= ~(1 << domain)

    def is_sharer(self, domain: int) -> bool:
        return bool(self.sharers & (1 << domain))

    def sharer_list(self) -> List[int]:
        mask, out, idx = self.sharers, [], 0
        while mask:
            if mask & 1:
                out.append(idx)
            mask >>= 1
            idx += 1
        return out

    @property
    def num_sharers(self) -> int:
        return bin(self.sharers).count("1")

    def __repr__(self) -> str:
        return (
            f"DirectoryEntry(state={self.state.name}, owner={self.owner}, "
            f"sharers={self.sharer_list()})"
        )


class _DirTag:
    """Presence-only line object for directory caches."""

    __slots__ = ()
    dirty = False


_DIR_TAG = _DirTag()


class DirectoryCache:
    """Timing filter over the directory backing store at one tile.

    ``access(block)`` returns True on a hit.  Misses install the entry
    (the caller pays the memory-latency penalty for the fetch).
    """

    #: default: 16K entries, 8-way — generous, as in the paper's setup
    #: where directory caches exist precisely to keep lookups on chip.
    DEFAULT_ENTRIES = 16 * 1024

    def __init__(self, tile_id: int, entries: int = DEFAULT_ENTRIES, assoc: int = 8):
        geometry = CacheGeometry(
            size_bytes=entries * 64, assoc=assoc, latency=0, block_bytes=64
        )
        self._cache = SetAssocCache(geometry, name=f"tile{tile_id}/dircache")

    def access(self, block: int) -> bool:
        hit = self._cache.lookup(block) is not None
        if not hit:
            self._cache.insert(block, _DIR_TAG)
        return hit

    @property
    def hits(self) -> int:
        return self._cache.stats.hits

    @property
    def misses(self) -> int:
        return self._cache.stats.misses

    @property
    def hit_rate(self) -> float:
        return self._cache.stats.hit_rate


class Directory:
    """Exact global directory striped over ``num_tiles`` home tiles."""

    def __init__(self, num_tiles: int, dir_cache_entries: int = DirectoryCache.DEFAULT_ENTRIES):
        if num_tiles <= 0:
            raise ValueError("num_tiles must be positive")
        self.num_tiles = num_tiles
        self._entries: Dict[int, DirectoryEntry] = {}
        self.caches = [
            DirectoryCache(tile, entries=dir_cache_entries) for tile in range(num_tiles)
        ]

    def home_tile(self, block: int) -> int:
        """Home tile of a block (striped by physical address)."""
        return block % self.num_tiles

    def entry(self, block: int) -> DirectoryEntry:
        """The (always exact) directory entry, created on demand."""
        entry = self._entries.get(block)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[block] = entry
        return entry

    def peek(self, block: int) -> Optional[DirectoryEntry]:
        return self._entries.get(block)

    def cache_access(self, block: int) -> bool:
        """Directory-cache lookup at the home tile; True on hit."""
        return self.caches[self.home_tile(block)].access(block)

    def forget(self, block: int) -> None:
        """Drop an INVALID entry to bound memory use."""
        entry = self._entries.get(block)
        if entry is not None and entry.state == DirState.INVALID:
            del self._entries[block]

    def __len__(self) -> int:
        return len(self._entries)

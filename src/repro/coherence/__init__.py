"""Directory coherence substrate (SGI-Origin-style, MOESI states)."""

from .directory import Directory, DirectoryCache, DirectoryEntry
from .protocol import CoherenceController, CoherenceStats, DataSource, FetchOutcome
from .states import DirState

__all__ = [
    "Directory",
    "DirectoryCache",
    "DirectoryEntry",
    "CoherenceController",
    "CoherenceStats",
    "DataSource",
    "FetchOutcome",
    "DirState",
]

"""Directory coherence states.

The protocol is a MOESI-style directory in the spirit of the SGI Origin
protocol the paper simulates [Laudon & Lenoski, ISCA '97]: directory
entries record, per block, which L2 *domains* hold copies and which (if
any) owns the block with modified data.  Domains — not individual cores
— are the coherence unit across the chip because each L2 partition is
inclusive of its member cores' private caches; within a domain,
ownership is tracked by :class:`repro.caches.line.L2Line`.
"""

from __future__ import annotations

import enum

__all__ = ["DirState"]


class DirState(enum.IntEnum):
    """Global state of a block at the directory.

    INVALID
        No on-chip copy; memory is the only source.
    SHARED
        One or more domains hold clean copies; memory is up to date.
    OWNED
        One domain owns modified data *and* other domains hold shared
        copies (the owner supplies data on misses — clean c2c for the
        requester, but memory is stale).
    MODIFIED
        Exactly one domain holds the block, modified.
    """

    INVALID = 0
    SHARED = 1
    OWNED = 2
    MODIFIED = 3

    @property
    def has_owner(self) -> bool:
        return self in (DirState.OWNED, DirState.MODIFIED)

"""Epoch-boundary scheduler actuation inside the simulation engines.

A :class:`SchedHook` drives one :class:`~repro.sched.policies.Scheduler`
with the engines' epoch-gated control cadence (the same ``next_due`` /
``on_step`` protocol as :class:`~repro.qos.hook.QosHook`): every
``epoch`` simulated cycles it closes a sensing window through its
:class:`~repro.sched.signals.SchedSensor`, asks the policy for a
:class:`~repro.sched.policies.SchedDecision`, and actuates it:

* on the single-slot reference engine, through
  :meth:`~repro.sim.engine.Engine.apply_migrations` — an atomic
  permutation rebind that charges each moved thread the
  ``migration_penalty``;
* on the over-commit engine, through
  :meth:`~repro.sim.overcommit.OvercommitEngine.rebind_thread` — the
  same run-queue actuator the QoS layer uses, which charges the
  engine's context-switch penalty when a migrated thread wakes an
  idle core.

Either way the hypervisor's binding bookkeeping
(:meth:`~repro.vm.hypervisor.Hypervisor.rebind_thread`) keeps VM/core
attribution consistent.  Counters (``sched.control_epochs``,
``sched.migrations``, ``sched.proposed``, ``sched.refused``) and a
``sched.migrate`` instant event per actuated epoch land in the run's
telemetry hub, so migrations show up in distributed traces; with the
default null hub they cost nothing.

Because a scheduler can rebind threads, any spec naming one pins the
reference engine (``pins_reference``) — the batched kernel folds per
thread and cannot re-home threads mid-run.  :class:`CompositeControl`
lets a :class:`SchedHook` and a :class:`~repro.qos.hook.QosHook` share
an engine's single control slot, each keeping its own epoch.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ConfigurationError
from ..obs.trace import TraceEvent
from .policies import Scheduler, SchedView
from .signals import SchedSensor

__all__ = ["SchedHook", "CompositeControl"]


class SchedHook:
    """Drives one scheduling policy at a fixed control epoch.

    Parameters
    ----------
    chip:
        The machine; contention signals are read from its inspection
        methods and the core->domain map is taken once at attach.
    threads:
        The engine's thread contexts (sensing is read-only; actuation
        goes through the engine and hypervisor).
    policy:
        An *attached-by-us* scheduler: the hook builds the
        :class:`~repro.sched.policies.SchedView` and calls
        ``policy.attach`` itself.
    epoch:
        Control period in simulated cycles.
    hypervisor:
        Needed for binding bookkeeping whenever migrations may happen.
    migration_penalty:
        Cycles charged to each thread moved on the single-slot engine
        (the over-commit engine charges its own switch penalty).
    slots_per_core, rng:
        Forwarded into the policy's view.
    """

    #: a scheduler may rebind threads: the engine factory must never
    #: resolve such a run to the batched kernel
    pins_reference = True

    def __init__(self, chip, threads, policy: Scheduler, epoch: int,
                 telemetry=None, hypervisor=None,
                 migration_penalty: int = 1_000,
                 slots_per_core: int = 1, rng=None):
        if epoch <= 0:
            raise ConfigurationError("sched epoch must be positive")
        if migration_penalty < 0:
            raise ConfigurationError(
                "migration penalty must be non-negative")
        if telemetry is None:
            from ..obs.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self.chip = chip
        self.threads = list(threads)
        self.policy = policy
        self.epoch = epoch
        self.telemetry = telemetry
        # register outcome counters up front so even a run that never
        # migrates exports them at zero
        for name in ("sched.control_epochs", "sched.proposed",
                     "sched.migrations", "sched.refused"):
            telemetry.counter(name)
        self.hypervisor = hypervisor
        self.migration_penalty = migration_penalty
        self.next_due = epoch
        self.control_epochs = 0
        self.migrations = 0
        self.proposed = 0
        self.refused = 0
        self._actuator = None

        self.sensor = SchedSensor(chip, self.threads)
        config = getattr(chip, "config", None)
        num_cores = (config.num_cores if config is not None
                     else 1 + max(t.core_id for t in self.threads))
        inverse = getattr(chip, "inverse_core_speeds", None)
        policy.attach(SchedView(
            num_cores=num_cores,
            slots_per_core=slots_per_core,
            domain_of_core=self.sensor.domain_of_core,
            inverse_speeds=inverse,
            rng=rng,
        ))

    # -- wiring ---------------------------------------------------------

    def bind_actuator(self, engine) -> None:
        """Give the hook the engine's migration actuator.

        Either surface works: ``apply_migrations`` (single-slot
        reference engine) or ``rebind_thread`` (over-commit run
        queues); both expose ``run_queues()`` for sensing.
        """
        self._actuator = engine

    # -- engine hooks ---------------------------------------------------

    def on_step(self, now: int) -> None:
        """Called once per engine step with the current issue time."""
        if now >= self.next_due:
            self.control(now)
            # re-arm relative to the actual control instant (see the
            # QosHook for why snapping back to the grid would bias the
            # sensing windows)
            self.next_due = now + self.epoch

    def finish(self, final_time: int) -> None:
        self.telemetry.gauge("sched.control_epochs").set(
            float(self.control_epochs))
        self.telemetry.gauge("sched.migrations").set(float(self.migrations))

    # -- the control loop -----------------------------------------------

    def control(self, now: int) -> None:
        """Run one sense → decide → actuate cycle."""
        self.control_epochs += 1
        telemetry = self.telemetry
        telemetry.counter("sched.control_epochs").inc()
        queues = None
        if self._actuator is not None:
            queues = self._actuator.run_queues()
        window = self.sensor.window(now, queues=queues)
        decision = self.policy.decide(window)
        if not decision.migrations or self._actuator is None:
            return

        self.proposed += len(decision.migrations)
        telemetry.counter("sched.proposed").inc(len(decision.migrations))
        applied = self._actuate(decision.migrations, now)
        if applied:
            self.migrations += applied
            telemetry.counter("sched.migrations").inc(applied)
            if telemetry.enabled:
                telemetry.series_for("sched.migrations").append(
                    now, float(self.migrations))
                telemetry.emit(TraceEvent(
                    name="sched.migrate", cat="sched", ph="i", ts=now,
                    args={"policy": self.policy.name, "moves": applied},
                ))

    def _actuate(self, moves: Dict[int, int], now: int) -> int:
        actuator = self._actuator
        if hasattr(actuator, "apply_migrations"):
            return self._actuate_single_slot(actuator, moves, now)
        return self._actuate_overcommit(actuator, moves, now)

    def _actuate_single_slot(self, engine, moves: Dict[int, int],
                             now: int) -> int:
        previous = {
            tid: thread.core_id
            for tid, thread in ((t.thread_id, t) for t in self.threads)
            if tid in moves
        }
        applied = engine.apply_migrations(
            moves, now, penalty=self.migration_penalty)
        if not applied:
            self.refused += len(moves)
            self.telemetry.counter("sched.refused").inc(len(moves))
            return 0
        if self.hypervisor is not None:
            for tid in sorted(moves):
                thread = self._thread_by_id(tid)
                if thread is None or thread.core_id == previous.get(tid):
                    continue  # skipped by the engine (no-op move)
                self.hypervisor.rebind_thread(
                    thread, thread.core_id,
                    previous=previous.get(tid, -1), bind_core=True)
        return applied

    def _actuate_overcommit(self, engine, moves: Dict[int, int],
                            now: int) -> int:
        applied = 0
        for tid in sorted(moves):
            core = moves[tid]
            thread = self._thread_by_id(tid)
            if thread is None:
                continue
            previous = thread.core_id
            became_head = engine.rebind_thread(tid, core, now)
            if became_head is None:
                # refused: unknown, a no-op, or currently running
                self.refused += 1
                self.telemetry.counter("sched.refused").inc()
                continue
            if self.hypervisor is not None:
                self.hypervisor.rebind_thread(
                    thread, core, previous=previous,
                    bind_core=became_head)
            applied += 1
        return applied

    def _thread_by_id(self, tid: int):
        for thread in self.threads:
            if thread.thread_id == tid:
                return thread
        return None

    # -- reporting ------------------------------------------------------

    def summary(self) -> dict:
        """JSON-friendly account of what the scheduler did."""
        return {
            "policy": self.policy.name,
            "epoch": self.epoch,
            "control_epochs": self.control_epochs,
            "migrations": self.migrations,
            "proposed": self.proposed,
            "refused": self.refused,
            "final_binding": {
                str(t.thread_id): t.core_id
                for t in sorted(self.threads, key=lambda t: t.thread_id)
            },
        }


class CompositeControl:
    """Multiplexes several epoch hooks onto an engine's control slot.

    The engines drive exactly one control object through the
    ``next_due`` / ``on_step(now)`` / ``finish`` protocol; this
    adapter fans that out to children with independent epochs.
    ``next_due`` is always the earliest child deadline, and
    :meth:`on_step` dispatches only to children that are actually due
    — each keeps its own sensing cadence.  Children are dispatched in
    construction order, so placing a :class:`~repro.qos.hook.QosHook`
    before a :class:`SchedHook` lets quota decisions land before the
    same epoch's migrations.
    """

    def __init__(self, children):
        self.children = list(children)
        if not self.children:
            raise ConfigurationError(
                "CompositeControl needs at least one child hook")
        #: the composite pins the reference engine iff any child does
        self.pins_reference = any(
            getattr(child, "pins_reference", False)
            for child in self.children
        )

    @property
    def next_due(self) -> int:
        return min(child.next_due for child in self.children)

    def on_step(self, now: int) -> None:
        for child in self.children:
            if now >= child.next_due:
                child.on_step(now)

    def bind_actuator(self, engine) -> None:
        for child in self.children:
            bind = getattr(child, "bind_actuator", None)
            if bind is not None:
                bind(engine)

    def finish(self, final_time: int) -> None:
        for child in self.children:
            child.finish(final_time)

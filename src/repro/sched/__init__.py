"""Adaptive, contention-aware scheduling on top of the paper's model.

The paper fixes thread placement at launch (its four static policies)
and measures the consolidation interference that results.  This
package closes the loop: per-epoch contention sensing
(:mod:`repro.sched.signals`), a registry of scheduling policies from
the do-nothing static baseline to contention-aware migration,
adaptive over-commit allocation, and heterogeneity-aware placement
(:mod:`repro.sched.policies`), and the engine-side actuation hook
that applies migrations with an explicit cost charge
(:mod:`repro.sched.hook`).

Select a policy per experiment with ``ExperimentSpec.sched_policy`` /
``sched_epoch``; compare policies with the ``repro sched`` CLI
command backed by :mod:`repro.analysis.sched_report`.  See
``docs/scheduling.md`` for the model.
"""

from .hook import CompositeControl, SchedHook
from .policies import (
    SCHED_POLICIES,
    SCHED_POLICY_NAMES,
    AdaptiveAllocation,
    ContentionAwareMigration,
    HeteroAware,
    SchedDecision,
    Scheduler,
    SchedView,
    StaticPlacement,
    make_sched_policy,
)
from .signals import SchedSensor, SchedWindow, ThreadDelta, ThreadDeltaTracker

__all__ = [
    "CompositeControl",
    "SchedHook",
    "SCHED_POLICIES",
    "SCHED_POLICY_NAMES",
    "AdaptiveAllocation",
    "ContentionAwareMigration",
    "HeteroAware",
    "SchedDecision",
    "Scheduler",
    "SchedView",
    "StaticPlacement",
    "make_sched_policy",
    "SchedSensor",
    "SchedWindow",
    "ThreadDelta",
    "ThreadDeltaTracker",
]

"""Scheduling policies: static baseline and three adaptive schedulers.

The paper evaluates four *static* thread-to-core assignment policies
(Section V); this module adds the dynamic layer its Section VII
interference findings motivate.  A :class:`Scheduler` is consulted at
every control epoch with a :class:`~repro.sched.signals.SchedWindow`
and answers with a :class:`SchedDecision` — a (possibly empty) set of
thread migrations.  Policies only *propose*; the
:class:`~repro.sched.hook.SchedHook` validates and actuates through
the engine, charging the migration cost.

Four policies ship in the registry:

``static``
    The do-nothing baseline: initial placement comes from the paper's
    policy named in ``ExperimentSpec.policy``, and no thread ever
    moves.  Byte-identical to a run without a scheduler.
``contention``
    :class:`ContentionAwareMigration` — move the most cache-starved
    thread off the most contended L2 domain, with hysteresis and a
    per-thread cooldown so placements settle instead of oscillating.
``adaptive``
    :class:`AdaptiveAllocation` — feedback vCPU↔core allocation under
    over-commit (in the spirit of arXiv 2310.14741): waiting threads
    drain from long run queues onto idle or lightly-loaded cores,
    fastest cores first.
``hetero``
    :class:`HeteroAware` — on machines with per-core speed classes,
    keep the most miss-latency-bound threads (the stragglers that
    gate their VM's completion) on the fastest cores.

All policies are deterministic: rankings break ties on thread/core
ids, so a fixed spec and seed reproduce the same migration history.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from .signals import SchedWindow, ThreadDelta

__all__ = [
    "SchedDecision",
    "SchedView",
    "Scheduler",
    "StaticPlacement",
    "ContentionAwareMigration",
    "AdaptiveAllocation",
    "HeteroAware",
    "SCHED_POLICIES",
    "SCHED_POLICY_NAMES",
    "make_sched_policy",
]


class SchedDecision:
    """What a policy wants done at one control epoch."""

    __slots__ = ("migrations",)

    def __init__(self, migrations: Optional[Dict[int, int]] = None):
        #: thread id -> destination core (swaps name both parties)
        self.migrations: Dict[int, int] = dict(migrations or {})

    def __bool__(self) -> bool:
        return bool(self.migrations)


class SchedView:
    """Static machine facts a policy may consult (set once at attach)."""

    __slots__ = ("num_cores", "slots_per_core", "domain_of_core",
                 "inverse_speeds", "rng")

    def __init__(self, num_cores: int, slots_per_core: int = 1,
                 domain_of_core: Optional[List[int]] = None,
                 inverse_speeds: Optional[Tuple[float, ...]] = None,
                 rng=None):
        self.num_cores = num_cores
        self.slots_per_core = slots_per_core
        self.domain_of_core = domain_of_core
        #: per-core think multipliers (1/speed), or ``None`` when the
        #: machine is homogeneous
        self.inverse_speeds = inverse_speeds
        #: seeded stream for stochastic policies; the shipped policies
        #: are deterministic and leave it untouched
        self.rng = rng

    def core_speed(self, core: int) -> float:
        if self.inverse_speeds is None:
            return 1.0
        return 1.0 / self.inverse_speeds[core]


class Scheduler:
    """Interface every scheduling policy implements."""

    name = "?"

    def __init__(self) -> None:
        self.view: Optional[SchedView] = None

    def attach(self, view: SchedView) -> None:
        self.view = view

    def decide(self, window: SchedWindow) -> SchedDecision:
        raise NotImplementedError


class StaticPlacement(Scheduler):
    """The paper's static placement, wrapped as a (no-op) scheduler."""

    name = "static"

    def decide(self, window: SchedWindow) -> SchedDecision:
        return SchedDecision()


def _occupied_cores(window: SchedWindow) -> Dict[int, List[int]]:
    """Core -> resident thread ids, preferring the live run queues."""
    if window.queues is not None:
        return {core: list(q) for core, q in window.queues.items() if q}
    occupied: Dict[int, List[int]] = {}
    for delta in window.threads.values():
        occupied.setdefault(delta.core_id, []).append(delta.thread_id)
    return occupied


class ContentionAwareMigration(Scheduler):
    """Migrate the most cache-starved thread off the hottest L2 domain.

    Each epoch the policy ranks domains by
    :meth:`~repro.sched.signals.SchedWindow.domain_pressure` and, when
    the hottest exceeds the coolest by the ``hysteresis`` margin,
    moves the hottest domain's most cache-starved thread (highest L2
    miss rate in the window) toward the coolest domain: onto an idle
    core when one exists, otherwise by swapping with that domain's
    least cache-needy thread.  A per-thread ``cooldown`` (in epochs)
    stops placements from oscillating, and the hook charges every move
    a migration cost — the policy must win back more than it spends.
    """

    name = "contention"

    def __init__(self, hysteresis: float = 0.25, cooldown: int = 3):
        super().__init__()
        if hysteresis < 0:
            raise ConfigurationError("hysteresis must be non-negative")
        if cooldown < 0:
            raise ConfigurationError("cooldown must be non-negative")
        self.hysteresis = hysteresis
        self.cooldown = cooldown
        self._epoch = 0
        self._last_moved: Dict[int, int] = {}

    def _cooled(self, tid: int) -> bool:
        last = self._last_moved.get(tid)
        return last is None or self._epoch - last > self.cooldown

    def decide(self, window: SchedWindow) -> SchedDecision:
        self._epoch += 1
        mapping = window.domain_of_core
        if mapping is None:
            return SchedDecision()
        domains = sorted(set(mapping))
        if len(domains) < 2:
            return SchedDecision()

        pressure = {d: window.domain_pressure(d) for d in domains}
        hot = max(domains, key=lambda d: (pressure[d], -d))
        cool = min(domains, key=lambda d: (pressure[d], d))
        if hot == cool:
            return SchedDecision()
        if pressure[hot] <= pressure[cool] * (1.0 + self.hysteresis):
            return SchedDecision()

        waiting = None
        if (self.view is not None and self.view.slots_per_core > 1
                and window.queues is not None):
            # over-commit: only waiting threads can move
            waiting = {tid for q in window.queues.values()
                       for tid in q[1:]}
        victims = [d for d in window.threads_on_domain(hot)
                   if d.refs and self._cooled(d.thread_id)
                   and (waiting is None or d.thread_id in waiting)]
        if not victims:
            return SchedDecision()
        victim = max(victims,
                     key=lambda d: (d.miss_rate, d.stall_per_ref,
                                    -d.thread_id))

        occupied = _occupied_cores(window)
        cool_cores = sorted(c for c in range(len(mapping))
                            if mapping[c] == cool)
        idle = [c for c in cool_cores if not occupied.get(c)]
        moves: Dict[int, int] = {}
        overcommitted = self.view is not None and self.view.slots_per_core > 1
        if idle:
            moves[victim.thread_id] = idle[0]
        elif overcommitted:
            # over-commit: join the shortest run queue on the cool
            # domain (the engine refuses moves of running threads)
            target = min(cool_cores,
                         key=lambda c: (len(occupied.get(c, [])), c))
            moves[victim.thread_id] = target
        else:
            # single-slot, fully packed chip: swap with the cool
            # domain's least cache-needy thread
            partners = [d for d in window.threads_on_domain(cool)
                        if self._cooled(d.thread_id)
                        and d.thread_id != victim.thread_id]
            if not partners:
                return SchedDecision()
            partner = min(partners,
                          key=lambda d: (d.miss_rate, d.stall_per_ref,
                                         d.thread_id))
            if partner.miss_rate >= victim.miss_rate:
                return SchedDecision()
            moves[victim.thread_id] = partner.core_id
            moves[partner.thread_id] = victim.core_id

        for tid in moves:
            self._last_moved[tid] = self._epoch
        return SchedDecision(moves)


class AdaptiveAllocation(Scheduler):
    """Feedback vCPU↔core allocation under over-commit.

    Static placements can stack several threads on one core while
    other cores idle (the expanded-placement packing the over-commit
    scheduler produces).  Each epoch this policy compares run-queue
    lengths and drains *waiting* threads from the longest queues onto
    the shortest ones — preferring fast cores on heterogeneous chips —
    whenever the imbalance is at least ``imbalance`` threads.  Once
    queues are level the policy goes quiet: the allocation has
    converged, and the hysteresis keeps it there.

    Without an over-commit actuator (single-slot runs) every queue
    holds one thread and the policy is a no-op by construction.
    """

    name = "adaptive"

    def __init__(self, imbalance: int = 2, max_moves: Optional[int] = None):
        super().__init__()
        if imbalance < 1:
            raise ConfigurationError("imbalance must be >= 1")
        self.imbalance = imbalance
        self.max_moves = max_moves

    def decide(self, window: SchedWindow) -> SchedDecision:
        if window.queues is None or self.view is None:
            return SchedDecision()
        load: Dict[int, List[int]] = {
            core: list(window.queues.get(core, []))
            for core in range(self.view.num_cores)
        }

        def speed(core: int) -> float:
            return self.view.core_speed(core)

        moves: Dict[int, int] = {}
        budget = (self.max_moves if self.max_moves is not None
                  else self.view.num_cores)
        while len(moves) < budget:
            busiest = max(sorted(load), key=lambda c: len(load[c]))
            # fastest idle core first, then shortest queue
            idlest = min(sorted(load),
                         key=lambda c: (len(load[c]), -speed(c), c))
            if len(load[busiest]) - len(load[idlest]) < self.imbalance:
                break
            # move from the tail: the head is the running thread
            tid = load[busiest].pop()
            load[idlest].append(tid)
            moves[tid] = idlest
        return SchedDecision(moves)


class HeteroAware(Scheduler):
    """Keep miss-latency-bound stragglers on the fastest cores.

    On a chip with per-core speed classes, whichever thread finishes
    its measured window last gates its VM's completion.  Each epoch
    this policy ranks active threads by their per-reference cost in
    the window (stall + compute cycles: the threads furthest behind)
    and repairs the worst "inversion" — a costly thread on a slow core
    while a cheap thread holds a fast one — by swapping the pair, or
    by moving the costly thread to an idle faster core.  The ``margin``
    hysteresis ignores inversions too small to win back the migration
    charge.  On homogeneous machines the policy is a no-op.
    """

    name = "hetero"

    def __init__(self, margin: float = 0.15, cooldown: int = 3):
        super().__init__()
        if margin < 0:
            raise ConfigurationError("margin must be non-negative")
        if cooldown < 0:
            raise ConfigurationError("cooldown must be non-negative")
        self.margin = margin
        self.cooldown = cooldown
        self._epoch = 0
        self._last_moved: Dict[int, int] = {}

    def _cooled(self, tid: int) -> bool:
        last = self._last_moved.get(tid)
        return last is None or self._epoch - last > self.cooldown

    @staticmethod
    def _cost(delta: ThreadDelta) -> float:
        return delta.stall_per_ref + delta.think_per_ref

    def decide(self, window: SchedWindow) -> SchedDecision:
        self._epoch += 1
        view = self.view
        if view is None or view.inverse_speeds is None:
            return SchedDecision()
        waiting = None
        if view.slots_per_core > 1 and window.queues is not None:
            # over-commit: only waiting threads can move
            waiting = {tid for q in window.queues.values()
                       for tid in q[1:]}
        active = [d for d in window.threads.values()
                  if d.refs and self._cooled(d.thread_id)
                  and (waiting is None or d.thread_id in waiting)]
        if not active:
            return SchedDecision()

        costly = max(active, key=lambda d: (self._cost(d), -d.thread_id))
        my_speed = view.core_speed(costly.core_id)
        occupied = _occupied_cores(window)
        idle_faster = [c for c in range(view.num_cores)
                       if not occupied.get(c)
                       and view.core_speed(c) > my_speed]
        if idle_faster:
            target = max(idle_faster,
                         key=lambda c: (view.core_speed(c), -c))
            self._last_moved[costly.thread_id] = self._epoch
            return SchedDecision({costly.thread_id: target})

        if view.slots_per_core > 1:
            # over-commit, no idle fast core: nothing cheap to do
            return SchedDecision()

        # single-slot swap with the cheapest thread on a faster core
        partners = [d for d in active
                    if view.core_speed(d.core_id)
                    > my_speed * (1.0 + self.margin)]
        if not partners:
            return SchedDecision()
        partner = min(partners,
                      key=lambda d: (self._cost(d), d.thread_id))
        if self._cost(partner) * (1.0 + self.margin) >= self._cost(costly):
            return SchedDecision()
        moves = {costly.thread_id: partner.core_id,
                 partner.thread_id: costly.core_id}
        for tid in moves:
            self._last_moved[tid] = self._epoch
        return SchedDecision(moves)


SCHED_POLICIES: Dict[str, Callable[[], Scheduler]] = {
    StaticPlacement.name: StaticPlacement,
    ContentionAwareMigration.name: ContentionAwareMigration,
    AdaptiveAllocation.name: AdaptiveAllocation,
    HeteroAware.name: HeteroAware,
}
"""Scheduler registry addressable from specs and the CLI."""

_ALIASES = {
    "static-placement": "static",
    "contention-aware": "contention",
    "contention-aware-migration": "contention",
    "adaptive-allocation": "adaptive",
    "hetero-aware": "hetero",
    "heterogeneous": "hetero",
}

SCHED_POLICY_NAMES: Tuple[str, ...] = tuple(sorted(SCHED_POLICIES))


def make_sched_policy(name: str) -> Scheduler:
    """Instantiate a scheduling policy by (possibly aliased) name."""
    normalized = name.strip().lower().replace("_", "-")
    normalized = _ALIASES.get(normalized, normalized)
    try:
        factory = SCHED_POLICIES[normalized]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduling policy {name!r}; choose from "
            f"{', '.join(SCHED_POLICY_NAMES)}"
        ) from None
    return factory()

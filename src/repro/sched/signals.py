"""Contention signals for the adaptive scheduling layer.

The scheduling subsystem senses the machine the same way the QoS and
observability layers do — by differencing the cumulative, read-only
counters the engine maintains anyway (see
:class:`~repro.obs.probes.VmDeltaTracker`) and pulling queue-depth /
occupancy snapshots through the chip's inspection methods.  What it
adds is *per-thread* resolution: migration decisions need to know
which thread on a contended L2 domain is starving, not just which VM.

:class:`SchedSensor` folds three signal families into one
:class:`SchedWindow` per control epoch:

* per-thread deltas (:class:`ThreadDelta`) — references, L1/L2
  misses, miss-latency cycles, and think cycles inside the window;
* per-VM deltas — the same :class:`~repro.obs.probes.VmDelta` records
  the QoS controllers consume, for VM-level fairness signals;
* chip pressure — per-domain L2 bank backlog
  (:meth:`~repro.machine.chip.Chip.l2_domain_queue_depths`) and, when
  an engine actuator is attached, the live per-core run queues.

Everything here is strictly read-only with respect to the machine;
sensing cannot perturb timing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..obs.probes import VmDelta, VmDeltaTracker

__all__ = ["ThreadDelta", "ThreadDeltaTracker", "SchedWindow", "SchedSensor"]


class ThreadDelta:
    """One thread's activity inside a sensing window.

    Counts are deltas over the window except ``issued`` (cumulative
    references issued, warm-up included — the progress signal).  Stats
    deltas cover the thread's *measured* window only, so a thread in
    warm-up or past completion shows zero ``refs``; policies treat
    those threads as having no contention signal.
    """

    __slots__ = ("thread_id", "vm_id", "core_id", "refs", "l1_misses",
                 "l2_misses", "miss_latency_cycles", "think_cycles",
                 "issued")

    def __init__(self, thread_id: int, vm_id: int, core_id: int,
                 refs: int, l1_misses: int, l2_misses: int,
                 miss_latency_cycles: int, think_cycles: int,
                 issued: int):
        self.thread_id = thread_id
        self.vm_id = vm_id
        self.core_id = core_id
        self.refs = refs
        self.l1_misses = l1_misses
        self.l2_misses = l2_misses
        self.miss_latency_cycles = miss_latency_cycles
        self.think_cycles = think_cycles
        self.issued = issued

    @property
    def miss_rate(self) -> float:
        """L2 misses per L2 access (L1 miss) inside the window."""
        return self.l2_misses / self.l1_misses if self.l1_misses else 0.0

    @property
    def mean_miss_latency(self) -> float:
        """Average L1-miss latency — the paper's miss-latency metric."""
        return (self.miss_latency_cycles / self.l1_misses
                if self.l1_misses else 0.0)

    @property
    def stall_per_ref(self) -> float:
        """Miss-latency cycles per reference: memory-boundedness."""
        return self.miss_latency_cycles / self.refs if self.refs else 0.0

    @property
    def think_per_ref(self) -> float:
        """Compute cycles per reference: core-speed sensitivity."""
        return self.think_cycles / self.refs if self.refs else 0.0


class ThreadDeltaTracker:
    """Turns cumulative per-thread counters into window deltas.

    The per-thread analogue of
    :class:`~repro.obs.probes.VmDeltaTracker`; both difference the
    same read-only :class:`~repro.sim.engine.ThreadStats` counters.
    """

    def __init__(self, threads):
        self.threads = list(threads)
        self._prev: Dict[int, tuple] = {
            t.thread_id: (0, 0, 0, 0, 0) for t in self.threads
        }

    def snapshot(self) -> Dict[int, ThreadDelta]:
        """Deltas since the previous snapshot, keyed by thread id."""
        out: Dict[int, ThreadDelta] = {}
        for thread in self.threads:
            stats = thread.stats
            cur = (stats.refs, stats.l1_misses, stats.l2_misses,
                   stats.miss_latency_cycles, stats.think_cycles)
            prev = self._prev[thread.thread_id]
            self._prev[thread.thread_id] = cur
            out[thread.thread_id] = ThreadDelta(
                thread_id=thread.thread_id,
                vm_id=thread.vm_id,
                core_id=thread.core_id,
                refs=cur[0] - prev[0],
                l1_misses=cur[1] - prev[1],
                l2_misses=cur[2] - prev[2],
                miss_latency_cycles=cur[3] - prev[3],
                think_cycles=cur[4] - prev[4],
                issued=thread.issued,
            )
        return out


class SchedWindow:
    """Everything a scheduling policy sees at one control epoch."""

    __slots__ = ("now", "threads", "vms", "domain_queues", "queues",
                 "domain_of_core")

    def __init__(self, now: int, threads: Dict[int, ThreadDelta],
                 vms: Dict[int, VmDelta],
                 domain_queues: Optional[List[float]],
                 queues: Optional[Dict[int, List[int]]],
                 domain_of_core: Optional[List[int]]):
        self.now = now
        #: per-thread window deltas, keyed by thread id
        self.threads = threads
        #: per-VM window deltas (QoS-compatible), keyed by VM id
        self.vms = vms
        #: per-domain L2 bank backlog, or ``None`` off-chip
        self.domain_queues = domain_queues
        #: per-core run queues from the engine actuator (head = active
        #: thread), or ``None`` when no actuator is attached
        self.queues = queues
        #: core -> L2 domain map, or ``None`` off-chip
        self.domain_of_core = domain_of_core

    def threads_on_domain(self, domain: int) -> List[ThreadDelta]:
        """Window deltas of the threads currently on ``domain``."""
        mapping = self.domain_of_core
        if mapping is None:
            return []
        return [d for d in self.threads.values()
                if mapping[d.core_id] == domain]

    def domain_pressure(self, domain: int) -> float:
        """Contention estimate for one L2 domain.

        The mean miss latency of the domain's active threads, inflated
        by the domain's bank backlog: miss latency captures how much
        each access suffers, the queue term how much demand is still
        piling up behind it.
        """
        members = [d for d in self.threads_on_domain(domain) if d.refs]
        latency = (sum(d.mean_miss_latency for d in members) / len(members)
                   if members else 0.0)
        depth = (self.domain_queues[domain]
                 if self.domain_queues is not None else 0.0)
        return latency * (1.0 + depth)


class SchedSensor:
    """Builds one :class:`SchedWindow` per control epoch.

    Like :class:`~repro.qos.sensors.EpochSensor`, the machine's
    inspection methods are duck-typed so the sensor also works against
    the trivial fake machines in the engine tests (those windows just
    lack domain signals).
    """

    def __init__(self, machine, threads):
        self.threads = list(threads)
        self._thread_tracker = ThreadDeltaTracker(self.threads)
        self._vm_tracker = VmDeltaTracker(self.threads)
        self._domain_depths = getattr(machine, "l2_domain_queue_depths", None)
        self.domain_of_core: Optional[List[int]] = None
        domain_of = getattr(machine, "domain_of_core", None)
        config = getattr(machine, "config", None)
        if domain_of is not None and config is not None:
            self.domain_of_core = [
                domain_of(core) for core in range(config.num_cores)
            ]

    def window(self, now: int,
               queues: Optional[Dict[int, List[int]]] = None) -> SchedWindow:
        depths = (self._domain_depths(now)
                  if self._domain_depths is not None else None)
        threads = self._thread_tracker.snapshot()
        if queues is not None:
            # the engine's queues omit departed (churned) threads, whose
            # contexts keep a stale core binding; sensing them would let
            # a policy pick a departed thread as a migration partner and
            # propose a collision with the live thread on that core
            live = {tid for queue in queues.values() for tid in queue}
            threads = {tid: delta for tid, delta in threads.items()
                       if tid in live}
        return SchedWindow(
            now=now,
            threads=threads,
            vms=self._vm_tracker.snapshot(),
            domain_queues=depths,
            queues=queues,
            domain_of_core=self.domain_of_core,
        )

"""QoS sensors: utility monitors and epoch-delta adapters.

Two kinds of sensor feed the controllers in
:mod:`repro.qos.controllers`:

* :class:`UtilityMonitor` — a UMON-style shadow-tag sampler (Qureshi &
  Patt, MICRO 2006) attached to one shared L2 domain.  It maintains,
  for a sampled subset of sets, a per-VM LRU stack of recently-accessed
  tags and a histogram of stack-distance hits.  The cumulative
  histogram is the VM's *utility curve*: how many of its L2 accesses
  would have hit had it owned 1, 2, ... ``assoc`` ways exclusively —
  exactly the marginal-utility signal UCP repartitioning needs.  The
  monitor observes the access stream through the chip's read-only
  :meth:`~repro.machine.chip.Chip.set_l2_tap` hook, so it can never
  perturb simulation state.
* :class:`EpochSensor` — an adapter over the observability layer's
  :class:`~repro.obs.probes.VmDeltaTracker` (the same delta bookkeeping
  the :class:`~repro.obs.probes.EpochProbe` samples from), handing
  controllers per-VM miss rate / miss latency / progress deltas for the
  closing control epoch plus the chip's current L2 occupancy shares.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..obs.probes import VmDelta, VmDeltaTracker

__all__ = ["UtilityMonitor", "QosWindow", "EpochSensor"]


class UtilityMonitor:
    """Shadow-tag utility monitor for one shared L2 domain.

    Parameters
    ----------
    domain_id:
        The L2 domain this monitor shadows.
    assoc:
        Domain set associativity — the shadow stacks track at most this
        many tags per (VM, set), giving utility curves over 1..assoc
        ways.
    num_sets:
        Number of sets in the domain array (used to derive set indices
        from block numbers the same way the real array does).
    sample_every:
        Set-sampling factor: only sets whose index is a multiple of
        this are shadowed (UMON's dynamic set sampling).  1 shadows
        every set.
    """

    def __init__(self, domain_id: int, assoc: int, num_sets: int,
                 sample_every: int = 8):
        if assoc <= 0:
            raise ValueError("assoc must be positive")
        if num_sets <= 0 or num_sets & (num_sets - 1):
            raise ValueError("num_sets must be a positive power of two")
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self.domain_id = domain_id
        self.assoc = assoc
        self.set_mask = num_sets - 1
        self.sample_every = sample_every
        # (vm_id, set_index) -> MRU-first list of shadow tags
        self._stacks: Dict[tuple, List[int]] = {}
        # vm_id -> hits at stack distance d (0-based); index d means the
        # access would hit with d+1 allocated ways
        self.hits: Dict[int, List[int]] = {}
        self.misses: Dict[int, int] = {}

    def observe(self, vm_id: int, block: int) -> None:
        """Feed one L2 access into the shadow tags (tap callback)."""
        if vm_id < 0:
            return
        set_index = block & self.set_mask
        if set_index % self.sample_every:
            return
        stack = self._stacks.get((vm_id, set_index))
        if stack is None:
            stack = self._stacks[(vm_id, set_index)] = []
        try:
            distance = stack.index(block)
        except ValueError:
            self.misses[vm_id] = self.misses.get(vm_id, 0) + 1
        else:
            del stack[distance]
            hits = self.hits.get(vm_id)
            if hits is None:
                hits = self.hits[vm_id] = [0] * self.assoc
            hits[distance] += 1
        stack.insert(0, block)
        del stack[self.assoc:]

    def utility_curve(self, vm_id: int) -> List[int]:
        """Cumulative shadow hits with 1..assoc exclusive ways.

        ``curve[w-1]`` estimates how many of the VM's sampled accesses
        would have hit with ``w`` dedicated ways.  Monotone
        non-decreasing by construction.
        """
        hits = self.hits.get(vm_id, [0] * self.assoc)
        curve: List[int] = []
        total = 0
        for count in hits:
            total += count
            curve.append(total)
        return curve

    def accesses(self, vm_id: int) -> int:
        """Sampled accesses observed for the VM."""
        hits = self.hits.get(vm_id)
        return (sum(hits) if hits else 0) + self.misses.get(vm_id, 0)

    def reset(self) -> None:
        """Zero the histograms, keeping the shadow tags warm (UMON's
        end-of-epoch behaviour: halving would also work; clearing makes
        each epoch's curve independent)."""
        for hits in self.hits.values():
            for index in range(len(hits)):
                hits[index] = 0
        for vm in self.misses:
            self.misses[vm] = 0


class QosWindow:
    """Everything a controller may read at one control epoch boundary.

    ``l2_shares`` may be handed in as a zero-argument callable: chip
    occupancy is a full L2 scan, so it is only computed if a controller
    actually reads it (none of the shipped policies do — the scan would
    otherwise dominate the control loop's cost).
    """

    __slots__ = ("now", "deltas", "queues", "_l2_shares")

    def __init__(self, now: int, deltas: Dict[int, VmDelta],
                 l2_shares=None,
                 queues: Optional[Dict[int, List[int]]] = None):
        self.now = now
        self.deltas = deltas
        #: dict, or a thunk resolved on first access
        self._l2_shares = l2_shares
        #: over-commit only: core -> run-queue thread ids (head active)
        self.queues = queues

    @property
    def l2_shares(self) -> Dict[int, float]:
        if callable(self._l2_shares):
            self._l2_shares = self._l2_shares()
        return self._l2_shares if self._l2_shares is not None else {}


class EpochSensor:
    """Per-epoch sensing over the engine's thread stats and the chip.

    Wraps a :class:`~repro.obs.probes.VmDeltaTracker` plus the chip's
    read-only ``l2_occupancy_share`` inspection method; every call to
    :meth:`window` closes the current epoch and returns its
    :class:`QosWindow`.
    """

    def __init__(self, machine, threads):
        self.tracker = VmDeltaTracker(threads)
        self._l2_share = getattr(machine, "l2_occupancy_share", None)

    @property
    def vm_ids(self) -> List[int]:
        return self.tracker.vm_ids

    def window(self, now: int,
               queues: Optional[Dict[int, List[int]]] = None) -> QosWindow:
        def shares() -> Dict[int, float]:
            raw = self._l2_share() if self._l2_share is not None else {}
            return {vm: float(raw.get(vm, 0.0))
                    for vm in self.tracker.vm_ids}

        return QosWindow(
            now=now,
            deltas=self.tracker.snapshot(),
            l2_shares=shares,
            queues=queues,
        )

"""Dynamic cache QoS: sensors, controllers, actuation, scorecards.

The consolidation paper's conclusion asks for performance isolation
between co-scheduled VMs; the seed repo answered with a *static* equal
way split (``l2_vm_quota``).  This package closes the loop: UMON-style
shadow-tag sensing (:mod:`~repro.qos.sensors`), pluggable partitioning
policies (:mod:`~repro.qos.controllers`), epoch-boundary actuation
inside the engines (:mod:`~repro.qos.hook`), and QoS scorecards
(:mod:`~repro.qos.metrics`).  Select a policy with
``ExperimentSpec(qos_policy="ucp")`` or ``repro qos --policy ucp``.
"""

from .controllers import (
    CONTROLLERS,
    MissRateProportional,
    QosController,
    QosDecision,
    QosView,
    StaticEqual,
    TargetSlowdown,
    UcpLookahead,
    controller_names,
    make_controller,
    ucp_partition,
)
from .hook import QosHook
from .metrics import (
    QosReport,
    harmonic_speedup,
    per_vm_slowdowns,
    qos_report,
    weighted_speedup,
)
from .sensors import EpochSensor, QosWindow, UtilityMonitor

__all__ = [
    "CONTROLLERS",
    "EpochSensor",
    "QosReport",
    "MissRateProportional",
    "QosController",
    "QosDecision",
    "QosHook",
    "QosView",
    "QosWindow",
    "StaticEqual",
    "TargetSlowdown",
    "UcpLookahead",
    "UtilityMonitor",
    "controller_names",
    "harmonic_speedup",
    "make_controller",
    "per_vm_slowdowns",
    "qos_report",
    "ucp_partition",
    "weighted_speedup",
]

"""Epoch-boundary QoS actuation inside the simulation engines.

A :class:`QosHook` is the bridge between a
:class:`~repro.qos.controllers.QosController` and a running engine.
The engine calls :meth:`QosHook.on_step` once per event-loop step (the
same pattern as the observability layer's
:class:`~repro.obs.probes.EpochProbe`); every ``epoch`` simulated
cycles the hook closes a sensing window, asks the controller for a
:class:`~repro.qos.controllers.QosDecision`, and applies it:

* **quota rewrites** through
  :meth:`~repro.caches.partitioning.WayQuota.set_quota` on the live
  per-domain :class:`~repro.caches.partitioning.WayQuota` objects;
* **thread re-binds** (over-commit only) through the engine's run-queue
  actuator plus :meth:`~repro.vm.hypervisor.Hypervisor.rebind_thread`
  for the binding bookkeeping.

Counters (``qos.control_epochs``, ``qos.adjustments``, ``qos.rebinds``,
``qos.violation_epochs``) and per-VM ``qos.vm<N>.ways`` /
``qos.vm<N>.slowdown`` time series land in the run's telemetry hub;
with the default null hub they cost nothing.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..caches.partitioning import WayQuota
from .controllers import QosController, TargetSlowdown
from .sensors import EpochSensor

__all__ = ["QosHook"]


class QosHook:
    """Drives one controller at a fixed control epoch.

    Parameters
    ----------
    chip:
        The machine; quotas are installed on its shared domains and
        tap-wanting controllers (UCP) get its L2 access stream.
    threads:
        The engine's thread contexts (sensing is read-only).
    controller:
        An *attached-by-us* controller: the hook builds the
        :class:`~repro.qos.controllers.QosView` and calls
        ``controller.attach`` itself.
    epoch:
        Control period in simulated cycles.
    hypervisor:
        Needed only when re-binding may happen (over-commit runs).
    baseline_cpr, target:
        Feedback-controller inputs (see
        :class:`~repro.qos.controllers.TargetSlowdown`).
    """

    def __init__(self, chip, threads, controller: QosController,
                 assignments, epoch: int, telemetry=None,
                 hypervisor=None, baseline_cpr: Optional[Dict[int, float]] = None,
                 target: float = 0.0,
                 vm_workloads: Optional[Dict[int, str]] = None):
        if epoch <= 0:
            raise ValueError("qos epoch must be positive")
        if telemetry is None:
            from ..obs.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self.chip = chip
        self.threads = list(threads)
        self.controller = controller
        self.epoch = epoch
        self.telemetry = telemetry
        self.hypervisor = hypervisor
        self.next_due = epoch
        self.control_epochs = 0
        self.adjustments = 0
        self.rebinds = 0
        self._actuator = None
        self._seen_violations = 0

        # single-owner quota setup (identical to the static path)
        self.quotas: Dict[int, WayQuota] = QosController.install(
            chip, assignments
        )
        view = QosController.shared_view(
            chip, assignments,
            vm_workloads=dict(
                vm_workloads
                if vm_workloads is not None
                else {t.vm_id: "" for t in self.threads}
            ),
            baseline_cpr=dict(baseline_cpr or {}),
            target=target,
        )
        controller.attach(view)
        if isinstance(controller, TargetSlowdown):
            controller.set_thread_vms(
                {t.thread_id: t.vm_id for t in self.threads}
            )
        if controller.wants_l2_tap:
            monitors = controller.build_monitors(chip)

            def tap(domain_id: int, vm_id: int, block: int) -> None:
                monitor = monitors.get(domain_id)
                if monitor is not None:
                    monitor.observe(vm_id, block)

            chip.set_l2_tap(tap)
        self.sensor = EpochSensor(chip, self.threads)

    # -- wiring ---------------------------------------------------------

    def bind_actuator(self, engine) -> None:
        """Give the hook an over-commit engine's run-queue actuator
        (``run_queues()`` / ``rebind_thread(tid, core, now)``)."""
        self._actuator = engine

    # -- engine hooks ---------------------------------------------------

    def on_step(self, now: int) -> None:
        """Called once per engine step with the current issue time."""
        if now >= self.next_due:
            self.control(now)
            # Arm relative to the actual control instant rather than
            # snapping back to the epoch grid: a grid-aligned next_due
            # after an off-grid control cycle (now=250, epoch=100 →
            # next_due=300) gives the controller a sub-epoch sensing
            # window and biases its per-window slowdown estimates.
            self.next_due = now + self.epoch

    def finish(self, final_time: int) -> None:
        """End-of-run cleanup: detach the tap, flush final telemetry."""
        if self.controller.wants_l2_tap:
            self.chip.set_l2_tap(None)
        self.telemetry.gauge("qos.control_epochs").set(
            float(self.control_epochs)
        )

    # -- the control loop -----------------------------------------------

    def control(self, now: int) -> None:
        """Run one sense → decide → actuate cycle."""
        self.control_epochs += 1
        telemetry = self.telemetry
        telemetry.counter("qos.control_epochs").inc()
        queues = None
        if self._actuator is not None:
            queues = self._actuator.run_queues()
        window = self.sensor.window(now, queues=queues)
        decision = self.controller.decide(window)

        changed = 0
        for domain_id in sorted(decision.quotas):
            quota = self.quotas.get(domain_id)
            if quota is None:
                continue
            changed += quota.update(decision.quotas[domain_id])
        if changed:
            self.adjustments += changed
            telemetry.counter("qos.adjustments").inc(changed)

        if decision.rebinds and self._actuator is not None:
            for tid in sorted(decision.rebinds):
                core = decision.rebinds[tid]
                thread = self._thread_by_id(tid)
                if thread is None:
                    continue  # controller named a thread we don't run
                previous = thread.core_id
                became_head = self._actuator.rebind_thread(tid, core, now)
                if became_head is None:
                    continue  # refused (active thread / same core)
                if self.hypervisor is not None:
                    self.hypervisor.rebind_thread(
                        thread, core, previous=previous,
                        bind_core=became_head,
                    )
                self.rebinds += 1
                telemetry.counter("qos.rebinds").inc()

        violations = getattr(self.controller, "violations", None)
        if violations is not None and violations > self._seen_violations:
            telemetry.counter("qos.violation_epochs").inc(
                violations - self._seen_violations
            )
            self._seen_violations = violations

        if telemetry.enabled:
            self._record_series(now)

    def _thread_by_id(self, tid: int):
        for thread in self.threads:
            if thread.thread_id == tid:
                return thread
        return None

    def _record_series(self, now: int) -> None:
        ways_by_vm: Dict[int, int] = {}
        for quota in self.quotas.values():
            for vm, ways in quota.quotas.items():
                ways_by_vm[vm] = ways_by_vm.get(vm, 0) + ways
        for vm in sorted(ways_by_vm):
            self.telemetry.series_for(f"qos.vm{vm}.ways").append(
                now, float(ways_by_vm[vm])
            )
        slowdowns = getattr(self.controller, "slowdowns", None)
        if slowdowns:
            for vm in sorted(slowdowns):
                self.telemetry.series_for(f"qos.vm{vm}.slowdown").append(
                    now, round(slowdowns[vm], 6)
                )

    # -- reporting ------------------------------------------------------

    def summary(self) -> dict:
        """JSON-friendly account of what the controller did."""
        out = {
            "policy": self.controller.name,
            "epoch": self.epoch,
            "control_epochs": self.control_epochs,
            "quota_adjustments": self.adjustments,
            "rebinds": self.rebinds,
            "final_quotas": {
                str(domain): {str(vm): ways
                              for vm, ways in sorted(q.quotas.items())}
                for domain, q in sorted(self.quotas.items())
            },
        }
        violations = getattr(self.controller, "violations", None)
        if violations is not None:
            out["violation_epochs"] = violations
            out["target"] = self.controller.view.target
            out["final_slowdown_estimates"] = {
                str(vm): round(s, 4)
                for vm, s in sorted(self.controller.slowdowns.items())
            }
        return out

"""QoS metrics: multi-programmed speedups, fairness, target violations.

The consolidation literature summarizes a multi-programmed run with
throughput *and* fairness numbers derived from per-VM slowdowns
(cycles relative to each workload's isolation run):

* **weighted speedup** ``sum(1 / slowdown_i)`` — aggregate throughput
  in "isolation-equivalent VMs"; equals N when nobody is slowed.
* **harmonic mean of speedups** ``N / sum(slowdown_i)`` — balances
  throughput against fairness (Luo et al.); dominated by the worst VM.
* **Jain's fairness index** over slowdowns — 1.0 when the pain is
  evenly spread (re-exported from :mod:`repro.analysis.fairness`).

:func:`qos_report` folds these plus the controller's own account (from
``result.qos``, filled by :func:`repro.core.experiment.run_experiment`
for QoS-enabled runs) into one :class:`QosReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.fairness import jains_index
from ..core.experiment import ExperimentResult
from ..core.isolation import normalized_runtime
from ..errors import ReproError

__all__ = [
    "per_vm_slowdowns",
    "weighted_speedup",
    "harmonic_speedup",
    "QosReport",
    "qos_report",
]


def per_vm_slowdowns(result: ExperimentResult) -> Dict[int, float]:
    """``vm_id -> cycles / isolated cycles`` (baselines come memoized
    from the result store, same as the fairness analysis)."""
    return {
        vm.vm_id: normalized_runtime(vm, result.spec)
        for vm in result.vm_metrics
    }


def weighted_speedup(slowdowns: Dict[int, float]) -> float:
    """Sum of per-VM speedups vs. isolation (``sum(1/slowdown)``)."""
    if not slowdowns:
        raise ReproError("weighted_speedup needs at least one VM")
    return sum(1.0 / s for s in slowdowns.values() if s > 0)


def harmonic_speedup(slowdowns: Dict[int, float]) -> float:
    """Harmonic mean of per-VM speedups (``N / sum(slowdown)``)."""
    if not slowdowns:
        raise ReproError("harmonic_speedup needs at least one VM")
    total = sum(slowdowns.values())
    return len(slowdowns) / total if total else 0.0


@dataclass(frozen=True)
class QosReport:
    """One run's QoS scorecard."""

    policy: str
    slowdowns: Dict[int, float]  # vm_id -> slowdown vs. isolation
    workloads: Dict[int, str]
    target: float = 0.0
    #: controller summary from ``result.qos`` (empty for plain runs)
    control: Dict[str, object] = field(default_factory=dict)

    @property
    def weighted_speedup(self) -> float:
        return weighted_speedup(self.slowdowns)

    @property
    def harmonic_speedup(self) -> float:
        return harmonic_speedup(self.slowdowns)

    @property
    def fairness(self) -> float:
        return jains_index(list(self.slowdowns.values()))

    @property
    def max_slowdown(self) -> float:
        return max(self.slowdowns.values())

    @property
    def violation_epochs(self) -> int:
        return int(self.control.get("violation_epochs", 0))

    @property
    def violating_vms(self) -> List[int]:
        """VMs whose *final* slowdown exceeds the target (if set)."""
        if self.target <= 0:
            return []
        return sorted(
            vm for vm, s in self.slowdowns.items() if s > self.target
        )

    def rows(self) -> List[list]:
        """Per-VM table rows for the CLI."""
        out = []
        for vm_id in sorted(self.slowdowns):
            row = [f"vm{vm_id}", self.workloads[vm_id],
                   self.slowdowns[vm_id]]
            if self.target > 0:
                row.append(
                    "over" if self.slowdowns[vm_id] > self.target else "ok"
                )
            out.append(row)
        return out

    def to_dict(self) -> dict:
        """JSON-friendly form (CLI ``--json`` / report artifacts)."""
        out = {
            "policy": self.policy,
            "slowdowns": {str(vm): round(s, 6)
                          for vm, s in sorted(self.slowdowns.items())},
            "workloads": {str(vm): w
                          for vm, w in sorted(self.workloads.items())},
            "weighted_speedup": round(self.weighted_speedup, 6),
            "harmonic_speedup": round(self.harmonic_speedup, 6),
            "fairness": round(self.fairness, 6),
            "max_slowdown": round(self.max_slowdown, 6),
        }
        if self.target > 0:
            out["target"] = self.target
            out["violating_vms"] = self.violating_vms
        if self.control:
            out["control"] = dict(self.control)
        return out


def qos_report(result: ExperimentResult,
               target: Optional[float] = None) -> QosReport:
    """Score one run: slowdowns, speedups, fairness, violations.

    Works on *any* result — QoS-enabled runs carry their controller
    summary in ``result.qos``; plain runs score with empty control
    data, which is exactly what policy comparisons baseline against.
    """
    control = dict(getattr(result, "qos", None) or {})
    policy = str(control.get("policy", "")) or (
        "static-equal" if result.spec.l2_vm_quota else "none"
    )
    if target is None:
        target = float(control.get("target", 0.0) or
                       getattr(result.spec, "qos_target", 0.0))
    return QosReport(
        policy=policy,
        slowdowns=per_vm_slowdowns(result),
        workloads={vm.vm_id: vm.workload for vm in result.vm_metrics},
        target=target,
        control=control,
    )

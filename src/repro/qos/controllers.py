"""QoS controllers: way-quota (re)partitioning policies.

A :class:`QosController` decides, at every control epoch, how each
shared L2 domain's ways are split among its resident VMs — and, on an
over-committed machine, whether any waiting thread should be re-bound
to a different core.  Controllers never touch machine state themselves:
the :class:`~repro.qos.hook.QosHook` applies their
:class:`QosDecision` through :meth:`WayQuota.set_quota
<repro.caches.partitioning.WayQuota.set_quota>` and the engine's
re-bind actuator.

Four policies ship:

``static-equal`` — :class:`StaticEqual`
    The equal split today's ``l2_vm_quota`` spec flag freezes at setup,
    now expressed as a (do-nothing) controller.  Its
    :meth:`StaticEqual.install` classmethod is the single owner of
    initial quota construction for *every* policy and for the legacy
    static path, so quota setup has exactly one code path.
``missrate-prop`` — :class:`MissRateProportional`
    Ways proportional to each VM's share of the epoch's L2 misses:
    capacity flows to whoever is missing, a simple demand-follows-need
    heuristic.
``ucp`` — :class:`UcpLookahead`
    Utility-based cache partitioning: greedy marginal-utility
    (lookahead) allocation over the shadow-tag utility curves of
    :class:`~repro.qos.sensors.UtilityMonitor` (Qureshi & Patt,
    MICRO 2006).  Capacity flows to whoever can *use* it.
``target-slowdown`` — :class:`TargetSlowdown`
    A feedback controller holding every VM's estimated slowdown (vs.
    its isolated-run baseline from the
    :class:`~repro.core.store.ResultStore`) under a user-set target:
    each epoch it moves one way per domain from the VM with the most
    slack to the VM furthest over target, and on an over-committed
    machine migrates a waiting thread of the worst victim toward the
    shortest run queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..caches.partitioning import WayQuota, equal_quotas
from ..errors import ConfigurationError
from .sensors import QosWindow, UtilityMonitor

__all__ = [
    "QosView",
    "QosDecision",
    "QosController",
    "StaticEqual",
    "MissRateProportional",
    "UcpLookahead",
    "TargetSlowdown",
    "ucp_partition",
    "CONTROLLERS",
    "controller_names",
    "make_controller",
]


@dataclass(frozen=True)
class QosView:
    """Static facts a controller is given once, before the run starts."""

    assoc: int
    #: domain -> sorted resident VM ids (multi-VM shared domains only)
    domain_vms: Dict[int, List[int]]
    #: vm -> workload name
    vm_workloads: Dict[int, str]
    #: vm -> isolated-baseline cycles per issued reference (feedback
    #: controllers only; empty otherwise)
    baseline_cpr: Dict[int, float] = field(default_factory=dict)
    #: slowdown target for TargetSlowdown (0 = unset)
    target: float = 0.0


@dataclass
class QosDecision:
    """What a controller wants changed at one epoch boundary."""

    #: domain -> {vm -> ways}; omitted domains/VMs keep their quotas
    quotas: Dict[int, Dict[int, int]] = field(default_factory=dict)
    #: thread_id -> core (over-commit only; applied via the engine)
    rebinds: Dict[int, int] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not self.quotas and not self.rebinds


class QosController:
    """Base controller: attach once, decide every control epoch."""

    name = "base"
    #: set by controllers that need the chip's L2 access tap
    wants_l2_tap = False

    def __init__(self) -> None:
        self.view: Optional[QosView] = None

    def attach(self, view: QosView) -> None:
        self.view = view

    def monitors(self) -> Dict[int, UtilityMonitor]:
        """Per-domain utility monitors (tap-wanting controllers only)."""
        return {}

    def decide(self, window: QosWindow) -> QosDecision:
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------

    @staticmethod
    def install(chip, assignments) -> Dict[int, WayQuota]:
        """Create the initial equal-split :class:`WayQuota` on every
        multi-VM shared domain — the single owner of quota setup.

        Returns ``domain_id -> WayQuota`` for the domains that got one
        (single-VM domains need no partition).  Identical to the
        historical inline ``_apply_vm_quotas`` behaviour, byte for
        byte: equal split, sorted VM ids, quota only where VMs share.
        """
        domain_vms: Dict[int, set] = {}
        for vm_id, cores in enumerate(assignments):
            for core in cores:
                domain_vms.setdefault(
                    chip.domain_of_core(core), set()).add(vm_id)
        assoc = chip.config.l2_assoc
        quotas: Dict[int, WayQuota] = {}
        for domain_id, vms in sorted(domain_vms.items()):
            if len(vms) > 1:
                quota = WayQuota(equal_quotas(sorted(vms), assoc), assoc)
                chip.domains[domain_id].set_quota(quota)
                quotas[domain_id] = quota
        return quotas

    @staticmethod
    def shared_view(chip, assignments, **extra) -> QosView:
        """Build the :class:`QosView` for a chip + VM assignment."""
        domain_vms: Dict[int, set] = {}
        for vm_id, cores in enumerate(assignments):
            for core in cores:
                domain_vms.setdefault(
                    chip.domain_of_core(core), set()).add(vm_id)
        return QosView(
            assoc=chip.config.l2_assoc,
            domain_vms={d: sorted(vms) for d, vms in sorted(domain_vms.items())
                        if len(vms) > 1},
            **extra,
        )


class StaticEqual(QosController):
    """Keep the setup-time equal split for the whole run."""

    name = "static-equal"

    def decide(self, window: QosWindow) -> QosDecision:
        return QosDecision()


def _largest_remainder(weights: Dict[int, float], total: int,
                       minimum: int = 1) -> Dict[int, int]:
    """Split ``total`` integer ways by ``weights`` with a floor.

    Deterministic largest-remainder apportionment: every VM gets at
    least ``minimum``, the rest follows the weights, leftover ways go
    to the largest fractional remainders (ties to the lower VM id).
    """
    vms = sorted(weights)
    floor_total = minimum * len(vms)
    spare = total - floor_total
    if spare < 0:
        raise ConfigurationError(
            f"{len(vms)} VMs cannot each hold {minimum} of {total} ways"
        )
    weight_sum = sum(weights[vm] for vm in vms)
    if weight_sum <= 0:
        weights = {vm: 1.0 for vm in vms}
        weight_sum = float(len(vms))
    shares = {vm: spare * weights[vm] / weight_sum for vm in vms}
    out = {vm: minimum + int(shares[vm]) for vm in vms}
    leftover = total - sum(out.values())
    remainders = sorted(
        vms, key=lambda vm: (-(shares[vm] - int(shares[vm])), vm)
    )
    for vm in remainders[:leftover]:
        out[vm] += 1
    return out


class MissRateProportional(QosController):
    """Ways proportional to each VM's share of the epoch's L2 misses."""

    name = "missrate-prop"

    def decide(self, window: QosWindow) -> QosDecision:
        decision = QosDecision()
        for domain_id, vms in self.view.domain_vms.items():
            weights = {
                vm: float(window.deltas[vm].l2_misses)
                for vm in vms if vm in window.deltas
            }
            if len(weights) < 2 or sum(weights.values()) == 0:
                continue  # nothing measured this epoch: hold quotas
            decision.quotas[domain_id] = _largest_remainder(
                weights, self.view.assoc
            )
        return decision


def ucp_partition(curves: Dict[int, List[int]], assoc: int,
                  min_ways: int = 1) -> Dict[int, int]:
    """Greedy marginal-utility (lookahead) way allocation.

    ``curves[vm][w-1]`` is the VM's utility (shadow hits) with ``w``
    ways.  Every VM starts at ``min_ways``; each remaining way goes to
    the VM with the largest marginal utility for its next way (ties to
    the lower VM id), which for concave curves equals UCP's lookahead
    result.
    """
    vms = sorted(curves)
    if min_ways * len(vms) > assoc:
        raise ConfigurationError(
            f"{len(vms)} VMs cannot each hold {min_ways} of {assoc} ways"
        )
    alloc = {vm: min_ways for vm in vms}
    remaining = assoc - min_ways * len(vms)

    def marginal(vm: int) -> int:
        ways = alloc[vm]
        curve = curves[vm]
        if ways >= len(curve):
            return 0
        previous = curve[ways - 1] if ways > 0 else 0
        return curve[ways] - previous

    for _ in range(remaining):
        best = max(vms, key=lambda vm: (marginal(vm), -vm))
        alloc[best] += 1
    return alloc


class UcpLookahead(QosController):
    """Utility-based repartitioning over shadow-tag miss curves."""

    name = "ucp"
    wants_l2_tap = True

    def __init__(self, sample_every: int = 8, min_accesses: int = 32):
        super().__init__()
        self.sample_every = sample_every
        #: minimum sampled accesses per domain before repartitioning
        self.min_accesses = min_accesses
        self._monitors: Dict[int, UtilityMonitor] = {}

    def attach(self, view: QosView) -> None:
        super().attach(view)
        self._monitors = {}

    def build_monitors(self, chip) -> Dict[int, UtilityMonitor]:
        """Instantiate one monitor per partitioned domain."""
        geometry = chip.config.l2_geometry()
        self._monitors = {
            domain_id: UtilityMonitor(
                domain_id, self.view.assoc, geometry.num_sets,
                sample_every=self.sample_every,
            )
            for domain_id in self.view.domain_vms
        }
        return self._monitors

    def monitors(self) -> Dict[int, UtilityMonitor]:
        return self._monitors

    def decide(self, window: QosWindow) -> QosDecision:
        decision = QosDecision()
        for domain_id, vms in self.view.domain_vms.items():
            monitor = self._monitors.get(domain_id)
            if monitor is None:
                continue
            sampled = sum(monitor.accesses(vm) for vm in vms)
            if sampled < self.min_accesses:
                continue
            curves = {vm: monitor.utility_curve(vm) for vm in vms}
            decision.quotas[domain_id] = ucp_partition(
                curves, self.view.assoc
            )
            monitor.reset()
        return decision


class TargetSlowdown(QosController):
    """Hold every VM's slowdown under ``target`` by feedback.

    Slowdown is estimated online as the ratio of the VM's observed
    cycles-per-issued-reference (``now`` over its threads' mean issued
    count) to the isolated-run baseline the experiment runner fetched
    from the result store.  Each epoch, in every partitioned domain,
    one way moves from the VM with the most slack to the VM furthest
    over target — a deliberately small step so allocations cannot
    oscillate.  With run queues visible (over-commit), a waiting
    thread of the worst victim is migrated to the shortest queue.
    """

    name = "target-slowdown"

    def __init__(self, margin: float = 0.02):
        super().__init__()
        #: dead band around the target, as a fraction of it
        self.margin = margin
        #: vm -> last estimated slowdown (reporting)
        self.slowdowns: Dict[int, float] = {}
        self.violations = 0
        #: current quota shadow; seeded on attach, tracks our own moves
        self._ways: Dict[int, Dict[int, int]] = {}
        #: thread -> vm map the hook fills in before the run
        self._thread_vms: Dict[int, int] = {}

    def attach(self, view: QosView) -> None:
        super().attach(view)
        if view.target <= 0:
            raise ConfigurationError(
                "target-slowdown needs a positive qos_target "
                "(e.g. 1.3 = at most 30% slower than isolation)"
            )
        if not view.baseline_cpr:
            raise ConfigurationError(
                "target-slowdown needs isolated baselines "
                "(baseline_cpr missing from the QosView)"
            )
        self._ways = {
            domain: dict(equal_quotas(vms, view.assoc))
            for domain, vms in view.domain_vms.items()
        }
        self.slowdowns = {}
        self.violations = 0

    def estimate_slowdowns(self, window: QosWindow) -> Dict[int, float]:
        out: Dict[int, float] = {}
        for vm, baseline in self.view.baseline_cpr.items():
            delta = window.deltas.get(vm)
            if delta is None or delta.issued <= 0 or baseline <= 0:
                continue
            out[vm] = (window.now / delta.issued) / baseline
        return out

    def decide(self, window: QosWindow) -> QosDecision:
        view = self.view
        slowdowns = self.estimate_slowdowns(window)
        self.slowdowns = slowdowns
        decision = QosDecision()
        over = {vm for vm, s in slowdowns.items() if s > view.target}
        if over:
            self.violations += 1
        low_band = view.target * (1.0 - self.margin)
        worst_vm = None
        worst_excess = 0.0
        for domain_id, vms in view.domain_vms.items():
            ways = self._ways[domain_id]
            victims = sorted(
                (vm for vm in vms if vm in over),
                key=lambda vm: (-slowdowns[vm], vm),
            )
            donors = sorted(
                (vm for vm in vms
                 if vm in slowdowns and slowdowns[vm] < low_band
                 and ways[vm] > 1),
                key=lambda vm: (slowdowns[vm], vm),
            )
            if not victims or not donors:
                continue
            victim, donor = victims[0], donors[0]
            if victim == donor or ways[victim] >= view.assoc:
                continue
            ways[victim] += 1
            ways[donor] -= 1
            decision.quotas[domain_id] = dict(ways)
            excess = slowdowns[victim] - view.target
            if excess > worst_excess:
                worst_excess = excess
                worst_vm = victim
        if window.queues and worst_vm is not None:
            move = self._plan_rebind(window.queues, worst_vm)
            if move is not None:
                decision.rebinds[move[0]] = move[1]
        return decision

    def _plan_rebind(self, queues: Dict[int, List[int]],
                     victim_vm: int) -> Optional[tuple]:
        """Move one *waiting* victim thread to the shortest queue."""
        vm_of = self._thread_vms
        shortest = min(sorted(queues), key=lambda core: len(queues[core]))
        for core in sorted(queues):
            queue = queues[core]
            if core == shortest or len(queue) <= len(queues[shortest]) + 1:
                continue
            # head of the queue is the active thread: never move it
            for tid in queue[1:]:
                if vm_of.get(tid) == victim_vm:
                    return (tid, shortest)
        return None

    def set_thread_vms(self, thread_vms: Dict[int, int]) -> None:
        self._thread_vms = dict(thread_vms)


CONTROLLERS = {
    StaticEqual.name: StaticEqual,
    MissRateProportional.name: MissRateProportional,
    UcpLookahead.name: UcpLookahead,
    TargetSlowdown.name: TargetSlowdown,
}
"""Controller registry addressable from specs and the CLI."""


def controller_names() -> List[str]:
    return sorted(CONTROLLERS)


def make_controller(name: str) -> QosController:
    """Build a controller by registry name."""
    try:
        cls = CONTROLLERS[name.strip().lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown QoS policy {name!r}; available: "
            f"{', '.join(controller_names())}"
        ) from None
    return cls()

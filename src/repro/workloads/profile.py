"""Statistical workload profiles.

A :class:`WorkloadProfile` captures everything the paper's Tables I and
II tell us about a workload's memory behaviour, expressed as parameters
of a synthetic reference-stream model with three data pools:

``shared-read``
    Read-mostly data touched by all threads (code, DB pages, the Java
    heap's shared structures).  Threads *scan* this pool in a pipelined
    fashion: every thread walks the same circular region, each trailing
    the previous thread by ``scan_lag`` blocks.  A follower therefore
    frequently misses on blocks its predecessor fetched recently —
    which the coherence protocol turns into **clean** cache-to-cache
    transfers, the dominant transfer type for SPECjbb and SPECweb
    (Table II: 94% / 93% clean).

``migratory``
    A small, hot pool accessed read-modify-write under contention (lock
    words, shared queue heads, join/merge buffers).  Hot blocks bounce
    between writers in different caches, producing **dirty**
    cache-to-cache transfers — TPC-H's signature (57% of its transfers
    are dirty).

``private``
    Per-thread data (transaction-local state).  Misses here are served
    by memory; a workload dominated by a large private pool (TPC-W,
    1,125K blocks touched but only 15% of misses served on-chip)
    stresses capacity rather than coherence.

The pool *capacity* split (``frac_*``), the pool *access* mix
(``p_*``), write probabilities, and locality knobs are calibrated per
workload in :mod:`repro.workloads.library` so that simulating the
paper's private-cache configuration reproduces Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..errors import WorkloadError

__all__ = ["WorkloadProfile"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Parametric model of one commercial workload.

    See the module docstring for the meaning of the three pools.

    Attributes
    ----------
    name:
        Short identifier, e.g. ``"tpcw"``.
    description, setup, execution:
        Table I's prose columns (for reports).
    footprint_blocks:
        Total distinct 64-byte blocks touched (Table II's rightmost
        column).
    threads:
        Threads per instance; the paper uses four everywhere.
    frac_shared_read, frac_migratory:
        Fraction of the footprint in each shared pool; the remainder is
        split evenly into per-thread private pools.
    p_hot, hot_blocks_per_thread:
        An ultra-hot per-thread working set (registers spilled to
        stack, hot locals, TLB-resident metadata): ``p_hot`` of all
        references hit the first ``hot_blocks_per_thread`` blocks of
        the thread's private pool, uniformly.  This is what gives the
        private L0/L1 realistic hit rates; it is invisible beyond L1
        after warm-up.
    p_shared_read, p_migratory:
        Probability that a reference targets each shared pool; the
        remainder (beyond ``p_hot``) targets the thread's cold private
        pool.
    write_prob_shared, write_prob_migratory, write_prob_private:
        Per-pool write probability.
    scan_window:
        Width in blocks of the sliding window a thread samples within
        the shared-read pool.
    scan_lag:
        How far (blocks) each thread trails the previous one in the
        shared-read scan.
    scan_slide:
        Blocks the window advances per reference issued by the thread.
    skew_migratory, skew_private:
        Power-law locality exponents of the two pools (see
        :class:`repro.workloads.sampling.PowerLawSampler`).
    think_mean:
        Mean non-memory instructions between references (geometric).
    """

    name: str
    description: str = ""
    setup: str = ""
    execution: str = ""
    footprint_blocks: int = 100_000
    threads: int = 4
    frac_shared_read: float = 0.4
    frac_migratory: float = 0.02
    p_hot: float = 0.45
    hot_blocks_per_thread: int = 48
    p_shared_read: float = 0.35
    p_migratory: float = 0.05
    write_prob_shared: float = 0.01
    write_prob_migratory: float = 0.5
    write_prob_private: float = 0.15
    scan_window: int = 4000
    scan_lag: int = 1000
    scan_slide: float = 0.05
    skew_migratory: float = 2.5
    skew_private: float = 2.5
    think_mean: float = 2.0

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("profile needs a name")
        if self.footprint_blocks <= 0:
            raise WorkloadError("footprint_blocks must be positive")
        if self.threads <= 0:
            raise WorkloadError("threads must be positive")
        for attr in ("frac_shared_read", "frac_migratory"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{attr} must be in [0, 1], got {value}")
        if self.frac_shared_read + self.frac_migratory > 1.0:
            raise WorkloadError(
                "shared + migratory capacity fractions exceed 1.0 "
                f"({self.frac_shared_read} + {self.frac_migratory})"
            )
        for attr in ("p_shared_read", "p_migratory", "p_hot"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{attr} must be in [0, 1], got {value}")
        if self.p_hot + self.p_shared_read + self.p_migratory > 1.0:
            raise WorkloadError(
                "hot + shared + migratory access probabilities exceed 1.0"
            )
        if self.hot_blocks_per_thread < 0:
            raise WorkloadError("hot_blocks_per_thread must be non-negative")
        if self.hot_blocks_per_thread >= self.private_blocks_per_thread:
            raise WorkloadError(
                "hot_blocks_per_thread must be smaller than the private "
                "pool per thread"
            )
        for attr in (
            "write_prob_shared",
            "write_prob_migratory",
            "write_prob_private",
        ):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{attr} must be in [0, 1], got {value}")
        if self.scan_window <= 0:
            raise WorkloadError("scan_window must be positive")
        if self.scan_window > self.shared_read_blocks and self.shared_read_blocks:
            raise WorkloadError(
                f"scan_window ({self.scan_window}) exceeds the shared-read "
                f"pool ({self.shared_read_blocks} blocks)"
            )
        if self.scan_lag < 0:
            raise WorkloadError("scan_lag must be non-negative")
        if self.scan_slide < 0:
            raise WorkloadError("scan_slide must be non-negative")
        if self.think_mean < 0:
            raise WorkloadError("think_mean must be non-negative")

    # ------------------------------------------------------------------
    # derived pool layout (block offsets within a VM's partition)
    # ------------------------------------------------------------------

    @property
    def shared_read_blocks(self) -> int:
        return int(self.footprint_blocks * self.frac_shared_read)

    @property
    def migratory_blocks(self) -> int:
        return max(1, int(self.footprint_blocks * self.frac_migratory))

    @property
    def private_blocks_per_thread(self) -> int:
        remaining = (
            self.footprint_blocks - self.shared_read_blocks - self.migratory_blocks
        )
        return max(1, remaining // self.threads)

    @property
    def p_private(self) -> float:
        """Probability of a (cold) private-pool access."""
        return 1.0 - self.p_hot - self.p_shared_read - self.p_migratory

    @property
    def partition_blocks(self) -> int:
        """Blocks of physical memory one instance needs."""
        return (
            self.shared_read_blocks
            + self.migratory_blocks
            + self.private_blocks_per_thread * self.threads
        )

    def pool_offsets(self) -> Dict[str, int]:
        """Start offset of each pool inside the VM partition."""
        return {
            "shared_read": 0,
            "migratory": self.shared_read_blocks,
            "private": self.shared_read_blocks + self.migratory_blocks,
        }

    def with_overrides(self, **kwargs) -> "WorkloadProfile":
        """A copy with some parameters replaced (for calibration)."""
        return replace(self, **kwargs)

    def scaled(self, factor: float) -> "WorkloadProfile":
        """A copy with the footprint (and scan geometry) scaled.

        Scaled simulation shrinks cache capacities and workload
        footprints by the same factor, preserving the footprint-to-
        capacity ratios that drive the paper's results.  ``factor=1``
        returns ``self``.
        """
        if factor <= 0:
            raise WorkloadError(f"scale factor must be positive, got {factor}")
        if factor == 1.0:
            return self
        footprint = max(self.threads * 4, int(self.footprint_blocks * factor))
        window = max(16, int(self.scan_window * factor))
        shared = int(footprint * self.frac_shared_read)
        if shared:
            window = min(window, shared)
        lag = max(1, int(self.scan_lag * factor))
        # the hot pool must stay inside the (now smaller) private pool
        migratory = max(1, int(footprint * self.frac_migratory))
        private_per_thread = max(1, (footprint - shared - migratory)
                                 // self.threads)
        hot = min(self.hot_blocks_per_thread,
                  max(0, private_per_thread - 1))
        return replace(
            self,
            footprint_blocks=footprint,
            scan_window=window,
            scan_lag=lag,
            hot_blocks_per_thread=hot,
        )

"""Reference-stream generators.

:class:`ThreadTrace` turns a :class:`~repro.workloads.profile.WorkloadProfile`
into an infinite, deterministic stream of ``(block, is_write, think)``
tuples for one thread.  Generation is vectorized in batches so the
generator never becomes the simulation bottleneck.

The pipelined-scan model of the shared-read pool (see the profile
module docstring) is implemented here: thread ``t`` samples uniformly
within a window of ``scan_window`` blocks whose start advances
``scan_slide`` blocks per reference, offset behind thread ``t-1`` by
``scan_lag`` blocks on the same circular track.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from ..errors import WorkloadError
from ..sim.records import MemoryReference
from .profile import WorkloadProfile

__all__ = ["ThreadTrace", "WorkloadInstance"]

Ref = Tuple[int, int, int]


class ThreadTrace:
    """Infinite reference stream of one workload thread.

    Parameters
    ----------
    profile:
        The workload's statistical model.
    thread_index:
        Index of this thread within the workload instance (0-based).
    base_block:
        First physical block of the VM's memory partition; all emitted
        blocks are offset by it, so different VMs can never alias.
    rng:
        Private random stream (see :class:`repro.sim.rng.RngFactory`).
    batch_size:
        References generated per vectorized batch.
    phases:
        Optional cyclic phase schedule (see
        :mod:`repro.workloads.phases`): each phase applies behavioural
        overrides to the profile for a bounded number of references.
        Batches never cross a phase boundary, so phase lengths are
        exact.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        thread_index: int,
        base_block: int,
        rng: np.random.Generator,
        batch_size: int = 4096,
        phases=None,
    ):
        if not 0 <= thread_index < profile.threads:
            raise WorkloadError(
                f"thread_index {thread_index} out of range for "
                f"{profile.threads}-thread profile {profile.name!r}"
            )
        if batch_size <= 0:
            raise WorkloadError("batch_size must be positive")
        self.profile = profile
        self.thread_index = thread_index
        self.base_block = base_block
        self.batch_size = batch_size
        self._rng = rng

        offsets = profile.pool_offsets()
        self._shared_base = base_block + offsets["shared_read"]
        self._mig_base = base_block + offsets["migratory"]
        self._priv_base = (
            base_block
            + offsets["private"]
            + thread_index * profile.private_blocks_per_thread
        )
        self._shared_size = profile.shared_read_blocks
        self._mig_size = profile.migratory_blocks
        self._priv_size = profile.private_blocks_per_thread
        # thread 0 leads the pipelined scan; thread t trails by t*lag
        lead = (profile.threads - 1 - thread_index) * profile.scan_lag
        self._scan_start = lead % self._shared_size if self._shared_size else 0

        self._count = 0  # total references generated (drives the scan)
        self._pending: List[Ref] = []
        self._phases = tuple(phases) if phases else ()
        self._phase_profiles = tuple(
            phase.apply_to(profile) for phase in self._phases
        )
        self._phase_cycle_refs = sum(p.refs for p in self._phases)
        # scenario actuation state (see repro.scenarios): a think-cycle
        # multiplier applied at consumption time.  1.0 leaves the
        # stream untouched, so non-scenario runs stay byte-identical.
        self._load_scale = 1.0

    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Ref]:
        return self

    def __next__(self) -> Ref:
        if not self._pending:
            self._refill()
        ref = self._pending.pop()
        scale = self._load_scale
        if scale != 1.0:
            return (ref[0], ref[1], int(ref[2] * scale))
        return ref

    def references(self) -> Iterator[MemoryReference]:
        """The same stream as typed :class:`MemoryReference` records."""
        for block, access, think in self:
            yield MemoryReference(block, access, think)

    def take_batch(self, n: int) -> Tuple[List[int], List[int], List[int]]:
        """Consume the next ``n`` references as three parallel columns.

        Returns ``(blocks, writes, thinks)`` covering *exactly* the same
        references, in the same order, as ``n`` calls to ``__next__`` —
        the batched engine's bulk entry point.  Mixing ``take_batch``
        and iteration is safe: any references already buffered for the
        iterator are consumed first.
        """
        if n <= 0:
            raise WorkloadError("take_batch size must be positive")
        rows: List[Ref] = []
        while len(rows) < n:
            if not self._pending:
                self._refill()
            take = min(n - len(rows), len(self._pending))
            # _pending is stored reversed (pop() from the end yields
            # generation order), so the next `take` refs are the tail.
            chunk = self._pending[-take:]
            del self._pending[-take:]
            chunk.reverse()
            rows.extend(chunk)
        blocks, writes, thinks = zip(*rows)
        scale = self._load_scale
        if scale != 1.0:
            thinks = [int(t * scale) for t in thinks]
        return list(blocks), list(writes), list(thinks)

    # ------------------------------------------------------------------
    # scenario actuation (see repro.scenarios.hook)
    # ------------------------------------------------------------------

    def set_load_scale(self, scale: float) -> None:
        """Scale all subsequent think cycles by ``scale``.

        The scenario layer's load-curve actuator: <1 models higher
        offered load (references issue faster), >1 lighter load.  The
        scale applies at consumption time, so the random streams —
        hence the *block* sequence — are unchanged, and a scale of 1.0
        restores the exact unscaled stream.
        """
        if scale <= 0:
            raise WorkloadError(
                f"load scale must be positive, got {scale}")
        self._load_scale = float(scale)

    def retarget(self, **overrides) -> None:
        """Switch the trace's behavioural parameters mid-run.

        The scenario layer's phase-switch actuator: replaces the
        profile with a behavioural variant (the same parameter set a
        :class:`~repro.workloads.phases.Phase` may override — the pool
        layout is fixed at launch) and drops any pre-generated
        references, so the switch takes effect at the very next
        reference consumed.  Deterministic: actuated at the same cycle
        with the same overrides, two runs generate identical streams.
        """
        from .phases import BEHAVIOURAL_PARAMS

        for param in overrides:
            if param not in BEHAVIOURAL_PARAMS:
                raise WorkloadError(
                    f"retarget of structural or unknown parameter "
                    f"{param!r}; allowed: {sorted(BEHAVIOURAL_PARAMS)}"
                )
        variant = self.profile.with_overrides(**overrides)
        self.profile = variant
        self._phase_profiles = tuple(
            phase.apply_to(variant) for phase in self._phases
        )
        self._pending.clear()

    # ------------------------------------------------------------------

    def _current_phase(self):
        """(effective profile, refs left in the current phase)."""
        if not self._phases:
            return self.profile, self.batch_size
        position = self._count % self._phase_cycle_refs
        for phase, variant in zip(self._phases, self._phase_profiles):
            if position < phase.refs:
                return variant, phase.refs - position
            position -= phase.refs
        raise AssertionError("phase schedule exhausted")  # pragma: no cover

    def _refill(self) -> None:
        profile, phase_left = self._current_phase()
        n = min(self.batch_size, phase_left)
        rng = self._rng

        u = rng.random(n)
        p_h = profile.p_hot
        p_s = p_h + profile.p_shared_read
        p_m = p_s + profile.p_migratory
        is_hot = u < p_h
        is_shared = (u >= p_h) & (u < p_s)
        is_mig = (u >= p_s) & (u < p_m)
        is_priv = u >= p_m

        blocks = np.empty(n, dtype=np.int64)

        if is_hot.any():
            hot = self._priv_base + rng.integers(
                0, max(1, profile.hot_blocks_per_thread), n
            )
            blocks[is_hot] = hot[is_hot]

        if self._shared_size and is_shared.any():
            counts = self._count + np.arange(n, dtype=np.int64)
            pos = self._scan_start + (counts * profile.scan_slide).astype(np.int64)
            offs = rng.integers(0, profile.scan_window, n)
            shared_blocks = self._shared_base + (pos + offs) % self._shared_size
            blocks[is_shared] = shared_blocks[is_shared]
        elif is_shared.any():
            # no shared pool configured: fold into private
            is_priv |= is_shared
            is_shared[:] = False

        if is_mig.any():
            mig = self._mig_base + self._sample_powerlaw(
                rng, n, self._mig_size, profile.skew_migratory
            )
            blocks[is_mig] = mig[is_mig]

        if is_priv.any():
            priv = self._priv_base + self._sample_powerlaw(
                rng, n, self._priv_size, profile.skew_private
            )
            blocks[is_priv] = priv[is_priv]

        write_prob = np.where(
            is_shared,
            profile.write_prob_shared,
            np.where(is_mig, profile.write_prob_migratory, profile.write_prob_private),
        )
        writes = (rng.random(n) < write_prob).astype(np.int64)

        if profile.think_mean > 0:
            p_think = 1.0 / (1.0 + profile.think_mean)
            thinks = rng.geometric(p_think, n) - 1
        else:
            thinks = np.zeros(n, dtype=np.int64)

        self._count += n
        batch = list(zip(blocks.tolist(), writes.tolist(), thinks.tolist()))
        batch.reverse()  # pop() then yields in generation order
        self._pending = batch

    @staticmethod
    def _sample_powerlaw(
        rng: np.random.Generator, size: int, n: int, skew: float
    ) -> np.ndarray:
        u = rng.random(size)
        return (n * u**skew).astype(np.int64)

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    def state(self) -> dict:
        """Serializable generator state (see :mod:`.checkpoint`)."""
        return {
            "thread_index": self.thread_index,
            "base_block": self.base_block,
            "batch_size": self.batch_size,
            "count": self._count,
            "pending": list(self._pending),
            "rng_state": self._rng.bit_generator.state,
            "load_scale": self._load_scale,
        }

    def restore(self, state: dict) -> None:
        """Restore state captured by :meth:`state`."""
        if state["thread_index"] != self.thread_index:
            raise WorkloadError(
                f"checkpoint is for thread {state['thread_index']}, "
                f"not {self.thread_index}"
            )
        if state["base_block"] != self.base_block:
            raise WorkloadError(
                "checkpoint base_block does not match this placement "
                f"({state['base_block']} != {self.base_block})"
            )
        self.batch_size = state["batch_size"]
        self._count = state["count"]
        self._pending = [tuple(ref) for ref in state["pending"]]
        self._rng.bit_generator.state = state["rng_state"]
        self._load_scale = float(state.get("load_scale", 1.0))


class WorkloadInstance:
    """One running copy of a workload: all of its thread traces.

    Parameters
    ----------
    profile:
        The workload model.
    instance_id:
        Distinguishes replicated copies in a mix (e.g. the three TPC-W
        copies of Mix 1); mixed into each thread's RNG stream key.
    base_block:
        Start of the VM's physical partition.
    rng_factory_stream:
        Callable ``key -> numpy Generator`` providing named streams
        (typically ``RngFactory.stream``).
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        instance_id: int,
        base_block: int,
        rng_stream,
        batch_size: int = 4096,
        phases=None,
    ):
        self.profile = profile
        self.instance_id = instance_id
        self.base_block = base_block
        self.traces = [
            ThreadTrace(
                profile,
                thread_index=t,
                base_block=base_block,
                rng=rng_stream(f"workload/{profile.name}/{instance_id}/thread/{t}"),
                batch_size=batch_size,
                phases=phases,
            )
            for t in range(profile.threads)
        ]

    @property
    def num_threads(self) -> int:
        return self.profile.threads

    def trace(self, thread_index: int) -> ThreadTrace:
        return self.traces[thread_index]

    def state(self) -> dict:
        return {
            "profile": self.profile.name,
            "instance_id": self.instance_id,
            "base_block": self.base_block,
            "threads": [trace.state() for trace in self.traces],
        }

    def restore(self, state: dict) -> None:
        if state["profile"] != self.profile.name:
            raise WorkloadError(
                f"checkpoint is for workload {state['profile']!r}, "
                f"not {self.profile.name!r}"
            )
        if len(state["threads"]) != len(self.traces):
            raise WorkloadError("checkpoint thread count mismatch")
        for trace, thread_state in zip(self.traces, state["threads"]):
            trace.restore(thread_state)

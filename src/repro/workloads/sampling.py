"""Locality samplers for synthetic address streams.

Commercial workloads have heavy-tailed reuse: a small hot set absorbs
most references while a long tail of blocks is touched rarely.  The
samplers here generate such distributions in O(1) memory and fully
vectorized form, which is what lets the trace generators keep up with
the simulator.

:class:`PowerLawSampler` draws index ``i = floor(n * u**skew)`` for
``u ~ U(0,1)``; the CDF is ``P(i < x) = (x/n)**(1/skew)``, so ``skew=1``
is uniform and larger values concentrate mass near index 0.  It is a
smooth stand-in for a Zipf distribution that needs no per-item CDF
table even for million-block pools.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError

__all__ = ["PowerLawSampler", "UniformSampler"]


class PowerLawSampler:
    """Heavy-tailed sampler over ``[0, n)``.

    Parameters
    ----------
    n:
        Pool size.
    skew:
        Locality exponent; 1.0 is uniform, larger is more skewed.
        The fraction of mass on the hottest ``k`` items is
        ``(k/n)**(1/skew)`` — e.g. ``skew=3`` puts ~46% of accesses on
        the hottest 10% of blocks.
    """

    def __init__(self, n: int, skew: float = 1.0):
        if n <= 0:
            raise WorkloadError(f"pool size must be positive, got {n}")
        if skew < 1.0:
            raise WorkloadError(f"skew must be >= 1.0, got {skew}")
        self.n = n
        self.skew = skew

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` indices as an int64 array."""
        u = rng.random(size)
        return (self.n * u**self.skew).astype(np.int64)

    def mass_on_hottest(self, k: int) -> float:
        """Analytic fraction of accesses landing on the hottest ``k``."""
        if k >= self.n:
            return 1.0
        return float((k / self.n) ** (1.0 / self.skew))

    def __repr__(self) -> str:
        return f"PowerLawSampler(n={self.n}, skew={self.skew})"


class UniformSampler(PowerLawSampler):
    """Uniform sampler over ``[0, n)`` (a ``skew=1`` power law)."""

    def __init__(self, n: int):
        super().__init__(n, skew=1.0)

    def __repr__(self) -> str:
        return f"UniformSampler(n={self.n})"

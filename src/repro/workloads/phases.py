"""Workload phases (Section VII's phase-analysis direction).

The paper notes that consolidated behaviour "may be dependent upon how
the specific phases of workloads interacted with each other" and that
aligning different phase combinations "would give ... an indication of
the range of interference."  This module adds phases to the synthetic
workload models: a :class:`Phase` is a reference-count-bounded override
of a profile's *behavioural* parameters (access mix, write
probabilities, locality, scan speed); a phase plan is a named cyclic
schedule of phases that a :class:`~repro.workloads.generator.ThreadTrace`
replays.

Structural parameters (footprint, pool split, thread count) cannot
change mid-run — the VM's memory partition is fixed at launch, exactly
as in the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import WorkloadError
from .profile import WorkloadProfile

__all__ = [
    "Phase",
    "BEHAVIOURAL_PARAMS",
    "register_phase_plan",
    "get_phase_plan",
    "phase_plan_names",
]

#: profile fields a phase may override (everything that does not
#: change the VM's memory layout)
BEHAVIOURAL_PARAMS = frozenset({
    "p_hot",
    "p_shared_read",
    "p_migratory",
    "write_prob_shared",
    "write_prob_migratory",
    "write_prob_private",
    "scan_window",
    "scan_slide",
    "skew_migratory",
    "skew_private",
    "think_mean",
})


@dataclass(frozen=True)
class Phase:
    """One phase: ``refs`` references with ``overrides`` applied.

    ``overrides`` is a tuple of ``(param, value)`` pairs (kept as a
    tuple so phases stay hashable for the experiment cache).
    """

    name: str
    refs: int
    overrides: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.refs <= 0:
            raise WorkloadError(f"phase {self.name!r} needs positive refs")
        for param, _value in self.overrides:
            if param not in BEHAVIOURAL_PARAMS:
                raise WorkloadError(
                    f"phase {self.name!r} overrides structural or unknown "
                    f"parameter {param!r}; allowed: "
                    f"{sorted(BEHAVIOURAL_PARAMS)}"
                )

    def apply_to(self, profile: WorkloadProfile) -> WorkloadProfile:
        """The profile variant in effect during this phase."""
        if not self.overrides:
            return profile
        return profile.with_overrides(**dict(self.overrides))


_PHASE_PLANS: Dict[str, Tuple[Phase, ...]] = {}


def register_phase_plan(name: str, phases: Sequence[Phase],
                        overwrite: bool = False) -> Tuple[Phase, ...]:
    """Register a named cyclic phase schedule for use in experiment
    specs (``ExperimentSpec(phase_plan="burst")``)."""
    if not phases:
        raise WorkloadError("a phase plan needs at least one phase")
    key = name.lower()
    if key in _PHASE_PLANS and not overwrite:
        raise WorkloadError(
            f"phase plan {name!r} already registered "
            "(pass overwrite=True to replace it)"
        )
    plan = tuple(phases)
    _PHASE_PLANS[key] = plan
    return plan


def get_phase_plan(name: str) -> Tuple[Phase, ...]:
    try:
        return _PHASE_PLANS[name.lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown phase plan {name!r}; available: {sorted(_PHASE_PLANS)}"
        ) from None


def phase_plan_names() -> List[str]:
    return sorted(_PHASE_PLANS)


# ----------------------------------------------------------------------
# built-in plans used by the phase ablation
# ----------------------------------------------------------------------

register_phase_plan("steady", [Phase("steady", refs=1_000_000)])

register_phase_plan(
    "burst",
    [
        # a compute/lookup phase: private-heavy, light sharing
        Phase("compute", refs=4000, overrides=(
            ("p_shared_read", 0.10),
            ("p_migratory", 0.01),
        )),
        # a communication phase: scans and synchronization dominate
        Phase("communicate", refs=4000, overrides=(
            ("p_shared_read", 0.45),
            ("p_migratory", 0.10),
            ("scan_slide", 0.5),
        )),
    ],
)

"""Workload-statistics measurement and calibration (Table II).

The paper characterizes each workload by running it alone on private
caches and measuring (a) the percentage of last-private-level misses
served by cache-to-cache transfers, split clean/dirty, and (b) the
number of distinct 64-byte blocks touched.  :func:`measure_workload_statistics`
reproduces that measurement for a profile; the benchmark
``benchmarks/test_table2_workload_stats.py`` prints the resulting
table, and the profile parameters in :mod:`repro.workloads.library`
were tuned against this function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .profile import WorkloadProfile

__all__ = [
    "WorkloadStatistics",
    "measure_workload_statistics",
    "count_blocks_touched",
    "calibration_table",
]


@dataclass(frozen=True)
class WorkloadStatistics:
    """Table II's row for one workload."""

    workload: str
    c2c_fraction: float
    clean_fraction: float
    dirty_fraction: float
    blocks_touched: int
    blocks_touched_fullscale: int
    l2_miss_rate: float

    def row(self) -> tuple:
        """(name, c2c%, clean%, dirty%, blocks) as printable values."""
        return (
            self.workload,
            round(100 * self.c2c_fraction),
            round(100 * self.clean_fraction),
            round(100 * self.dirty_fraction),
            self.blocks_touched_fullscale,
        )


def measure_workload_statistics(
    workload: str,
    measured_refs: Optional[int] = None,
    seed: int = 0,
    scale: Optional[float] = None,
) -> WorkloadStatistics:
    """Run one workload on the private-cache configuration and measure
    its Table II statistics.

    The run mirrors the paper's characterization setup: a single
    4-thread instance, every L2 partition private to its core.  The
    blocks-touched count is measured on the generated stream and also
    reported re-scaled to the paper's full-size footprint.
    """
    # imported lazily: workloads must not depend on the machine stack
    from ..core.experiment import DEFAULT_SCALE, ExperimentSpec, run_experiment

    if scale is None:
        scale = DEFAULT_SCALE
    spec = ExperimentSpec(
        mix=f"iso-{workload}",
        sharing="private",
        policy="affinity",
        seed=seed,
        measured_refs=measured_refs,
        scale=scale,
    )
    result = run_experiment(spec)
    vm = result.vm_metrics[0]
    touched = count_blocks_touched(
        result.spec.mix[len("iso-"):],
        refs=result.spec.measured_refs + result.spec.warmup_refs,
        seed=result.spec.seed,
        scale=scale,
    )
    return WorkloadStatistics(
        workload=workload,
        c2c_fraction=vm.c2c_fraction,
        clean_fraction=vm.c2c_clean_fraction,
        dirty_fraction=vm.c2c_dirty_fraction,
        blocks_touched=touched,
        blocks_touched_fullscale=int(touched / scale),
        l2_miss_rate=vm.miss_rate,
    )


def calibration_table(
    workloads,
    measured_refs: Optional[int] = None,
    seed: int = 0,
    scale: Optional[float] = None,
) -> str:
    """Render a Table-II-style calibration table for ``workloads``.

    One measured row per workload (c2c%, clean%, dirty%, full-scale
    blocks touched, private-L2 miss rate) — the rendered calibration
    artefact for the scenario workload families (``repro scenario
    --calibrate`` prints it; the golden rows live in
    ``tests/workloads/test_new_families.py``).
    """
    from ..analysis.report import format_table

    rows = []
    for workload in workloads:
        stats = measure_workload_statistics(
            workload, measured_refs=measured_refs, seed=seed, scale=scale)
        name, c2c, clean, dirty, blocks = stats.row()
        rows.append([name, f"{c2c}%", f"{clean}%", f"{dirty}%",
                     f"{blocks:,}", round(stats.l2_miss_rate, 3)])
    return format_table(
        ["Workload", "C2C", "Clean", "Dirty", "Blocks", "L2 miss rate"],
        rows, title="Workload calibration (Table II procedure)")


def count_blocks_touched(
    workload: str,
    refs: int,
    seed: int = 0,
    scale: float = 1.0,
    profile: Optional[WorkloadProfile] = None,
) -> int:
    """Distinct blocks touched by one instance over ``refs`` references
    per thread (the measurement behind Table II's block counts)."""
    from ..sim.rng import RngFactory
    from .generator import WorkloadInstance
    from .library import get_profile

    if profile is None:
        profile = get_profile(workload)
    profile = profile.scaled(scale)
    factory = RngFactory(seed or 1)
    instance = WorkloadInstance(
        profile, instance_id=0, base_block=0, rng_stream=factory.stream
    )
    touched: set = set()
    for trace in instance.traces:
        for _ in range(refs):
            block, _w, _t = next(trace)
            touched.add(block)
    return len(touched)

"""Workload checkpoints.

The paper runs every simulation from *workload checkpoints*: snapshots
taken after the OS has booted and the workload has been installed and
warmed, so each configuration replays the same transactions without
paying boot time (Section IV-A).  The analogue here is a serialized
snapshot of every thread generator's state — RNG state, scan position,
and any buffered references — so a restored instance continues the
*exact* same reference stream.

Checkpoints are JSON files; the RNG state dict produced by numpy's
``bit_generator.state`` is JSON-serializable for the default PCG64.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..errors import CheckpointError
from .generator import WorkloadInstance

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_to_json", "checkpoint_from_json"]

_FORMAT_VERSION = 1


def checkpoint_to_json(instance: WorkloadInstance) -> str:
    """Serialize a workload instance's generator state to JSON text."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "state": instance.state(),
    }
    try:
        return json.dumps(payload)
    except TypeError as exc:
        raise CheckpointError(
            f"workload state is not JSON-serializable: {exc}"
        ) from exc


def checkpoint_from_json(instance: WorkloadInstance, text: str) -> None:
    """Restore a workload instance from JSON produced by
    :func:`checkpoint_to_json`.

    The instance must have been constructed with the same profile,
    instance id, and memory placement as the checkpointed one.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"malformed checkpoint: {exc}") from exc
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    if "state" not in payload:
        raise CheckpointError("checkpoint has no 'state' section")
    instance.restore(payload["state"])


def save_checkpoint(instance: WorkloadInstance, path: Union[str, Path]) -> Path:
    """Write a checkpoint file; returns the path written."""
    path = Path(path)
    path.write_text(checkpoint_to_json(instance))
    return path


def load_checkpoint(instance: WorkloadInstance, path: Union[str, Path]) -> None:
    """Restore ``instance`` from a checkpoint file."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint file {path} does not exist")
    checkpoint_from_json(instance, path.read_text())

"""Calibrated profiles of the paper's four commercial workloads.

Each profile's prose fields come from Table I; the numeric parameters
are calibrated so that simulating the paper's private-cache
configuration (16 private 1 MB L2s, one 4-thread instance) reproduces
the workload statistics of Table II:

=========  =====  ======  ======  ===============
Workload   c2c%   clean%  dirty%  blocks accessed
=========  =====  ======  ======  ===============
TPC-W       15%    84%     16%    1,125 K
SPECjbb     52%    94%      6%      606 K
TPC-H       69%    43%     57%      172 K
SPECweb     37%    93%      7%      986 K
=========  =====  ======  ======  ===============

The qualitative levers:

* **TPC-W** — huge footprint dominated by per-transaction private data;
  most misses go to memory (low c2c) and the workload thrashes any
  cache partition it is squeezed into.
* **SPECjbb** — large read-shared pool (Java heap + middleware code)
  scanned in a tight pipeline: half its references are shared-read, so
  misses are largely clean transfers from the thread ahead.
* **TPC-H** — small footprint but intense join/merge synchronization:
  a hot migratory pool makes most transfers dirty.
* **SPECweb** — like SPECjbb with a bigger footprint and looser
  sharing.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import WorkloadError
from .profile import WorkloadProfile

__all__ = [
    "TPCW",
    "TPCH",
    "SPECJBB",
    "SPECWEB",
    "WORKLOADS",
    "get_profile",
    "workload_names",
]


TPCW = WorkloadProfile(
    name="tpcw",
    description="Web commerce modeling online bookstore",
    setup="IBM DB2 v6.1",
    execution="Browsing mix for 25 web transactions",
    footprint_blocks=1_125_000,
    threads=4,
    frac_shared_read=0.22,
    frac_migratory=0.004,
    p_shared_read=0.17,
    p_migratory=0.024,
    write_prob_shared=0.02,
    write_prob_migratory=0.50,
    write_prob_private=0.15,
    scan_window=5000,
    scan_lag=1200,
    scan_slide=0.30,
    skew_migratory=3.0,
    skew_private=1.9,
    think_mean=2.0,
)

SPECJBB = WorkloadProfile(
    name="specjbb",
    description=(
        "Order processing application for wholesaler; performance of "
        "Java-based middleware"
    ),
    setup="3-tier client-server w/ six warehouses",
    execution="6400 requests w/ 15 seconds of warm-up time",
    footprint_blocks=606_000,
    threads=4,
    frac_shared_read=0.55,
    frac_migratory=0.006,
    p_shared_read=0.44,
    p_migratory=0.012,
    write_prob_shared=0.01,
    write_prob_migratory=0.50,
    write_prob_private=0.18,
    scan_window=3000,
    scan_lag=700,
    scan_slide=0.22,
    skew_migratory=3.0,
    skew_private=3.0,
    think_mean=2.0,
)

TPCH = WorkloadProfile(
    name="tpch",
    description="Decision support",
    setup="IBM DB2 v6.1",
    execution=(
        "Query #12 (shipping modes & order priority) on 512 megabyte "
        "database w/ 1 GB of memory"
    ),
    footprint_blocks=172_000,
    threads=4,
    frac_shared_read=0.50,
    frac_migratory=0.08,
    p_shared_read=0.24,
    p_migratory=0.195,
    write_prob_shared=0.005,
    write_prob_migratory=0.55,
    write_prob_private=0.10,
    scan_window=2500,
    scan_lag=600,
    scan_slide=0.12,
    skew_migratory=1.8,
    skew_private=3.6,
    think_mean=2.0,
)

SPECWEB = WorkloadProfile(
    name="specweb",
    description="World-wide web server",
    setup="3 tiers w/ Zeus Web Server 3.3.7",
    execution="300 HTTP requests",
    footprint_blocks=986_000,
    threads=4,
    frac_shared_read=0.45,
    frac_migratory=0.005,
    p_shared_read=0.36,
    p_migratory=0.014,
    write_prob_shared=0.01,
    write_prob_migratory=0.50,
    write_prob_private=0.14,
    scan_window=4000,
    scan_lag=900,
    scan_slide=0.28,
    skew_migratory=3.0,
    skew_private=2.4,
    think_mean=2.0,
)


WORKLOADS: Dict[str, WorkloadProfile] = {
    profile.name: profile for profile in (TPCW, SPECJBB, TPCH, SPECWEB)
}
"""Registry of the paper's workloads, keyed by short name."""


def get_profile(name: str) -> WorkloadProfile:
    """Look a profile up by name (``tpcw``, ``tpch``, ``specjbb``,
    ``specweb``); raises :class:`~repro.errors.WorkloadError` otherwise."""
    try:
        return WORKLOADS[name.lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None


def workload_names() -> List[str]:
    """Names of all registered workloads, sorted."""
    return sorted(WORKLOADS)

"""Calibrated profiles of the paper's four commercial workloads.

Each profile's prose fields come from Table I; the numeric parameters
are calibrated so that simulating the paper's private-cache
configuration (16 private 1 MB L2s, one 4-thread instance) reproduces
the workload statistics of Table II:

=========  =====  ======  ======  ===============
Workload   c2c%   clean%  dirty%  blocks accessed
=========  =====  ======  ======  ===============
TPC-W       15%    84%     16%    1,125 K
SPECjbb     52%    94%      6%      606 K
TPC-H       69%    43%     57%      172 K
SPECweb     37%    93%      7%      986 K
=========  =====  ======  ======  ===============

The qualitative levers:

* **TPC-W** — huge footprint dominated by per-transaction private data;
  most misses go to memory (low c2c) and the workload thrashes any
  cache partition it is squeezed into.
* **SPECjbb** — large read-shared pool (Java heap + middleware code)
  scanned in a tight pipeline: half its references are shared-read, so
  misses are largely clean transfers from the thread ahead.
* **TPC-H** — small footprint but intense join/merge synchronization:
  a hot migratory pool makes most transfers dirty.
* **SPECweb** — like SPECjbb with a bigger footprint and looser
  sharing.

Scenario workload families
--------------------------
The scenario subsystem (:mod:`repro.scenarios`) adds four further
statistical families, calibrated with the same Table-II procedure
(:func:`~repro.workloads.calibrate.measure_workload_statistics` on the
private-cache configuration; golden rows live in
``tests/workloads/test_new_families.py`` and ``docs/scenarios.md``):

* **btree** — pointer-chasing index lookups (a ``btree``-like kernel):
  random key probes with poor private locality; the shared upper index
  levels give a modest clean-transfer fraction.
* **gups** — uniform random-access updates (a ``gups``-like kernel):
  a huge, nearly uniformly-touched table updated read-modify-write;
  almost every miss goes to memory (c2c ≈ 0).
* **xsbench** — streaming lookups in a large read-only shared table
  (an ``xsbench``-like kernel): the pipelined scan dominates, so
  transfers are overwhelmingly clean, like SPECjbb but with a larger
  pool and faster scan.
* **silo** — in-memory OLTP (a ``silo``-like kernel): version counters
  and commit records form a hot migratory pool, so a large share of
  transfers are dirty, like TPC-H.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import WorkloadError
from .profile import WorkloadProfile

__all__ = [
    "TPCW",
    "TPCH",
    "SPECJBB",
    "SPECWEB",
    "BTREE",
    "GUPS",
    "XSBENCH",
    "SILO",
    "WORKLOADS",
    "PAPER_WORKLOADS",
    "SCENARIO_WORKLOADS",
    "get_profile",
    "workload_names",
]


TPCW = WorkloadProfile(
    name="tpcw",
    description="Web commerce modeling online bookstore",
    setup="IBM DB2 v6.1",
    execution="Browsing mix for 25 web transactions",
    footprint_blocks=1_125_000,
    threads=4,
    frac_shared_read=0.22,
    frac_migratory=0.004,
    p_shared_read=0.17,
    p_migratory=0.024,
    write_prob_shared=0.02,
    write_prob_migratory=0.50,
    write_prob_private=0.15,
    scan_window=5000,
    scan_lag=1200,
    scan_slide=0.30,
    skew_migratory=3.0,
    skew_private=1.9,
    think_mean=2.0,
)

SPECJBB = WorkloadProfile(
    name="specjbb",
    description=(
        "Order processing application for wholesaler; performance of "
        "Java-based middleware"
    ),
    setup="3-tier client-server w/ six warehouses",
    execution="6400 requests w/ 15 seconds of warm-up time",
    footprint_blocks=606_000,
    threads=4,
    frac_shared_read=0.55,
    frac_migratory=0.006,
    p_shared_read=0.44,
    p_migratory=0.012,
    write_prob_shared=0.01,
    write_prob_migratory=0.50,
    write_prob_private=0.18,
    scan_window=3000,
    scan_lag=700,
    scan_slide=0.22,
    skew_migratory=3.0,
    skew_private=3.0,
    think_mean=2.0,
)

TPCH = WorkloadProfile(
    name="tpch",
    description="Decision support",
    setup="IBM DB2 v6.1",
    execution=(
        "Query #12 (shipping modes & order priority) on 512 megabyte "
        "database w/ 1 GB of memory"
    ),
    footprint_blocks=172_000,
    threads=4,
    frac_shared_read=0.50,
    frac_migratory=0.08,
    p_shared_read=0.24,
    p_migratory=0.195,
    write_prob_shared=0.005,
    write_prob_migratory=0.55,
    write_prob_private=0.10,
    scan_window=2500,
    scan_lag=600,
    scan_slide=0.12,
    skew_migratory=1.8,
    skew_private=3.6,
    think_mean=2.0,
)

SPECWEB = WorkloadProfile(
    name="specweb",
    description="World-wide web server",
    setup="3 tiers w/ Zeus Web Server 3.3.7",
    execution="300 HTTP requests",
    footprint_blocks=986_000,
    threads=4,
    frac_shared_read=0.45,
    frac_migratory=0.005,
    p_shared_read=0.36,
    p_migratory=0.014,
    write_prob_shared=0.01,
    write_prob_migratory=0.50,
    write_prob_private=0.14,
    scan_window=4000,
    scan_lag=900,
    scan_slide=0.28,
    skew_migratory=3.0,
    skew_private=2.4,
    think_mean=2.0,
)


# ----------------------------------------------------------------------
# scenario workload families (see the module docstring)
# ----------------------------------------------------------------------

BTREE = WorkloadProfile(
    name="btree",
    description="Pointer-chasing in-memory index (btree-like)",
    setup="In-memory B+-tree over a synthetic key space",
    execution="Random key probes with occasional inserts",
    footprint_blocks=450_000,
    threads=4,
    frac_shared_read=0.30,
    frac_migratory=0.006,
    p_shared_read=0.20,
    p_migratory=0.02,
    write_prob_shared=0.01,
    write_prob_migratory=0.50,
    write_prob_private=0.08,
    scan_window=6000,
    scan_lag=800,
    scan_slide=0.08,
    skew_migratory=3.0,
    skew_private=1.4,
    think_mean=2.0,
)

GUPS = WorkloadProfile(
    name="gups",
    description="Uniform random-access table updates (gups-like)",
    setup="Giant updates-per-second kernel on one large table",
    execution="Read-modify-write of uniformly random table entries",
    footprint_blocks=1_400_000,
    threads=4,
    frac_shared_read=0.02,
    frac_migratory=0.001,
    p_hot=0.30,
    p_shared_read=0.01,
    p_migratory=0.004,
    write_prob_shared=0.02,
    write_prob_migratory=0.50,
    write_prob_private=0.50,
    scan_window=1500,
    scan_lag=400,
    scan_slide=0.10,
    skew_migratory=3.0,
    skew_private=1.05,
    think_mean=2.0,
)

XSBENCH = WorkloadProfile(
    name="xsbench",
    description="Streaming lookups in a shared read-only table "
                "(xsbench-like)",
    setup="Unionized cross-section lookup table shared by all threads",
    execution="Continuous random macroscopic cross-section lookups",
    footprint_blocks=800_000,
    threads=4,
    frac_shared_read=0.75,
    frac_migratory=0.002,
    p_hot=0.30,
    p_shared_read=0.60,
    p_migratory=0.006,
    write_prob_shared=0.0,
    write_prob_migratory=0.50,
    write_prob_private=0.05,
    scan_window=3500,
    scan_lag=400,
    scan_slide=0.55,
    skew_migratory=3.0,
    skew_private=2.8,
    think_mean=2.0,
)

SILO = WorkloadProfile(
    name="silo",
    description="In-memory OLTP with optimistic concurrency "
                "(silo-like)",
    setup="Main-memory transaction engine, TPC-C-style new-order mix",
    execution="Short read-write transactions with commit-time "
              "validation",
    footprint_blocks=500_000,
    threads=4,
    frac_shared_read=0.30,
    frac_migratory=0.06,
    p_shared_read=0.15,
    p_migratory=0.17,
    write_prob_shared=0.01,
    write_prob_migratory=0.60,
    write_prob_private=0.12,
    scan_window=2800,
    scan_lag=650,
    scan_slide=0.15,
    skew_migratory=1.8,
    skew_private=3.2,
    think_mean=2.0,
)


PAPER_WORKLOADS: Dict[str, WorkloadProfile] = {
    profile.name: profile for profile in (TPCW, SPECJBB, TPCH, SPECWEB)
}
"""The paper's four commercial workloads (Tables I & II)."""

SCENARIO_WORKLOADS: Dict[str, WorkloadProfile] = {
    profile.name: profile for profile in (BTREE, GUPS, XSBENCH, SILO)
}
"""The scenario subsystem's additional workload families."""

WORKLOADS: Dict[str, WorkloadProfile] = {
    **PAPER_WORKLOADS,
    **SCENARIO_WORKLOADS,
}
"""Registry of all workloads, keyed by short name."""


def get_profile(name: str) -> WorkloadProfile:
    """Look a profile up by name (``tpcw``, ``tpch``, ``specjbb``,
    ``specweb``, or a scenario family ``btree``/``gups``/``xsbench``/
    ``silo``); raises :class:`~repro.errors.WorkloadError` otherwise."""
    try:
        return WORKLOADS[name.lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None


def workload_names() -> List[str]:
    """Names of all registered workloads, sorted."""
    return sorted(WORKLOADS)

"""Synthetic commercial workload models (Tables I & II)."""

from .calibrate import (
    WorkloadStatistics,
    count_blocks_touched,
    measure_workload_statistics,
)
from .checkpoint import (
    checkpoint_from_json,
    checkpoint_to_json,
    load_checkpoint,
    save_checkpoint,
)
from .generator import ThreadTrace, WorkloadInstance
from .library import (
    SPECJBB,
    SPECWEB,
    TPCH,
    TPCW,
    WORKLOADS,
    get_profile,
    workload_names,
)
from .phases import (
    Phase,
    get_phase_plan,
    phase_plan_names,
    register_phase_plan,
)
from .profile import WorkloadProfile
from .sampling import PowerLawSampler, UniformSampler

__all__ = [
    "WorkloadStatistics",
    "count_blocks_touched",
    "measure_workload_statistics",
    "checkpoint_from_json",
    "checkpoint_to_json",
    "load_checkpoint",
    "save_checkpoint",
    "ThreadTrace",
    "WorkloadInstance",
    "SPECJBB",
    "SPECWEB",
    "TPCH",
    "TPCW",
    "WORKLOADS",
    "get_profile",
    "workload_names",
    "WorkloadProfile",
    "PowerLawSampler",
    "UniformSampler",
    "Phase",
    "get_phase_plan",
    "phase_plan_names",
    "register_phase_plan",
]

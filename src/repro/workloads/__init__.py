"""Synthetic commercial workload models (Tables I & II)."""

from .calibrate import (
    WorkloadStatistics,
    calibration_table,
    count_blocks_touched,
    measure_workload_statistics,
)
from .checkpoint import (
    checkpoint_from_json,
    checkpoint_to_json,
    load_checkpoint,
    save_checkpoint,
)
from .generator import ThreadTrace, WorkloadInstance
from .library import (
    BTREE,
    GUPS,
    PAPER_WORKLOADS,
    SCENARIO_WORKLOADS,
    SILO,
    SPECJBB,
    SPECWEB,
    TPCH,
    TPCW,
    WORKLOADS,
    XSBENCH,
    get_profile,
    workload_names,
)
from .phases import (
    Phase,
    get_phase_plan,
    phase_plan_names,
    register_phase_plan,
)
from .profile import WorkloadProfile
from .sampling import PowerLawSampler, UniformSampler

__all__ = [
    "WorkloadStatistics",
    "calibration_table",
    "count_blocks_touched",
    "measure_workload_statistics",
    "checkpoint_from_json",
    "checkpoint_to_json",
    "load_checkpoint",
    "save_checkpoint",
    "ThreadTrace",
    "WorkloadInstance",
    "BTREE",
    "GUPS",
    "SILO",
    "SPECJBB",
    "SPECWEB",
    "TPCH",
    "TPCW",
    "XSBENCH",
    "PAPER_WORKLOADS",
    "SCENARIO_WORKLOADS",
    "WORKLOADS",
    "get_profile",
    "workload_names",
    "WorkloadProfile",
    "PowerLawSampler",
    "UniformSampler",
    "Phase",
    "get_phase_plan",
    "phase_plan_names",
    "register_phase_plan",
]

"""Machine model: configuration, placement, and the CMP chip."""

from .chip import Chip
from .config import DEFAULT_MEMORY_TILES, MachineConfig, SharingDegree
from .placement import DomainPlacement

__all__ = [
    "Chip",
    "DEFAULT_MEMORY_TILES",
    "MachineConfig",
    "SharingDegree",
    "DomainPlacement",
]

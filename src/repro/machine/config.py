"""Machine configuration (Table III) and cache-sharing design points.

The paper's machine is fixed except for the L2 sharing degree:

==============  ==========================
Cores           16 in-order
Interconnect    2-D packet-switched mesh
L0 (private)    8 KB / 1 cycle
L1 (private)    64 KB / 2 cycles
L2              16 MB / 6 cycles, shared by 1/2/4/8/16 cores
Memory latency  150 cycles
==============  ==========================

:class:`SharingDegree` names the five L2 design points of Section III;
:class:`MachineConfig` bundles everything the chip builder needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from ..caches.geometry import L0_GEOMETRY, L1_GEOMETRY, CacheGeometry
from ..errors import ConfigurationError

__all__ = [
    "SharingDegree",
    "MachineConfig",
    "DEFAULT_MEMORY_TILES",
    "parse_core_speeds",
    "parse_domain_assoc",
]


class SharingDegree(enum.IntEnum):
    """Cores per last-level-cache domain (Section III's design points).

    The paper labels configurations by the number of last-level caches:
    ``private`` = 16 caches, ``2-LL$`` = shared-8-way, ``4-LL$`` =
    shared-4-way, etc.  :meth:`label` produces those names.
    """

    PRIVATE = 1
    SHARED_2 = 2
    SHARED_4 = 4
    SHARED_8 = 8
    SHARED_16 = 16

    @classmethod
    def from_name(cls, name: str) -> "SharingDegree":
        """Parse ``"private"``, ``"shared-4"``, ``"shared"``, etc."""
        normalized = name.strip().lower().replace("_", "-")
        table = {
            "private": cls.PRIVATE,
            "shared-2": cls.SHARED_2,
            "shared-4": cls.SHARED_4,
            "shared-8": cls.SHARED_8,
            "shared-16": cls.SHARED_16,
            "shared": cls.SHARED_16,
            "full-shared": cls.SHARED_16,
            "fully-shared": cls.SHARED_16,
        }
        try:
            return table[normalized]
        except KeyError:
            raise ConfigurationError(
                f"unknown sharing degree {name!r}; choose from {sorted(table)}"
            ) from None

    def label(self, num_cores: int = 16) -> str:
        """The paper's configuration label, e.g. ``"4-LL$"``."""
        if self == SharingDegree.PRIVATE:
            return "private"
        if self == num_cores:
            return "shared"
        return f"{num_cores // int(self)}-LL$"

    def num_domains(self, num_cores: int = 16) -> int:
        if num_cores % int(self):
            raise ConfigurationError(
                f"{num_cores} cores do not divide into domains of {int(self)}"
            )
        return num_cores // int(self)


DEFAULT_MEMORY_TILES: Tuple[int, ...] = (0, 3, 12, 15)
"""Memory-controller tiles: the four corners of the 4x4 mesh."""


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to build a chip.

    Defaults reproduce Table III; the knobs exist for the scaling and
    sensitivity studies in the paper's future-work section.
    """

    num_cores: int = 16
    sharing: SharingDegree = SharingDegree.SHARED_4
    l2_total_bytes: int = 16 * 1024 * 1024
    l2_assoc: int = 16
    l2_latency: int = 6
    l2_service_time: int = 2
    l0_geometry: CacheGeometry = L0_GEOMETRY
    l1_geometry: CacheGeometry = L1_GEOMETRY
    memory_latency: int = 150
    memory_banks: int = 8
    memory_bank_occupancy: int = 36
    memory_channel_occupancy: int = 8
    memory_tiles: Tuple[int, ...] = DEFAULT_MEMORY_TILES
    hop_cycles: int = 4
    directory_latency: int = 3
    directory_cache_entries: int = 16 * 1024
    control_flits: int = 1
    data_flits: int = 5
    l2_replacement: str = "lru"
    # Heterogeneity knobs (both default to "homogeneous"):
    #   core_speeds — one relative speed per core (1.0 = Table III
    #   baseline); a core at 0.5 spends twice the compute cycles per
    #   reference.  l2_domain_assoc — one associativity per L2 domain,
    #   overriding the uniform l2_assoc; sets per domain stay constant
    #   so capacity scales with associativity.
    core_speeds: Tuple[float, ...] = ()
    l2_domain_assoc: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigurationError("num_cores must be positive")
        side = int(round(self.num_cores**0.5))
        if side * side != self.num_cores:
            raise ConfigurationError(
                f"num_cores must form a square mesh; got {self.num_cores}"
            )
        if self.num_cores % int(self.sharing):
            raise ConfigurationError(
                f"{self.num_cores} cores cannot be split into domains "
                f"of {int(self.sharing)}"
            )
        if self.l2_total_bytes % self.num_cores:
            raise ConfigurationError(
                "l2_total_bytes must divide evenly among cores"
            )
        if self.memory_tiles == DEFAULT_MEMORY_TILES and self.num_cores != 16:
            # adapt the default (4x4 corners) to the actual mesh corners
            object.__setattr__(self, "memory_tiles", self._corner_tiles())
        for tile in self.memory_tiles:
            if not 0 <= tile < self.num_cores:
                raise ConfigurationError(
                    f"memory tile {tile} outside the {self.num_cores}-tile mesh"
                )
        if not self.memory_tiles:
            raise ConfigurationError("need at least one memory controller tile")
        if self.memory_latency <= 0:
            raise ConfigurationError("memory_latency must be positive")
        if self.core_speeds:
            if len(self.core_speeds) != self.num_cores:
                raise ConfigurationError(
                    f"core_speeds needs one entry per core: got "
                    f"{len(self.core_speeds)} for {self.num_cores} cores"
                )
            for speed in self.core_speeds:
                if not speed > 0:
                    raise ConfigurationError(
                        f"core speeds must be positive, got {speed}"
                    )
        if self.l2_domain_assoc:
            if len(self.l2_domain_assoc) != self.num_domains:
                raise ConfigurationError(
                    f"l2_domain_assoc needs one entry per L2 domain: got "
                    f"{len(self.l2_domain_assoc)} for "
                    f"{self.num_domains} domains"
                )
            for assoc in self.l2_domain_assoc:
                if not isinstance(assoc, int) or assoc < 1:
                    raise ConfigurationError(
                        f"L2 domain associativity must be a positive "
                        f"integer, got {assoc!r}"
                    )

    # ------------------------------------------------------------------

    def _corner_tiles(self) -> Tuple[int, ...]:
        side = self.mesh_side
        return (0, side - 1, side * (side - 1), side * side - 1)

    @property
    def mesh_side(self) -> int:
        return int(round(self.num_cores**0.5))

    @property
    def cores_per_domain(self) -> int:
        return int(self.sharing)

    @property
    def num_domains(self) -> int:
        return self.num_cores // self.cores_per_domain

    def l2_geometry(self) -> CacheGeometry:
        """Geometry of one L2 domain at this sharing degree."""
        per_core = self.l2_total_bytes // self.num_cores
        return CacheGeometry(
            size_bytes=per_core * self.cores_per_domain,
            assoc=self.l2_assoc,
            latency=self.l2_latency,
        )

    def l2_domain_geometries(self) -> Tuple[CacheGeometry, ...]:
        """Per-domain L2 geometries, honouring ``l2_domain_assoc``.

        Asymmetric domains keep the uniform set count and vary ways,
        so every per-domain capacity stays realizable (power-of-two
        sets) while "big" and "small" partitions differ in both
        capacity and conflict tolerance.
        """
        base = self.l2_geometry()
        if not self.l2_domain_assoc:
            return (base,) * self.num_domains
        return tuple(
            CacheGeometry(
                size_bytes=base.num_sets * assoc * base.block_bytes,
                assoc=assoc,
                latency=self.l2_latency,
            )
            for assoc in self.l2_domain_assoc
        )

    def inverse_core_speeds(self) -> Tuple[float, ...]:
        """Per-core compute-cycle multipliers, or ``()`` if homogeneous.

        A core at speed ``s`` multiplies its think cycles by ``1/s``.
        An all-1.0 speed vector is reported as homogeneous so the
        engines keep their exact legacy arithmetic.
        """
        if not self.core_speeds:
            return ()
        if all(speed == 1.0 for speed in self.core_speeds):
            return ()
        return tuple(1.0 / speed for speed in self.core_speeds)

    @property
    def heterogeneous(self) -> bool:
        """True when speed classes or asymmetric L2 domains are set."""
        return bool(self.inverse_core_speeds() or self.l2_domain_assoc)

    def with_sharing(self, sharing) -> "MachineConfig":
        """Copy of this config at a different sharing degree."""
        if isinstance(sharing, str):
            sharing = SharingDegree.from_name(sharing)
        from dataclasses import replace

        return replace(self, sharing=sharing)

    def scaled(self, factor: float) -> "MachineConfig":
        """Copy with all cache capacities scaled by ``factor``.

        Latencies, core count, and topology are unchanged — scaled
        simulation shrinks capacity, not structure.  Used together with
        :meth:`repro.workloads.profile.WorkloadProfile.scaled`.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        if factor == 1.0:
            return self
        from dataclasses import replace

        new_l2_total = int(self.l2_total_bytes * factor)
        # keep one full set per domain at minimum
        min_total = self.num_cores * 64 * self.l2_assoc
        new_l2_total = max(new_l2_total, min_total)
        # L0/L1 shrink more gently: their job is filtering the
        # reference stream, and shrinking them as hard as the L2 would
        # push unrealistically many accesses into the L2 path.
        private_factor = max(factor, 0.25)
        # Directory caches are kept at full size: the paper adds them
        # precisely so directory lookups stay on chip, and shrinking
        # them with the data caches would re-introduce the off-chip
        # entry fetches they exist to avoid.
        return replace(
            self,
            l2_total_bytes=new_l2_total,
            l0_geometry=self.l0_geometry.scaled(private_factor),
            l1_geometry=self.l1_geometry.scaled(private_factor),
        )

    def table3(self) -> dict:
        """The machine description as Table III rows."""
        return {
            "Cores": f"{self.num_cores} in-order",
            "Interconnect": "2-D Packet-Switched Mesh",
            "L0s (private) size/latency": (
                f"{self.l0_geometry.size_bytes // 1024}KB/"
                f"{self.l0_geometry.latency} cycle"
            ),
            "L1s (private) size/latency": (
                f"{self.l1_geometry.size_bytes // 1024}KB/"
                f"{self.l1_geometry.latency} cycles"
            ),
            "L2s size/latency": (
                f"{self.l2_total_bytes // (1024 * 1024)}MB/"
                f"{self.l2_latency} cycles"
            ),
            "Memory latency": f"{self.memory_latency} cycles",
            "Thread to core assignment": "RR, Affinity, RR-Affinity, Random",
        }


# ----------------------------------------------------------------------
# spec-string parsers for the heterogeneity knobs
# ----------------------------------------------------------------------


def _expand_spec_list(text: str, what: str) -> list:
    """Expand ``"a x4, b x2"`` run-length syntax into a flat list."""
    items = []
    for raw in text.split(","):
        token = raw.strip()
        if not token:
            raise ConfigurationError(f"empty entry in {what} spec {text!r}")
        value, _, count = token.partition("x")
        repeat = 1
        if count:
            try:
                repeat = int(count)
            except ValueError:
                raise ConfigurationError(
                    f"bad repeat count {count!r} in {what} spec {text!r}"
                ) from None
            if repeat < 1:
                raise ConfigurationError(
                    f"repeat count must be >= 1 in {what} spec {text!r}"
                )
        items.extend([value.strip()] * repeat)
    return items


def parse_core_speeds(text: str, num_cores: int) -> Tuple[float, ...]:
    """Parse a core-speed spec string, e.g. ``"1.0x8,0.5x8"``.

    Comma-separated relative speeds, one per core, with an optional
    ``xN`` run-length suffix per entry.  Returns ``()`` for an empty
    string (homogeneous machine).
    """
    if not text.strip():
        return ()
    tokens = _expand_spec_list(text, "core-speed")
    try:
        speeds = tuple(float(tok) for tok in tokens)
    except ValueError:
        raise ConfigurationError(
            f"core-speed spec {text!r} has a non-numeric entry"
        ) from None
    if len(speeds) != num_cores:
        raise ConfigurationError(
            f"core-speed spec {text!r} names {len(speeds)} cores; "
            f"the machine has {num_cores}"
        )
    return speeds


def parse_domain_assoc(text: str, num_domains: int) -> Tuple[int, ...]:
    """Parse an asymmetric-L2 spec string, e.g. ``"16x2,8x2"``.

    Comma-separated per-domain associativities with an optional ``xN``
    run-length suffix.  Returns ``()`` for an empty string (uniform
    L2 domains).
    """
    if not text.strip():
        return ()
    tokens = _expand_spec_list(text, "L2-associativity")
    try:
        assocs = tuple(int(tok) for tok in tokens)
    except ValueError:
        raise ConfigurationError(
            f"L2-associativity spec {text!r} has a non-integer entry"
        ) from None
    if len(assocs) != num_domains:
        raise ConfigurationError(
            f"L2-associativity spec {text!r} names {len(assocs)} domains; "
            f"the machine has {num_domains}"
        )
    return assocs

"""The 16-core CMP timing model.

:class:`Chip` composes every substrate into the machine of Table III
and implements the :class:`repro.sim.engine.MachineModel` interface.
One call to :meth:`Chip.access` performs the *functional* state changes
(cache fills/evictions, directory transitions) and computes the
*timing* of the reference by walking it through:

1. the private L0/L1 stack of the issuing core;
2. the core's L2 domain — request over the mesh to the domain's home
   tile, bank queueing, the 6-cycle array access; an L1 miss that hits
   a peer L1's modified copy inside the domain becomes an intra-domain
   transfer (``HitLevel.L2_PEER``);
3. the striped directory at the block's home tile — including the
   directory-cache check that decides whether the entry itself costs a
   memory access;
4. a cache-to-cache transfer from the owning/sharing remote domain, or
   an off-chip access through the block's memory controller.

Latency is returned decomposed into cache / network / directory /
memory components so the analysis layer can attribute consolidation
slowdowns the way the paper does (cache thrashing vs. interconnect
congestion vs. memory pressure).
"""

from __future__ import annotations

from typing import Dict, List

from ..caches.hierarchy import CoreCacheStack, L2Domain
from ..caches.replacement import make_policy
from ..coherence.directory import Directory
from ..coherence.protocol import CoherenceController, DataSource
from ..coherence.states import DirState
from ..errors import ConfigurationError
from ..interconnect.analytical import AnalyticalMesh
from ..interconnect.topology import MeshTopology
from ..memory.controller import MemorySystem
from ..sim.records import AccessResult, HitLevel
from ..sim.server import FifoServer
from .config import MachineConfig
from .placement import DomainPlacement

__all__ = ["Chip"]


class Chip:
    """A configured CMP ready to serve memory references.

    Parameters
    ----------
    config:
        The machine description (Table III defaults).
    """

    def __init__(self, config: MachineConfig):
        self.config = config
        side = config.mesh_side
        self.topology = MeshTopology(side, side)
        self.placement = DomainPlacement(config, self.topology)
        self.mesh = AnalyticalMesh(self.topology, hop_cycles=config.hop_cycles)
        self.stacks: List[CoreCacheStack] = [
            CoreCacheStack(core, config.l0_geometry, config.l1_geometry)
            for core in range(config.num_cores)
        ]
        l2_geometries = config.l2_domain_geometries()
        self.domains: List[L2Domain] = []
        for domain_id, members in enumerate(self.placement.domains):
            domain = L2Domain(
                domain_id,
                l2_geometries[domain_id],
                members,
                policy=make_policy(config.l2_replacement, seed=domain_id),
            )
            for core in members:
                domain.attach(self.stacks[core])
            self.domains.append(domain)
        self.directory = Directory(
            config.num_cores, dir_cache_entries=config.directory_cache_entries
        )
        self.coherence = CoherenceController(
            self.directory, num_domains=len(self.domains)
        )
        self.memory = MemorySystem.at_tiles(
            list(config.memory_tiles),
            base_latency=config.memory_latency,
            num_banks=config.memory_banks,
            bank_occupancy=config.memory_bank_occupancy,
            channel_occupancy=config.memory_channel_occupancy,
        )
        self.l2_servers = [
            FifoServer(name=f"l2/domain{d}", service_time=config.l2_service_time)
            for d in range(len(self.domains))
        ]
        self.vm_of_core: List[int] = [-1] * config.num_cores
        # optional observer of the L2 access stream (see set_l2_tap)
        self.l2_tap = None
        # chip-level event counters
        self.intra_domain_transfers = 0
        self.upgrade_transactions = 0
        self.accesses = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def bind_core_to_vm(self, core_id: int, vm_id: int) -> None:
        """Record which VM runs on a core (for occupancy accounting)."""
        if not 0 <= core_id < self.config.num_cores:
            raise ConfigurationError(f"core {core_id} out of range")
        self.vm_of_core[core_id] = vm_id

    def domain_of_core(self, core_id: int) -> int:
        return self.placement.domain_of[core_id]

    def set_l2_tap(self, tap) -> None:
        """Install (or remove, with ``None``) an L2 access observer.

        ``tap(domain_id, vm_id, block)`` is called for every reference
        that reaches a shared L2 domain (i.e. every private-cache
        miss), *before* the domain lookup.  Taps must be read-only with
        respect to machine state — they exist so QoS utility monitors
        (:mod:`repro.qos.sensors`) can shadow the access stream without
        perturbing the simulation; the cost when absent is one ``is not
        None`` test per L2 access.
        """
        self.l2_tap = tap

    # ------------------------------------------------------------------
    # the MachineModel interface
    # ------------------------------------------------------------------

    def access(self, core_id: int, block: int, is_write: bool, now: int) -> AccessResult:
        """Serve one reference; returns its decomposed timing."""
        self.accesses += 1
        config = self.config
        stack = self.stacks[core_id]

        # ---- private L0/L1 -------------------------------------------
        lvl = stack.probe(block)
        if lvl is not None:
            cache = config.l0_geometry.latency
            if lvl == 1:
                cache += config.l1_geometry.latency
            net = 0
            dir_cycles = 0
            if is_write:
                net, dir_cycles = self._write_permission(
                    core_id, block, now + cache
                )
                stack.mark_dirty(block)
            level = HitLevel.L0 if lvl == 0 else HitLevel.L1
            latency = cache + net + dir_cycles
            return AccessResult(level, latency, cache, net, dir_cycles, 0)

        # ---- local L2 domain -----------------------------------------
        domain_id = self.placement.domain_of[core_id]
        domain = self.domains[domain_id]
        if self.l2_tap is not None:
            self.l2_tap(domain_id, self.vm_of_core[core_id], block)
        home = self.placement.home_tile[domain_id]
        cache = config.l0_geometry.latency + config.l1_geometry.latency
        net = self.mesh.traverse(
            core_id, home, config.control_flits, now + cache
        ).latency
        t = now + cache + net
        cache += self.l2_servers[domain_id].request(t)
        line = domain.lookup(block)
        cache += config.l2_latency
        t = now + cache + net

        if line is not None:
            return self._finish_l2_hit(
                core_id, block, is_write, now, domain, home, cache, net, t
            )

        # ---- domain miss: directory protocol -------------------------
        return self._finish_l2_miss(
            core_id, block, is_write, now, domain_id, domain, home, cache, net, t
        )

    # ------------------------------------------------------------------
    # hit/miss completion paths
    # ------------------------------------------------------------------

    def _finish_l2_hit(
        self,
        core_id: int,
        block: int,
        is_write: bool,
        now: int,
        domain: L2Domain,
        home: int,
        cache: int,
        net: int,
        t: int,
    ) -> AccessResult:
        config = self.config
        stack = self.stacks[core_id]
        level = HitLevel.L2
        owner_slot = domain.dirty_private_holder(block, exclude_slot=stack.slot)
        if owner_slot is not None:
            # a peer core in the domain holds the only modified copy:
            # forward the request to its L1 and transfer the data
            owner_core = domain.core_ids[owner_slot]
            net += self.mesh.traverse(
                home, owner_core, config.control_flits, t
            ).latency
            cache += config.l1_geometry.latency
            t = now + cache + net
            net += self.mesh.traverse(
                owner_core, core_id, config.data_flits, t
            ).latency
            if is_write:
                owner_stack = domain.stacks[owner_slot]
                if owner_stack is not None:
                    owner_stack.invalidate(block)
                domain.note_private_eviction(block, owner_slot)
                peer_line = domain.peek(block)
                if peer_line is not None:
                    peer_line.dirty = True
                    peer_line.l1_owner = -1
            else:
                domain.downgrade_owner(block, owner_slot)
            level = HitLevel.L2_PEER
            self.intra_domain_transfers += 1
        else:
            # data returns from the domain cache
            net += self.mesh.traverse(home, core_id, config.data_flits, t).latency

        dir_cycles = 0
        if is_write:
            extra_net, dir_cycles = self._write_permission(
                core_id, block, now + cache + net
            )
            net += extra_net
        stack.fill(block, dirty=is_write)
        self._drain_writebacks(domain, now + cache + net)
        latency = cache + net + dir_cycles
        return AccessResult(level, latency, cache, net, dir_cycles, 0)

    def _finish_l2_miss(
        self,
        core_id: int,
        block: int,
        is_write: bool,
        now: int,
        domain_id: int,
        domain: L2Domain,
        home: int,
        cache: int,
        net: int,
        t: int,
    ) -> AccessResult:
        config = self.config
        stack = self.stacks[core_id]
        outcome = self.coherence.fetch(block, domain_id, is_write)

        # request travels to the block's directory home tile
        dir_home = self.directory.home_tile(block)
        net += self.mesh.traverse(home, dir_home, config.control_flits, t).latency
        dir_cycles = config.directory_latency
        if not self.directory.cache_access(block):
            # the entry itself must be fetched from memory
            dir_cycles += config.memory_latency
        t = now + cache + net + dir_cycles

        mem_cycles = 0
        if outcome.source == DataSource.MEMORY:
            controller = self.memory.controller_for(block)
            net += self.mesh.traverse(
                dir_home, controller.tile, config.control_flits, t
            ).latency
            t = now + cache + net + dir_cycles
            result = controller.access(t, block)
            mem_cycles = result.latency
            t += mem_cycles
            net += self.mesh.traverse(
                controller.tile, core_id, config.data_flits, t
            ).latency
            level = HitLevel.MEMORY
        else:
            provider = outcome.provider_domain
            provider_home = self.placement.home_tile[provider]
            net += self.mesh.traverse(
                dir_home, provider_home, config.control_flits, t
            ).latency
            t = now + cache + net + dir_cycles
            cache += self.l2_servers[provider].request(t)
            cache += config.l2_latency
            if outcome.source == DataSource.C2C_DIRTY:
                pslot = self.domains[provider].dirty_private_holder(
                    block, exclude_slot=-1
                )
                if pslot is not None:
                    # modified data sits in a provider-core L1
                    cache += config.l1_geometry.latency
                    if not is_write:
                        self.domains[provider].downgrade_owner(block, pslot)
                level = HitLevel.C2C_DIRTY
            else:
                level = HitLevel.C2C_CLEAN
            t = now + cache + net + dir_cycles
            net += self.mesh.traverse(
                provider_home, core_id, config.data_flits, t
            ).latency

        # invalidations fan out from the directory home (writes)
        if outcome.invalidate_domains:
            inval_latency = 0
            for victim in outcome.invalidate_domains:
                if victim == domain_id:
                    continue
                victim_home = self.placement.home_tile[victim]
                leg = self.mesh.traverse(
                    dir_home, victim_home, config.control_flits, t
                ).latency
                inval_latency = max(inval_latency, 2 * leg)
                self.domains[victim].invalidate(block)
            net += inval_latency

        if outcome.memory_writeback:
            self.memory.controller_for(block).writeback(t, block)

        # fill the domain and the private stack
        vm_id = self.vm_of_core[core_id]
        fill_dirty = outcome.fill_dirty or is_write
        victims = domain.fill(
            block, dirty=fill_dirty, vm_id=vm_id, requester_slot=stack.slot
        )
        for victim_block, victim_dirty in victims:
            self.coherence.domain_evicted(victim_block, domain_id, victim_dirty)
        stack.fill(block, dirty=is_write)
        self._drain_writebacks(domain, t)

        latency = cache + net + dir_cycles + mem_cycles
        return AccessResult(level, latency, cache, net, dir_cycles, mem_cycles)

    # ------------------------------------------------------------------
    # write permission (upgrades)
    # ------------------------------------------------------------------

    def _write_permission(self, core_id: int, block: int, t: int) -> tuple:
        """Obtain global write permission for a locally-cached block.

        Returns ``(network_cycles, directory_cycles)``; both zero on
        the fast path (this domain already owns the block modified).
        """
        domain_id = self.placement.domain_of[core_id]
        entry = self.directory.peek(block)
        if entry is None:
            # Locally cached data always has a directory entry; treat a
            # missing one as INVALID (first touch was a warm preload).
            return 0, 0
        if entry.state == DirState.MODIFIED and entry.owner == domain_id:
            return 0, 0
        config = self.config
        self.upgrade_transactions += 1
        dir_home = self.directory.home_tile(block)
        net = self.mesh.traverse(core_id, dir_home, config.control_flits, t).latency
        dir_cycles = config.directory_latency
        if not self.directory.cache_access(block):
            dir_cycles += config.memory_latency
        t2 = t + net + dir_cycles
        outcome = self.coherence.upgrade(block, domain_id)
        inval_latency = 0
        for victim in outcome.invalidate_domains:
            if victim == domain_id:
                continue
            victim_home = self.placement.home_tile[victim]
            leg = self.mesh.traverse(
                dir_home, victim_home, config.control_flits, t2
            ).latency
            inval_latency = max(inval_latency, 2 * leg)
            self.domains[victim].invalidate(block)
        if outcome.memory_writeback:
            self.memory.controller_for(block).writeback(t2, block)
        net += inval_latency
        net += self.mesh.traverse(dir_home, core_id, config.control_flits, t2).latency
        return net, dir_cycles

    # ------------------------------------------------------------------

    def _drain_writebacks(self, domain: L2Domain, t: int) -> None:
        """Push queued dirty evictions into the memory controllers."""
        queue = domain.writebacks_to_memory
        if queue:
            for victim in queue:
                self.memory.controller_for(victim).writeback(t, victim)
            queue.clear()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def check_coherence_invariants(self) -> None:
        """Cross-check the directory against actual domain contents."""
        resident = [domain.resident_blocks() for domain in self.domains]
        self.coherence.check_invariants(resident=resident)

    def l2_snapshot_by_vm(self) -> List[Dict[int, int]]:
        """Per-domain resident-line counts per VM (Figure 13 raw data)."""
        return [domain.occupancy_by_vm() for domain in self.domains]

    def l2_resident_sets(self) -> List[set]:
        """Per-domain sets of resident blocks (Figure 12 raw data)."""
        return [domain.resident_blocks() for domain in self.domains]

    # ------------------------------------------------------------------
    # telemetry snapshots (read-only; see repro.obs.probes)
    # ------------------------------------------------------------------

    def queue_depths(self, now: int) -> Dict[str, float]:
        """Mean backlog of each shared-resource class at ``now``.

        Keys: ``l2`` (domain bank servers), ``memory`` (controller
        channel + banks), ``link`` (mesh links).  Depths are in service
        times (see :meth:`repro.sim.server.FifoServer.queue_depth`);
        strictly read-only so epoch probes cannot perturb timing.
        """
        l2 = sum(s.queue_depth(now) for s in self.l2_servers)
        return {
            "l2": l2 / len(self.l2_servers),
            "memory": self.memory.mean_queue_depth(now),
            "link": self.mesh.mean_link_queue_depth(now),
        }

    def l2_domain_queue_depths(self, now: int) -> List[float]:
        """Per-domain L2 bank backlog at ``now`` (read-only).

        The per-domain breakdown of :meth:`queue_depths`'s ``l2``
        entry; contention-aware schedulers rank domains with it.
        """
        return [s.queue_depth(now) for s in self.l2_servers]

    @property
    def inverse_core_speeds(self):
        """Per-core think-cycle multipliers, or ``None`` if homogeneous.

        The engines consult this once at startup; ``None`` keeps their
        exact legacy arithmetic (byte-identical homogeneous runs).
        """
        inverse = self.config.inverse_core_speeds()
        return inverse or None

    def l2_occupancy_share(self) -> Dict[int, float]:
        """Each VM's share of all resident L2 lines, chip-wide.

        Shares are of *resident* lines (they sum to 1 once the caches
        fill), keyed by VM id; lines without VM attribution are
        excluded.
        """
        totals: Dict[int, int] = {}
        resident = 0
        for domain in self.domains:
            for vm_id, lines in domain.occupancy_by_vm().items():
                resident += lines
                if vm_id >= 0:
                    totals[vm_id] = totals.get(vm_id, 0) + lines
        if resident == 0:
            return {vm: 0.0 for vm in totals}
        return {vm: lines / resident for vm, lines in totals.items()}

    def __repr__(self) -> str:
        return (
            f"Chip(cores={self.config.num_cores}, "
            f"sharing={self.config.sharing.name}, "
            f"domains={len(self.domains)})"
        )

"""Physical placement of cores, L2 domains, and home tiles on the mesh.

Cores and mesh tiles are one-to-one (core ``i`` sits at tile ``i``).
An L2 domain's member cores form a contiguous rectangular block of
tiles — e.g. the shared-4-way configuration on the 16-core chip is the
four 2x2 quadrants of Figure 1 — and the domain's cache is reached at
the *home tile* closest to the block's centroid.  Contiguity is what
gives affinity scheduling its locality advantage: co-scheduled threads
communicate over one- and two-hop paths instead of crossing the chip.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigurationError
from ..interconnect.topology import MeshTopology
from .config import MachineConfig

__all__ = ["DomainPlacement"]


def _block_shape(cores_per_domain: int) -> tuple:
    """(width, height) in tiles of one domain's rectangular block."""
    if cores_per_domain & (cores_per_domain - 1):
        raise ConfigurationError(
            f"cores_per_domain must be a power of two, got {cores_per_domain}"
        )
    width, height = 1, 1
    remaining = cores_per_domain
    while remaining > 1:
        if width <= height:
            width *= 2
        else:
            height *= 2
        remaining //= 2
    return width, height


class DomainPlacement:
    """Maps cores to L2 domains and domains to home tiles.

    Attributes
    ----------
    domains:
        ``domains[d]`` is the list of core ids in domain ``d``.
    domain_of:
        ``domain_of[core]`` is the core's domain id.
    home_tile:
        ``home_tile[d]`` is the mesh tile of domain ``d``'s cache.
    """

    def __init__(self, config: MachineConfig, topology: MeshTopology):
        if topology.num_tiles != config.num_cores:
            raise ConfigurationError(
                f"topology has {topology.num_tiles} tiles but the config "
                f"has {config.num_cores} cores"
            )
        self.topology = topology
        block_w, block_h = _block_shape(config.cores_per_domain)
        if topology.width % block_w or topology.height % block_h:
            raise ConfigurationError(
                f"a {block_w}x{block_h} domain block does not tile the "
                f"{topology.width}x{topology.height} mesh"
            )
        self.domains: List[List[int]] = []
        self.domain_of: List[int] = [-1] * config.num_cores
        for base_y in range(0, topology.height, block_h):
            for base_x in range(0, topology.width, block_w):
                members = [
                    topology.tile_at(base_x + dx, base_y + dy)
                    for dy in range(block_h)
                    for dx in range(block_w)
                ]
                domain_id = len(self.domains)
                self.domains.append(members)
                for core in members:
                    self.domain_of[core] = domain_id
        self.home_tile: List[int] = [
            topology.centroid_tile(members) for members in self.domains
        ]

    @property
    def num_domains(self) -> int:
        return len(self.domains)

    def cores_of(self, domain_id: int) -> List[int]:
        return list(self.domains[domain_id])

    def __repr__(self) -> str:
        return f"DomainPlacement(domains={self.domains})"

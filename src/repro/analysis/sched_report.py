"""Scheduling-policy comparison: static placements vs. adaptive policies.

The paper evaluates four *static* placement policies and shows how much
consolidation interference each leaves on the table.  The scheduling
layer (:mod:`repro.sched`) closes the loop with adaptive policies; this
module asks the evaluation question that motivates them: *on a given
mix and machine shape, does any adaptive policy beat the best static
placement* on weighted speedup, and what does that buy or cost in
fairness?

:func:`compare_sched_policies` runs one cell per scheduling policy —
expanding the ``"static"`` baseline into one cell per placement policy
so "best static" means the best of the paper's four — and scores each
with the shared QoS scorecard (:class:`repro.qos.metrics.QosReport`:
weighted/harmonic speedup, Jain fairness, worst slowdown).
:func:`sched_table` folds the cells into rows for
:func:`repro.analysis.report.format_table`, and :func:`sched_verdict`
states the best-static vs. best-adaptive outcome.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..core.experiment import ExperimentResult, ExperimentSpec, run_experiment

if TYPE_CHECKING:  # lazy at runtime: repro.qos.metrics imports
    # repro.analysis back for jains_index
    from ..qos.metrics import QosReport

__all__ = [
    "DEFAULT_SCHED_POLICIES",
    "DEFAULT_PLACEMENTS",
    "sched_report",
    "compare_sched_policies",
    "sched_table",
    "sched_verdict",
]

DEFAULT_SCHED_POLICIES = ("static", "contention", "adaptive", "hetero")
"""Scheduling policies compared by default."""

DEFAULT_PLACEMENTS = ("rr", "affinity", "rr-aff", "random")
"""The paper's four static placement policies (Section III-D)."""


def sched_report(result: ExperimentResult) -> "QosReport":
    """Score one run, carrying the scheduler's account as control data.

    Reuses the QoS scorecard — per-VM slowdowns vs. memoized isolation
    baselines, weighted/harmonic speedup, Jain fairness — but attaches
    ``result.sched`` (migrations, control epochs) instead of the QoS
    controller summary, so sched tables can show migration counts.
    """
    from ..qos.metrics import QosReport, per_vm_slowdowns

    control = dict(getattr(result, "sched", None) or {})
    policy = str(control.get("policy", "")) or "none"
    return QosReport(
        policy=policy,
        slowdowns=per_vm_slowdowns(result),
        workloads={vm.vm_id: vm.workload for vm in result.vm_metrics},
        control=control,
    )


def compare_sched_policies(
    mix: str,
    policies: Sequence[str] = DEFAULT_SCHED_POLICIES,
    base: Optional[ExperimentSpec] = None,
    placements: Sequence[str] = DEFAULT_PLACEMENTS,
    use_cache: bool = True,
    telemetry=None,
) -> Dict[str, "QosReport"]:
    """Score every scheduling policy on one mix.

    Returns ``{label: QosReport}`` in evaluation order.  ``base``
    carries the machine shape (cores, over-commit, heterogeneity,
    churn) plus run length / seed / scale.  The ``"static"`` entry
    expands into one legacy cell per placement in ``placements``
    (labelled ``static/<placement>``, with no scheduling hook at all —
    byte-identical to the paper's runs); each adaptive policy runs once
    from ``base``'s own initial placement, labelled by its name.  A
    live ``telemetry`` hub (passed through to every cell) accumulates
    the ``sched.*`` counters across the adaptive cells.
    """
    template = base or ExperimentSpec(mix=mix)
    out: Dict[str, "QosReport"] = {}
    for policy in policies:
        if policy == "static":
            for placement in placements:
                spec = replace(template, mix=mix, policy=placement,
                               sched_policy="")
                result = run_experiment(spec, use_cache=use_cache,
                                        telemetry=telemetry)
                out[f"static/{placement}"] = sched_report(result)
        else:
            spec = replace(template, mix=mix, sched_policy=policy)
            result = run_experiment(spec, use_cache=use_cache,
                                    telemetry=telemetry)
            out[policy] = sched_report(result)
    return out


def sched_table(
    reports: Dict[str, "QosReport"],
) -> Tuple[List[str], List[list]]:
    """Fold :func:`compare_sched_policies` output into (headers, rows).

    One row per policy cell: the four scorecard metrics plus the number
    of migrations the scheduler actually applied (``-`` for static
    cells, which have no scheduling hook).
    """
    headers = ["Policy", "WeightedSpeedup", "HarmonicSpeedup",
               "Fairness", "MaxSlowdown", "Migrations"]
    rows: List[list] = []
    for label, report in reports.items():
        migrations = report.control.get("migrations")
        rows.append([
            label,
            round(report.weighted_speedup, 3),
            round(report.harmonic_speedup, 3),
            round(report.fairness, 3),
            round(report.max_slowdown, 3),
            "-" if migrations is None else int(migrations),
        ])
    return headers, rows


def sched_verdict(reports: Dict[str, "QosReport"]) -> Dict[str, object]:
    """Best-static vs. best-adaptive comparison of one mix's cells.

    Static cells are those labelled ``static/...`` (or bare
    ``static``).  Returns a JSON-friendly dict with the winning labels,
    their weighted speedups, the adaptive-over-static speedup gain, and
    the fairness change of the winning adaptive cell relative to the
    best static one (negative = fairness regressed).
    """
    static = {label: r for label, r in reports.items()
              if label == "static" or label.startswith("static/")}
    dynamic = {label: r for label, r in reports.items()
               if label not in static}
    verdict: Dict[str, object] = {}
    if static:
        best_static = max(static, key=lambda k: static[k].weighted_speedup)
        verdict["best_static"] = best_static
        verdict["best_static_weighted_speedup"] = round(
            static[best_static].weighted_speedup, 6)
    if dynamic:
        best_dynamic = max(dynamic, key=lambda k: dynamic[k].weighted_speedup)
        verdict["best_adaptive"] = best_dynamic
        verdict["best_adaptive_weighted_speedup"] = round(
            dynamic[best_dynamic].weighted_speedup, 6)
    if static and dynamic:
        s = static[verdict["best_static"]]
        d = dynamic[verdict["best_adaptive"]]
        verdict["speedup_gain"] = round(
            d.weighted_speedup - s.weighted_speedup, 6)
        verdict["fairness_change"] = round(d.fairness - s.fairness, 6)
        verdict["adaptive_wins"] = d.weighted_speedup > s.weighted_speedup
    return verdict

"""``repro top`` — a live plain-text dashboard over ``/metrics``.

Renders one frame of fleet (or single-service) state from a metrics
payload: job throughput with per-interval rates, latency percentiles
from the cumulative histograms, rolling SLO gauges, and per-worker
queue depth.  The CLI polls ``/metrics`` and redraws the frame in
place; this module is pure formatting so tests can drive it with
canned snapshots.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..obs import histogram_percentile
from .report import format_table

__all__ = ["render_dashboard"]

_JOB_COUNTERS = [
    ("service.submitted", "submitted"),
    ("service.completed", "completed"),
    ("service.dedup_hits", "dedup hits"),
    ("service.coalesced", "coalesced"),
    ("service.retries", "retries"),
    ("service.quarantined", "quarantined"),
    ("fleet.replayed", "replayed"),
    ("fleet.worker_deaths", "worker deaths"),
]

_LATENCY_HISTS = [
    ("fleet.submit_seconds", "submit (front end)"),
    ("service.queue_wait_seconds", "queue wait"),
    ("service.job_seconds", "job end-to-end"),
]

_SLO_PREFIXES = [("fleet.slo", "fleet front end"),
                 ("service.slo", "service")]


def _normalize(payload: Mapping) -> tuple:
    """Split a ``/metrics`` payload into (aggregate, workers, fleet?).

    A fleet front end answers ``{"fleet", "workers", "aggregate"}``;
    a single service answers a bare telemetry snapshot.
    """
    if "aggregate" in payload:
        return (payload.get("aggregate") or {},
                payload.get("workers") or {},
                payload.get("fleet") or {})
    return payload, {}, None


def _counter_rows(aggregate: Mapping, previous: Optional[Mapping],
                  interval: Optional[float]):
    counters = aggregate.get("counters", {})
    prev_counters = ((previous or {}).get("counters", {})
                     if previous is not None else None)
    rows = []
    for name, label in _JOB_COUNTERS:
        if name not in counters:
            continue
        value = counters[name]
        rate = ""
        if prev_counters is not None and interval:
            delta = value - prev_counters.get(name, 0)
            rate = f"{delta / interval:.2f}/s"
        rows.append([label, value, rate])
    return rows


def _latency_rows(aggregate: Mapping):
    histograms = aggregate.get("histograms", {})
    rows = []
    for name, label in _LATENCY_HISTS:
        hist = histograms.get(name)
        if not hist or not hist.get("observations"):
            continue
        rows.append([
            label,
            hist["observations"],
            f"{1e3 * histogram_percentile(hist, 50):.1f}ms",
            f"{1e3 * histogram_percentile(hist, 95):.1f}ms",
            f"{1e3 * histogram_percentile(hist, 99):.1f}ms",
        ])
    return rows


def _slo_rows(aggregate: Mapping):
    gauges = aggregate.get("gauges", {})
    rows = []
    for prefix, label in _SLO_PREFIXES:
        requests = gauges.get(f"{prefix}.window_requests")
        if not requests:
            continue
        p99 = gauges.get(f"{prefix}.p99_seconds", 0.0)
        error_rate = gauges.get(f"{prefix}.error_rate", 0.0)
        burn = gauges.get(f"{prefix}.burn_rate", 0.0)
        alarm = "BURNING" if burn > 1.0 else "ok"
        rows.append([label, int(requests), f"{1e3 * p99:.1f}ms",
                     f"{100 * error_rate:.2f}%", f"{burn:.2f}x", alarm])
    return rows


def _worker_rows(workers: Mapping, fleet_own: Optional[Mapping]):
    rows = []
    depths = ((fleet_own or {}).get("gauges", {})
              if fleet_own is not None else {})
    for name in sorted(workers):
        snap = workers[name]
        gauges = snap.get("gauges", {})
        counters = snap.get("counters", {})
        depth = gauges.get("service.queue_depth",
                           depths.get(f"fleet.worker_depth.{name}", 0))
        rows.append([
            name, depth,
            counters.get("service.submitted", 0),
            counters.get("service.completed", 0),
            counters.get("service.quarantined", 0),
        ])
    return rows


def render_dashboard(payload: Mapping, healthz: Optional[Mapping] = None,
                     previous: Optional[Mapping] = None,
                     interval: Optional[float] = None) -> str:
    """One dashboard frame, as a printable string.

    ``payload`` is the JSON body of ``/metrics`` (fleet or single
    service); ``previous`` is the prior frame's *aggregate* snapshot,
    used with ``interval`` (seconds) to print per-interval rates.
    """
    aggregate, workers, fleet_own = _normalize(payload)
    sections = []

    headline = []
    if healthz:
        status = healthz.get("status", "?")
        role = healthz.get("role", "service")
        uptime = healthz.get("uptime_s")
        headline.append(f"{role}: {status}"
                        + (f", up {uptime:.0f}s" if uptime else ""))
        if "live_workers" in healthz:
            headline.append(f"{healthz['live_workers']} live worker(s)")
    depth = aggregate.get("gauges", {}).get("service.queue_depth")
    if depth is not None:
        headline.append(f"queue depth {int(depth)}")
    if headline:
        sections.append("  |  ".join(headline))

    rows = _counter_rows(aggregate, previous, interval)
    if rows:
        sections.append(format_table(["Jobs", "Total", "Rate"], rows))

    rows = _latency_rows(aggregate)
    if rows:
        sections.append(format_table(
            ["Latency", "Obs", "p50", "p95", "p99"], rows))

    rows = _slo_rows(aggregate)
    if rows:
        sections.append(format_table(
            ["SLO (rolling window)", "Req", "p99", "Errors", "Burn",
             "State"], rows))

    rows = _worker_rows(workers, fleet_own)
    if rows:
        sections.append(format_table(
            ["Worker", "Depth", "Submitted", "Completed", "Quarantined"],
            rows))

    if not sections:
        sections.append("(no metrics yet)")
    return "\n\n".join(sections)

"""Fairness metrics for consolidated runs.

The paper's conclusion: "When workloads with different cache and memory
requirements are combined fairness issues need to be considered."
These metrics quantify that, following the cache-fairness literature
the paper cites (Kim et al., PACT 2004):

* **per-VM slowdown** — cycles relative to the VM's isolation run;
* **Jain's fairness index** over slowdowns — 1.0 when every VM suffers
  equally, approaching ``1/n`` as one VM absorbs all the pain;
* **max/min slowdown ratio** — the headline unfairness number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.experiment import ExperimentResult
from ..core.isolation import normalized_runtime
from ..errors import ReproError

__all__ = ["jains_index", "FairnessReport", "fairness_report"]


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 = perfectly equal; ``1/n`` = maximally concentrated.
    """
    values = list(values)
    if not values:
        raise ReproError("jains_index needs at least one value")
    if any(v < 0 for v in values):
        raise ReproError("jains_index is defined for non-negative values")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


@dataclass(frozen=True)
class FairnessReport:
    """Fairness view of one consolidated run."""

    slowdowns: Dict[int, float]  # vm_id -> normalized runtime
    workloads: Dict[int, str]

    @property
    def jain(self) -> float:
        return jains_index(list(self.slowdowns.values()))

    @property
    def max_min_ratio(self) -> float:
        values = list(self.slowdowns.values())
        low = min(values)
        return max(values) / low if low else float("inf")

    @property
    def most_penalized(self) -> int:
        """VM id with the largest slowdown."""
        return max(self.slowdowns, key=self.slowdowns.get)

    def rows(self) -> List[list]:
        return [
            [f"vm{vm_id}", self.workloads[vm_id], slowdown]
            for vm_id, slowdown in sorted(self.slowdowns.items())
        ]


def fairness_report(result: ExperimentResult) -> FairnessReport:
    """Build a fairness report (runs/reuses the isolation baselines)."""
    slowdowns = {
        vm.vm_id: normalized_runtime(vm, result.spec)
        for vm in result.vm_metrics
    }
    workloads = {vm.vm_id: vm.workload for vm in result.vm_metrics}
    return FairnessReport(slowdowns=slowdowns, workloads=workloads)

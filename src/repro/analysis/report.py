"""Plain-text table and series formatting for the benchmark harness.

Every benchmark prints the rows/series of the table or figure it
reproduces; these helpers keep the output uniform and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Union

__all__ = ["format_table", "format_series", "format_kv", "bar"]

Number = Union[int, float]


def _cell(value, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_cell(value, precision) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_series(
    title: str,
    series: Mapping[str, Mapping[str, Number]],
    precision: int = 3,
) -> str:
    """Render figure-style data: one row per x-label, one column per
    series (e.g. one column per scheduling policy)."""
    columns = sorted({key for row in series.values() for key in row})
    headers = ["x"] + columns
    rows = []
    for x_label, row in series.items():
        rows.append([x_label] + [row.get(col, float("nan")) for col in columns])
    return format_table(headers, rows, title=title, precision=precision)


def format_kv(title: str, pairs: Mapping[str, object]) -> str:
    """Render a two-column key/value block (Table III style)."""
    width = max(len(k) for k in pairs) if pairs else 0
    lines = [title] if title else []
    for key, value in pairs.items():
        lines.append(f"  {key.ljust(width)}  {value}")
    return "\n".join(lines)


def bar(value: float, scale: float = 40.0, maximum: float = 2.0) -> str:
    """A crude inline bar for eyeballing normalized values."""
    clamped = max(0.0, min(value, maximum))
    return "#" * int(round(clamped / maximum * scale))

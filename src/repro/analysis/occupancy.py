"""Cache-occupancy analysis (Figure 13).

The paper snapshots, per last-level cache, the fraction of resident
lines each workload owns.  Under round robin every shared-4-way cache
holds four different workloads, so a workload's *fair share* is 25%;
TPC-H consistently under-occupies (its footprint is small), while
TPC-W squeezes SPECjbb well below fair share in Mixes 7-9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["OccupancySnapshot", "measure_occupancy"]


@dataclass(frozen=True)
class OccupancySnapshot:
    """Per-domain, per-VM occupancy shares."""

    #: shares[d][vm_id] = fraction of domain d's *resident* lines
    shares: tuple
    #: lines[d][vm_id] = absolute resident line counts
    lines: tuple
    domain_capacity: int

    @property
    def num_domains(self) -> int:
        return len(self.shares)

    def vm_share_of_domain(self, domain: int, vm_id: int) -> float:
        return self.shares[domain].get(vm_id, 0.0)

    def vm_total_share(self, vm_id: int) -> float:
        """A VM's share of all resident LLC lines on the chip."""
        total = sum(sum(d.values()) for d in self.lines)
        mine = sum(d.get(vm_id, 0) for d in self.lines)
        return mine / total if total else 0.0

    def vm_mean_share(self, vm_id: int) -> float:
        """A VM's occupancy share averaged over domains it appears in."""
        shares = [
            d[vm_id] for d in self.shares if vm_id in d and d[vm_id] > 0
        ]
        return sum(shares) / len(shares) if shares else 0.0

    def utilization(self, domain: int) -> float:
        """Fraction of the domain's capacity holding valid lines."""
        if not self.domain_capacity:
            return 0.0
        return sum(self.lines[domain].values()) / self.domain_capacity


def measure_occupancy(
    occupancy: Sequence[Dict[int, int]], domain_capacity: int
) -> OccupancySnapshot:
    """Build a snapshot from per-domain VM line counts.

    Parameters
    ----------
    occupancy:
        ``occupancy[d][vm_id] -> lines`` (from
        :attr:`repro.core.experiment.ExperimentResult.occupancy`).
    domain_capacity:
        Lines per domain, for utilization.
    """
    shares: List[Dict[int, float]] = []
    lines: List[Dict[int, int]] = []
    for domain_counts in occupancy:
        counts = {vm: n for vm, n in domain_counts.items() if vm >= 0}
        total = sum(counts.values())
        lines.append(dict(counts))
        if total:
            shares.append({vm: n / total for vm, n in counts.items()})
        else:
            shares.append({})
    return OccupancySnapshot(
        shares=tuple(shares), lines=tuple(lines), domain_capacity=domain_capacity
    )

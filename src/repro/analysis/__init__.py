"""Result analysis: replication, occupancy, locality, persistence,
and report formatting."""

from .compare import ResultComparison, VMComparison, compare_results
from .characterize import (
    ReuseProfile,
    miss_rate_at,
    reuse_distances,
    reuse_profile,
    working_set_curve,
)
from .fairness import FairnessReport, fairness_report, jains_index
from .occupancy import OccupancySnapshot, measure_occupancy
from .persist import load_result, result_from_dict, result_to_dict, save_result
from .qos_report import compare_policies, policy_table
from .replication import ReplicationSnapshot, measure_replication
from .report import bar, format_kv, format_series, format_table
from .scenario_report import (
    compare_scenario_policies,
    scenario_report,
    scenario_scorecard,
    scenario_table,
    scenario_verdict,
    scenario_window_rows,
)
from .sched_report import (
    compare_sched_policies,
    sched_report,
    sched_table,
    sched_verdict,
)
from .timeline import render_metric, sparkline, timeline_report

__all__ = [
    "ResultComparison",
    "VMComparison",
    "compare_results",
    "ReuseProfile",
    "miss_rate_at",
    "reuse_distances",
    "reuse_profile",
    "working_set_curve",
    "FairnessReport",
    "fairness_report",
    "jains_index",
    "OccupancySnapshot",
    "measure_occupancy",
    "load_result",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "compare_policies",
    "policy_table",
    "compare_sched_policies",
    "sched_report",
    "sched_table",
    "sched_verdict",
    "compare_scenario_policies",
    "scenario_report",
    "scenario_scorecard",
    "scenario_table",
    "scenario_verdict",
    "scenario_window_rows",
    "ReplicationSnapshot",
    "measure_replication",
    "bar",
    "format_kv",
    "format_series",
    "format_table",
    "render_metric",
    "sparkline",
    "timeline_report",
]

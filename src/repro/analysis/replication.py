"""Replication analysis (Figure 12).

A block is *replicated* when it is resident in more than one last-level
cache at once.  Replication wastes aggregate capacity: the paper shows
round robin replicates the most (every thread drags the workload's
read-shared data into its own cache), private caches are the worst
case, and affinity eliminates replication entirely when a workload fits
one cache.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence, Set

__all__ = ["ReplicationSnapshot", "measure_replication"]


@dataclass(frozen=True)
class ReplicationSnapshot:
    """Replication measured over one set of domain residency sets."""

    total_lines: int
    replicated_lines: int
    unique_blocks: int
    max_copies: int

    @property
    def replicated_fraction(self) -> float:
        """Fraction of resident lines whose block also lives in at
        least one other last-level cache (Figure 12's y-axis)."""
        return self.replicated_lines / self.total_lines if self.total_lines else 0.0

    @property
    def unreplicated_fraction(self) -> float:
        """Complement — the paper quotes SPECjbb at 73% unreplicated
        under round robin."""
        return 1.0 - self.replicated_fraction

    @property
    def capacity_waste(self) -> float:
        """Fraction of resident lines that are redundant copies
        (copies beyond the first of each block)."""
        if not self.total_lines:
            return 0.0
        return (self.total_lines - self.unique_blocks) / self.total_lines


def measure_replication(residency: Sequence[Set[int]]) -> ReplicationSnapshot:
    """Compute replication over per-domain resident-block sets.

    Parameters
    ----------
    residency:
        ``residency[d]`` is the set of blocks resident in domain ``d``
        (from :meth:`repro.machine.chip.Chip.l2_resident_sets` or
        :attr:`repro.core.experiment.ExperimentResult.residency`).
    """
    copies: Counter = Counter()
    for domain_blocks in residency:
        copies.update(domain_blocks)
    total_lines = sum(copies.values())
    replicated_lines = sum(
        count for count in copies.values() if count > 1
    )
    max_copies = max(copies.values()) if copies else 0
    return ReplicationSnapshot(
        total_lines=total_lines,
        replicated_lines=replicated_lines,
        unique_blocks=len(copies),
        max_copies=max_copies,
    )

"""Policy × scenario scorecards for time-varying consolidations.

The scenario subsystem (:mod:`repro.scenarios`) makes the evaluation
question of :mod:`repro.analysis.sched_report` time-varying: *under a
given load curve, churn script, and phase script, does an adaptive
policy beat the best static placement?*  This module reuses the sched
machinery wholesale — the same QoS scorecard per cell, the same table
folding, the same verdict — and adds scenario-specific attribution:
per-window issued references against the load curve, and the scenario
hook's actuation account alongside the scheduler's migration count.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..core.experiment import ExperimentResult, ExperimentSpec, run_experiment
from .sched_report import (
    DEFAULT_PLACEMENTS,
    DEFAULT_SCHED_POLICIES,
    sched_table,
    sched_verdict,
)

if TYPE_CHECKING:  # lazy at runtime, matching sched_report
    from ..qos.metrics import QosReport

__all__ = [
    "DEFAULT_SCENARIO_POLICIES",
    "scenario_report",
    "compare_scenario_policies",
    "scenario_scorecard",
    "scenario_table",
    "scenario_verdict",
    "scenario_window_rows",
]

DEFAULT_SCENARIO_POLICIES = ("static", "contention", "adaptive")
"""Policies compared on scenarios by default (``hetero`` is omitted:
scenarios run on the homogeneous machine unless the caller shapes one)."""


def scenario_report(result: ExperimentResult) -> "QosReport":
    """Score one scenario run with the shared QoS scorecard.

    The report's ``control`` dict carries the scheduler's account (as
    in :func:`~repro.analysis.sched_report.sched_report`) merged with
    the scenario hook's actuation counters, so scenario tables can show
    both migrations and load/phase actuation per cell.
    """
    from ..qos.metrics import QosReport, per_vm_slowdowns

    control = dict(getattr(result, "sched", None) or {})
    scenario = getattr(result, "scenario", None) or {}
    if scenario:
        control["scenario"] = scenario.get("scenario")
        control["scenario_epochs"] = scenario.get("control_epochs")
        control["load_adjustments"] = scenario.get("load_adjustments")
        control["switches_applied"] = scenario.get("switches_applied")
        # the per-window issued/load attribution rides along so JSON
        # scorecards keep it and scenario_window_rows can render it
        control["windows"] = scenario.get("windows", [])
    policy = str(control.get("policy", "")) or "none"
    return QosReport(
        policy=policy,
        slowdowns=per_vm_slowdowns(result),
        workloads={vm.vm_id: vm.workload for vm in result.vm_metrics},
        control=control,
    )


def compare_scenario_policies(
    scenario: str,
    policies: Sequence[str] = DEFAULT_SCENARIO_POLICIES,
    base: Optional[ExperimentSpec] = None,
    placements: Sequence[str] = DEFAULT_PLACEMENTS,
    use_cache: bool = True,
    telemetry=None,
) -> Dict[str, "QosReport"]:
    """Score every policy on one scenario.

    Mirrors :func:`~repro.analysis.sched_report.compare_sched_policies`:
    ``"static"`` expands into one cell per placement (no scheduling
    hook), every other policy runs adaptively from ``base``'s own
    placement.  ``base`` carries machine shape, run length, seed and
    sharing; its ``mix``/``scenario`` fields are overwritten with the
    scenario's own.
    """
    from ..scenarios.registry import get_scenario

    scn = get_scenario(scenario)
    template = base or ExperimentSpec(mix=scn.mix_name)
    out: Dict[str, "QosReport"] = {}
    for policy in policies:
        if policy == "static":
            for placement in placements:
                spec = replace(template, mix=scn.mix_name,
                               scenario=scn.name, policy=placement,
                               sched_policy="")
                result = run_experiment(spec, use_cache=use_cache,
                                        telemetry=telemetry)
                out[f"static/{placement}"] = scenario_report(result)
        else:
            spec = replace(template, mix=scn.mix_name, scenario=scn.name,
                           sched_policy=policy)
            result = run_experiment(spec, use_cache=use_cache,
                                    telemetry=telemetry)
            out[policy] = scenario_report(result)
    return out


def scenario_scorecard(
    scenarios: Sequence[str],
    policies: Sequence[str] = DEFAULT_SCENARIO_POLICIES,
    base: Optional[ExperimentSpec] = None,
    placements: Sequence[str] = DEFAULT_PLACEMENTS,
    use_cache: bool = True,
    telemetry=None,
) -> Dict[str, Dict[str, "QosReport"]]:
    """The full policy × scenario matrix: one
    :func:`compare_scenario_policies` block per scenario name."""
    return {
        name: compare_scenario_policies(
            name, policies=policies, base=base, placements=placements,
            use_cache=use_cache, telemetry=telemetry)
        for name in scenarios
    }


def scenario_table(
    reports: Dict[str, "QosReport"],
) -> Tuple[List[str], List[list]]:
    """Fold one scenario's cells into (headers, rows).

    The sched table's four scorecard metrics and migration count, plus
    the scenario hook's actuation columns (identical down a column by
    construction — the scenario script does not depend on the policy —
    but printed per row so divergence would be visible).
    """
    headers, rows = sched_table(reports)
    headers = headers + ["LoadAdj", "Switches"]
    for row, report in zip(rows, reports.values()):
        row.append(report.control.get("load_adjustments", "-"))
        row.append(report.control.get("switches_applied", "-"))
    return headers, rows


def scenario_verdict(reports: Dict[str, "QosReport"]) -> Dict[str, object]:
    """Best-static vs. best-adaptive for one scenario's cells (the
    sched verdict verbatim — the question is the same, under time
    variation)."""
    return sched_verdict(reports)


def scenario_window_rows(
    summary: Dict[str, object], max_rows: int = 12,
) -> Tuple[List[str], List[list]]:
    """Per-window attribution rows from a scenario hook summary
    (``result.scenario``): window span, offered load, references
    issued per VM and in total.  Long runs are evenly subsampled to
    ``max_rows``."""
    windows = list(summary.get("windows", ()))
    if max_rows and len(windows) > max_rows:
        step = len(windows) / max_rows
        windows = [windows[int(i * step)] for i in range(max_rows)]
    vm_ids = sorted(
        {vm for window in windows for vm in window.get("issued", {})},
        key=int)
    headers = ["Start", "End", "Load"] + [f"VM{vm}" for vm in vm_ids] \
        + ["Total"]
    rows: List[list] = []
    for window in windows:
        issued = window.get("issued", {})
        rows.append(
            [window["start"], window["end"], window["load"]]
            + [issued.get(vm, 0) for vm in vm_ids]
            + [sum(issued.values())]
        )
    return headers, rows

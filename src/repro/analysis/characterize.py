"""Workload characterization: reuse distances and working sets.

Table II characterizes the workloads by sharing behaviour and footprint;
this module adds the two standard locality views used to reason about
the cache design space the paper sweeps:

* **LRU reuse (stack) distance** — for each reference, the number of
  distinct blocks touched since the previous reference to the same
  block.  The cumulative distribution is the miss-rate curve of a
  fully-associative LRU cache, so it predicts how a workload responds
  to the private → fully-shared capacity continuum.
* **working-set curve** — distinct blocks per window of W references
  (Denning's working set), showing footprint growth over time.

Distances are computed exactly with a Fenwick (binary indexed) tree in
``O(n log n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from ..errors import ReproError

__all__ = [
    "FenwickTree",
    "reuse_distances",
    "ReuseProfile",
    "reuse_profile",
    "miss_rate_at",
    "working_set_curve",
]


class FenwickTree:
    """A binary indexed tree over ``n`` slots (prefix sums in O(log n))."""

    def __init__(self, n: int):
        if n <= 0:
            raise ReproError("FenwickTree needs a positive size")
        self.n = n
        self._tree = [0] * (n + 1)

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` at 0-based ``index``."""
        if not 0 <= index < self.n:
            raise ReproError(f"index {index} out of range [0, {self.n})")
        i = index + 1
        while i <= self.n:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of slots ``[0, index]`` (0-based, inclusive)."""
        if index < 0:
            return 0
        i = min(index, self.n - 1) + 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of slots ``[lo, hi]`` inclusive."""
        return self.prefix_sum(hi) - self.prefix_sum(lo - 1)


def reuse_distances(blocks: Iterable[int]) -> Iterator[int]:
    """Yield the LRU stack distance of every reference.

    A cold (first-touch) reference yields -1.  Distance 0 means the
    block was the most recently used; a fully-associative LRU cache of
    ``C`` lines hits exactly the references with distance ``< C``.
    """
    blocks = list(blocks)
    n = len(blocks)
    if n == 0:
        return
    tree = FenwickTree(n)
    last_pos: Dict[int, int] = {}
    for t, block in enumerate(blocks):
        prev = last_pos.get(block)
        if prev is None:
            yield -1
        else:
            # distinct blocks touched strictly after prev = marks in (prev, t)
            yield tree.range_sum(prev + 1, t - 1)
            tree.add(prev, -1)
        tree.add(t, 1)
        last_pos[block] = t


@dataclass(frozen=True)
class ReuseProfile:
    """Summary of a reference stream's temporal locality."""

    refs: int
    cold_refs: int
    #: sorted non-cold distances (kept for exact miss-rate queries)
    distances: Tuple[int, ...]

    @property
    def unique_blocks(self) -> int:
        return self.cold_refs

    def miss_rate(self, cache_lines: int) -> float:
        """Miss rate of a fully-associative LRU cache of ``cache_lines``
        (cold misses included)."""
        if self.refs == 0:
            return 0.0
        import bisect

        hits = bisect.bisect_left(self.distances, cache_lines)
        return 1.0 - hits / self.refs

    def percentile_distance(self, fraction: float) -> int:
        """The distance below which ``fraction`` of reuses fall."""
        if not self.distances:
            return 0
        if not 0.0 <= fraction <= 1.0:
            raise ReproError("fraction must be within [0, 1]")
        index = min(len(self.distances) - 1,
                    int(fraction * len(self.distances)))
        return self.distances[index]


def reuse_profile(blocks: Iterable[int]) -> ReuseProfile:
    """Compute a :class:`ReuseProfile` over a reference stream."""
    cold = 0
    dists: List[int] = []
    count = 0
    for distance in reuse_distances(blocks):
        count += 1
        if distance < 0:
            cold += 1
        else:
            dists.append(distance)
    dists.sort()
    return ReuseProfile(refs=count, cold_refs=cold, distances=tuple(dists))


def miss_rate_at(profile: ReuseProfile,
                 capacities: Sequence[int]) -> List[Tuple[int, float]]:
    """Miss-rate curve samples ``[(capacity, miss_rate), ...]``."""
    return [(c, profile.miss_rate(c)) for c in capacities]


def working_set_curve(blocks: Sequence[int],
                      window_sizes: Sequence[int]) -> List[Tuple[int, float]]:
    """Mean distinct blocks per window, for each window size.

    Windows are disjoint (tumbling), which is accurate enough for
    curve shapes and keeps the computation linear.
    """
    blocks = list(blocks)
    out: List[Tuple[int, float]] = []
    for window in window_sizes:
        if window <= 0:
            raise ReproError("window sizes must be positive")
        sizes = []
        for start in range(0, len(blocks) - window + 1, window):
            sizes.append(len(set(blocks[start:start + window])))
        if sizes:
            out.append((window, sum(sizes) / len(sizes)))
    return out

"""Compare two experiment results.

Consolidation studies are pairwise by nature — affinity vs. round
robin, shared LRU vs. way quotas, 16 vs. 64 cores.  This module lines
two results up VM-by-VM (matched by workload, in VM order) and reports
the metric ratios; the CLI's ``compare`` command and the longer
examples use it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.experiment import ExperimentResult
from ..core.metrics import VMMetrics
from ..errors import ReproError

__all__ = ["VMComparison", "ResultComparison", "compare_results"]


@dataclass(frozen=True)
class VMComparison:
    """Metric ratios (b / a) for one matched VM pair."""

    workload: str
    vm_a: VMMetrics
    vm_b: VMMetrics

    @staticmethod
    def _ratio(numerator: float, denominator: float) -> float:
        if denominator == 0:
            return float("inf") if numerator else 1.0
        return numerator / denominator

    @property
    def cycles_ratio(self) -> float:
        return self._ratio(self.vm_b.cycles, self.vm_a.cycles)

    @property
    def miss_rate_ratio(self) -> float:
        return self._ratio(self.vm_b.miss_rate, self.vm_a.miss_rate)

    @property
    def miss_latency_ratio(self) -> float:
        return self._ratio(self.vm_b.mean_miss_latency,
                           self.vm_a.mean_miss_latency)


@dataclass(frozen=True)
class ResultComparison:
    """All matched VM pairs of two runs, plus run labels."""

    label_a: str
    label_b: str
    vms: tuple

    def rows(self) -> List[list]:
        """Table rows: workload, cycles x, miss-rate x, miss-latency x."""
        return [
            [f"vm{pair.vm_a.vm_id} ({pair.workload})",
             pair.cycles_ratio, pair.miss_rate_ratio,
             pair.miss_latency_ratio]
            for pair in self.vms
        ]

    def mean_cycles_ratio(self) -> float:
        return sum(pair.cycles_ratio for pair in self.vms) / len(self.vms)

    def worst_vm(self) -> VMComparison:
        """The VM most slowed down going a -> b."""
        return max(self.vms, key=lambda pair: pair.cycles_ratio)


def compare_results(
    a: ExperimentResult, b: ExperimentResult,
    label_a: str = "a", label_b: str = "b",
) -> ResultComparison:
    """Match the two runs' VMs and compute metric ratios (b over a).

    The runs must have the same mix (same workloads in the same VM
    order); anything else is a user error worth failing loudly on.
    """
    if [vm.workload for vm in a.vm_metrics] != [
        vm.workload for vm in b.vm_metrics
    ]:
        raise ReproError(
            "results are not comparable: VM workload sequences differ "
            f"({[v.workload for v in a.vm_metrics]} vs "
            f"{[v.workload for v in b.vm_metrics]})"
        )
    pairs = tuple(
        VMComparison(workload=vm_a.workload, vm_a=vm_a, vm_b=vm_b)
        for vm_a, vm_b in zip(a.vm_metrics, b.vm_metrics)
    )
    return ResultComparison(label_a=label_a, label_b=label_b, vms=pairs)

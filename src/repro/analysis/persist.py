"""Serialization of experiment results.

Results round-trip to JSON so studies can be archived, diffed across
code versions, and post-processed without re-simulating.  The CLI's
``--output`` flag uses this, as do the longer examples.

The dict codecs themselves live in :mod:`repro.core.store` (the
content-addressed result store uses the same record format for its disk
tier); this module re-exports them and adds the single-file
save/load convenience layer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..core.experiment import ExperimentResult
from ..core.store import result_from_dict, result_to_dict
from ..errors import ReproError

__all__ = ["result_to_dict", "result_from_dict", "save_result", "load_result"]


def save_result(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write a result as JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=2))
    return path


def load_result(path: Union[str, Path]) -> ExperimentResult:
    """Read a result saved by :func:`save_result`."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"result file {path} does not exist")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"malformed result file {path}: {exc}") from exc
    return result_from_dict(payload)

"""Serialization of experiment results.

Results round-trip to JSON so studies can be archived, diffed across
code versions, and post-processed without re-simulating.  The CLI's
``--output`` flag uses this, as do the longer examples.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

from ..core.experiment import ChipSummary, ExperimentResult, ExperimentSpec
from ..core.metrics import VMMetrics
from ..core.mixes import Mix
from ..errors import ReproError

__all__ = ["result_to_dict", "result_from_dict", "save_result", "load_result"]

_FORMAT_VERSION = 1


def result_to_dict(result: ExperimentResult) -> dict:
    """A JSON-serializable dict capturing the full result."""
    return {
        "format_version": _FORMAT_VERSION,
        "spec": dataclasses.asdict(result.spec),
        "mix": {
            "name": result.mix.name,
            "components": [list(c) for c in result.mix.components],
        },
        "vm_metrics": [dataclasses.asdict(vm) for vm in result.vm_metrics],
        "final_time": result.final_time,
        "chip_summary": dataclasses.asdict(result.chip_summary),
        "occupancy": [
            {str(vm): lines for vm, lines in domain.items()}
            for domain in result.occupancy
        ],
        "residency": [sorted(domain) for domain in result.residency],
        "domain_lines": result.domain_lines,
        "assignments": result.assignments,
    }


def result_from_dict(payload: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict`
    output."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported result format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    spec = ExperimentSpec(**payload["spec"])
    mix_payload = payload["mix"]
    mix = Mix(
        mix_payload["name"],
        tuple((workload, count) for workload, count in mix_payload["components"]),
    )
    return ExperimentResult(
        spec=spec,
        mix=mix,
        vm_metrics=[VMMetrics(**vm) for vm in payload["vm_metrics"]],
        final_time=payload["final_time"],
        chip_summary=ChipSummary(**payload["chip_summary"]),
        occupancy=[
            {int(vm): lines for vm, lines in domain.items()}
            for domain in payload["occupancy"]
        ],
        residency=[set(domain) for domain in payload["residency"]],
        domain_lines=payload["domain_lines"],
        assignments=[list(cores) for cores in payload.get("assignments", [])],
    )


def save_result(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write a result as JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=2))
    return path


def load_result(path: Union[str, Path]) -> ExperimentResult:
    """Read a result saved by :func:`save_result`."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"result file {path} does not exist")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"malformed result file {path}: {exc}") from exc
    return result_from_dict(payload)

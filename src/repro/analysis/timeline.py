"""Per-VM phase timelines rendered from epoch telemetry series.

Turns the time series sampled by :class:`~repro.obs.probes.EpochProbe`
into compact unicode sparkline plots: one row per VM per metric, time
running left to right.  This is the textual counterpart of the paper's
time-resolved occupancy/interference figures — phase shifts, contention
transients, and completion points are visible at a glance from a
terminal.

Input is the plain-JSON series form (``{name: [[t, value], ...]}``,
see :func:`repro.obs.series.series_to_dict`) so the renderer works on
live hubs, ``result.series``, and store sidecar files alike.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["sparkline", "render_metric", "timeline_report"]

_BLOCKS = " ▁▂▃▄▅▆▇█"

#: the probe's per-VM metrics, in display order
_VM_METRICS = ("miss_rate", "miss_latency", "l2_share")


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Render ``values`` as one row of unicode block characters.

    ``lo``/``hi`` pin the scale (shared across rows for comparability);
    by default the row is self-scaled.  A flat row renders as the
    lowest block so "no activity" and "peak activity" never look alike.
    """
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _BLOCKS[1] * len(values)
    top = len(_BLOCKS) - 1
    out = []
    for value in values:
        norm = (value - lo) / span
        index = int(norm * top)
        out.append(_BLOCKS[max(0, min(top, index))])
    return "".join(out)


def _resample(points: Sequence[Tuple[int, float]], width: int) -> List[float]:
    """Reduce ``points`` to ``width`` buckets by bucket-mean."""
    if len(points) <= width:
        return [v for _t, v in points]
    out: List[float] = []
    n = len(points)
    for bucket in range(width):
        start = bucket * n // width
        end = max(start + 1, (bucket + 1) * n // width)
        chunk = points[start:end]
        out.append(sum(v for _t, v in chunk) / len(chunk))
    return out


def _series_by_metric(
    series: Mapping[str, Sequence],
) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """Group ``vm<j>.<metric>`` / ``queue.<resource>`` series by metric."""
    grouped: Dict[str, Dict[str, List[Tuple[int, float]]]] = {}
    for name, points in series.items():
        if "." not in name:
            continue
        row, metric = name.split(".", 1)
        if row == "queue":
            row, metric = metric, "queue_depth"
        grouped.setdefault(metric, {})[row] = [
            (int(t), float(v)) for t, v in points
        ]
    return grouped


def render_metric(
    metric: str,
    rows: Mapping[str, Sequence[Tuple[int, float]]],
    width: int = 64,
) -> str:
    """One metric section: a shared-scale sparkline per row (VM)."""
    all_values = [v for points in rows.values() for _t, v in points]
    if not all_values:
        return f"{metric}: (no samples)"
    lo, hi = min(all_values), max(all_values)
    label_width = max(len(label) for label in rows)
    lines = [f"{metric}  [{lo:.4g} .. {hi:.4g}]"]
    for label in sorted(rows):
        values = _resample(list(rows[label]), width)
        lines.append(
            f"  {label.ljust(label_width)}  {sparkline(values, lo, hi)}"
        )
    return "\n".join(lines)


def timeline_report(
    series: Mapping[str, Sequence],
    metrics: Optional[Sequence[str]] = None,
    width: int = 64,
) -> str:
    """Render every sampled metric as a per-VM phase plot.

    ``series`` maps series names to point lists; ``metrics`` restricts
    and orders the sections (default: the probe's per-VM metrics, then
    queue depths).
    """
    grouped = _series_by_metric(series)
    if not grouped:
        return "(no telemetry series; run with --telemetry --epoch N)"
    if metrics is None:
        metrics = [m for m in _VM_METRICS if m in grouped]
        metrics += sorted(set(grouped) - set(metrics))
    t_max = max(
        (t for points in series.values() for t, _v in points), default=0
    )
    sections = [f"telemetry timeline  (0 .. {t_max} cycles, "
                f"{width} columns)"]
    for metric in metrics:
        rows = grouped.get(metric)
        if rows:
            sections.append(render_metric(metric, rows, width=width))
    return "\n\n".join(sections)

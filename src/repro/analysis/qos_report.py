"""Cross-policy QoS comparison over the Table IV mixes.

The paper's conclusion argues consolidation needs performance
isolation; :mod:`repro.qos` supplies the mechanisms.  This module asks
the resulting evaluation question: *for each workload mix, what does
each partitioning policy cost or buy* in throughput (weighted
speedup), balance (harmonic speedup, Jain fairness), and worst-case
per-VM slowdown?

:func:`compare_policies` runs (or fetches from the store) one fully
shared-L2 experiment per (mix, policy) cell and scores each with
:func:`repro.qos.metrics.qos_report`; :func:`policy_table` folds the
grid into rows ready for :func:`repro.analysis.report.format_table`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..core.experiment import ExperimentSpec, run_experiment

if TYPE_CHECKING:  # imported lazily at runtime: repro.qos.metrics
    # imports this package back for jains_index, so a module-level
    # import here would be circular
    from ..qos.metrics import QosReport

__all__ = [
    "DEFAULT_POLICIES",
    "compare_policies",
    "policy_table",
]

DEFAULT_POLICIES = ("", "static-equal", "missrate-prop", "ucp")
"""Policies compared by default; ``""`` is the uncontrolled run."""

#: scorecard attribute per selectable metric
_METRICS = {
    "weighted_speedup": "weighted_speedup",
    "harmonic_speedup": "harmonic_speedup",
    "fairness": "fairness",
    "max_slowdown": "max_slowdown",
}


def compare_policies(
    mixes: Sequence[str],
    policies: Sequence[str] = DEFAULT_POLICIES,
    base: Optional[ExperimentSpec] = None,
    use_cache: bool = True,
) -> Dict[Tuple[str, str], QosReport]:
    """Score every (mix, policy) cell on a fully shared L2.

    Returns ``{(mix, policy): QosReport}``.  ``base`` carries run
    length / seed / scale; its sharing is forced to ``"shared"`` so the
    policies actually arbitrate a contended domain, and the legacy
    ``l2_vm_quota`` flag is cleared (the QoS layer owns quotas here).
    """
    from ..qos.metrics import qos_report

    template = base or ExperimentSpec(mix=mixes[0])
    out: Dict[Tuple[str, str], "QosReport"] = {}
    for mix in mixes:
        for policy in policies:
            spec = replace(
                template, mix=mix, sharing="shared",
                l2_vm_quota=False, qos_policy=policy,
            )
            result = run_experiment(spec, use_cache=use_cache)
            out[(mix, policy)] = qos_report(result)
    return out


def policy_table(
    reports: Dict[Tuple[str, str], QosReport],
    metric: str = "weighted_speedup",
) -> Tuple[List[str], List[list]]:
    """Fold :func:`compare_policies` output into (headers, rows).

    One row per mix, one column per policy, cells holding ``metric``
    (any of ``weighted_speedup``, ``harmonic_speedup``, ``fairness``,
    ``max_slowdown``) rounded for display.
    """
    try:
        attribute = _METRICS[metric]
    except KeyError:
        raise ValueError(
            f"unknown metric {metric!r}; choose one of {sorted(_METRICS)}"
        ) from None
    mixes: List[str] = []
    policies: List[str] = []
    for mix, policy in reports:
        if mix not in mixes:
            mixes.append(mix)
        if policy not in policies:
            policies.append(policy)
    headers = ["Mix"] + [policy or "uncontrolled" for policy in policies]
    rows = []
    for mix in mixes:
        row: list = [mix]
        for policy in policies:
            report = reports.get((mix, policy))
            row.append(
                round(getattr(report, attribute), 3)
                if report is not None else "-"
            )
        rows.append(row)
    return headers, rows

"""The hypervisor: virtual machines, memory partitioning, thread binding.

The paper's methodology (Section IV-A) isolates workloads through
virtual machines: each workload gets a statically-assigned private
portion of physical memory and its threads are bound to physical cores
at startup, where they stay for the whole run.  :class:`Hypervisor`
reproduces exactly that: it carves disjoint physical-block partitions,
instantiates each workload's generators inside its partition, binds
threads to the cores chosen by the scheduling policy, and hands the
resulting :class:`~repro.sim.engine.ThreadContext` list to the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..errors import ConfigurationError, SchedulingError
from ..machine.chip import Chip
from ..sim.engine import ThreadContext
from ..sim.rng import RngFactory
from ..workloads.generator import WorkloadInstance
from ..workloads.profile import WorkloadProfile

__all__ = ["VirtualMachine", "Hypervisor"]

#: guard gap between consecutive VM partitions, in blocks.  Prevents
#: two VMs from ever mapping to adjacent blocks (belt and braces on top
#: of exact partition sizing).
PARTITION_GUARD_BLOCKS = 1024


@dataclass
class VirtualMachine:
    """One guest: a workload instance plus its physical resources."""

    vm_id: int
    instance: WorkloadInstance
    base_block: int
    partition_blocks: int
    cores: List[int] = field(default_factory=list)

    @property
    def workload_name(self) -> str:
        return self.instance.profile.name

    @property
    def num_threads(self) -> int:
        return self.instance.num_threads

    def owns_block(self, block: int) -> bool:
        return self.base_block <= block < self.base_block + self.partition_blocks


class Hypervisor:
    """Creates VMs on a chip and binds their threads to cores.

    Parameters
    ----------
    chip:
        The machine to consolidate onto.
    rng_factory:
        Source of per-thread random streams.
    """

    def __init__(self, chip: Chip, rng_factory: RngFactory):
        self.chip = chip
        self.rng_factory = rng_factory
        self.vms: List[VirtualMachine] = []
        self._next_block = 0

    def launch(
        self,
        profiles: Sequence[WorkloadProfile],
        assignments: Sequence[Sequence[int]],
        measured_refs: int,
        warmup_refs: int = 0,
        batch_size: int = 4096,
        slots_per_core: int = 1,
        start_offsets: Sequence[int] = (),
        stop_times: Sequence = (),
        phases=None,
        vm_phases: Sequence = (),
    ) -> List[ThreadContext]:
        """Create one VM per profile and return all thread contexts.

        Parameters
        ----------
        profiles:
            One profile per VM (replicated instances appear multiple
            times, e.g. three TPC-W entries for Mix 1).
        assignments:
            ``assignments[i][j]`` is the physical core for thread ``j``
            of VM ``i`` — produced by a scheduling policy.
        measured_refs, warmup_refs:
            Per-thread measurement window (see the engine).
        slots_per_core:
            Thread contexts a core may host.  1 (the paper's
            methodology: never over-committed) unless the run targets
            the Section VII over-commit study, in which case the
            contexts must be driven by
            :class:`repro.sim.overcommit.OvercommitEngine`.
        start_offsets:
            Optional per-VM start times in cycles (the paper's
            workload-start-time methodological variable).
        stop_times:
            Optional per-VM departure times in cycles (``None`` for
            "runs to completion"): VM churn for the scheduling layer.
        phases, vm_phases:
            Cyclic phase plans for the generators — ``phases`` applies
            one plan to every VM; ``vm_phases`` gives each VM its own
            plan (``None`` entries stay steady).  Scenario rosters use
            the latter; the two are mutually exclusive.
        """
        if phases is not None and vm_phases:
            raise ConfigurationError(
                "pass either a global phase plan or per-VM plans, not both"
            )
        if vm_phases and len(vm_phases) != len(profiles):
            raise ConfigurationError(
                f"{len(vm_phases)} per-VM phase plans for "
                f"{len(profiles)} VMs"
            )
        if len(profiles) != len(assignments):
            raise ConfigurationError(
                f"{len(profiles)} profiles but {len(assignments)} assignments"
            )
        if slots_per_core <= 0:
            raise ConfigurationError("slots_per_core must be positive")
        if start_offsets and len(start_offsets) != len(profiles):
            raise ConfigurationError(
                f"{len(start_offsets)} start offsets for {len(profiles)} VMs"
            )
        if stop_times and len(stop_times) != len(profiles):
            raise ConfigurationError(
                f"{len(stop_times)} stop times for {len(profiles)} VMs"
            )
        total_threads = sum(len(cores) for cores in assignments)
        capacity = self.chip.config.num_cores * slots_per_core
        if total_threads > capacity:
            raise SchedulingError(
                f"{total_threads} threads exceed {capacity} thread slots "
                f"({slots_per_core} per core)"
            )
        slot_use: dict = {}
        for cores in assignments:
            for core in cores:
                slot_use[core] = slot_use.get(core, 0) + 1
                if slot_use[core] > slots_per_core:
                    raise SchedulingError(
                        f"core {core} assigned {slot_use[core]} threads "
                        f"(limit {slots_per_core})"
                    )

        contexts: List[ThreadContext] = []
        thread_id = 0
        for vm_index, (profile, cores) in enumerate(zip(profiles, assignments)):
            if len(cores) != profile.threads:
                raise SchedulingError(
                    f"VM {vm_index} ({profile.name}) has {profile.threads} "
                    f"threads but {len(cores)} cores were assigned"
                )
            vm_id = len(self.vms)
            base = self._next_block
            vm_plan = vm_phases[vm_index] if vm_phases else phases
            instance = WorkloadInstance(
                profile,
                instance_id=vm_id,
                base_block=base,
                rng_stream=self.rng_factory.stream,
                batch_size=batch_size,
                phases=vm_plan,
            )
            vm = VirtualMachine(
                vm_id=vm_id,
                instance=instance,
                base_block=base,
                partition_blocks=profile.partition_blocks,
                cores=list(cores),
            )
            self.vms.append(vm)
            self._next_block = base + profile.partition_blocks + PARTITION_GUARD_BLOCKS
            offset = start_offsets[vm_index] if start_offsets else 0
            stop = stop_times[vm_index] if stop_times else None
            for thread_index, core in enumerate(cores):
                self.chip.bind_core_to_vm(core, vm_id)
                contexts.append(
                    ThreadContext(
                        thread_id=thread_id,
                        vm_id=vm_id,
                        core_id=core,
                        references=instance.trace(thread_index),
                        measured_refs=measured_refs,
                        warmup_refs=warmup_refs,
                        start_time=offset,
                        stop_time=stop,
                    )
                )
                thread_id += 1
        return contexts

    def rebind_thread(
        self,
        context: ThreadContext,
        core: int,
        previous: int = -1,
        bind_core: bool = True,
    ) -> None:
        """Move a launched thread's binding to another physical core.

        The paper's methodology binds statically; this exists for the
        QoS layer (:mod:`repro.qos`), whose feedback controller may
        migrate a waiting thread on an over-committed machine.  Updates
        the VM's core list and the context's binding; pass the thread's
        ``previous`` core explicitly when the caller (the engine's
        run-queue actuator) already rewrote ``context.core_id``.
        ``bind_core=False`` skips the chip's core→VM attribution update
        (used when the thread joined a busy queue whose active thread
        belongs to another VM).
        """
        if not 0 <= core < self.chip.config.num_cores:
            raise SchedulingError(
                f"core {core} out of range for a "
                f"{self.chip.config.num_cores}-core chip"
            )
        vm = self.vms[context.vm_id]
        old = context.core_id if previous < 0 else previous
        try:
            vm.cores.remove(old)
        except ValueError:
            pass
        vm.cores.append(core)
        context.core_id = core
        if bind_core:
            self.chip.bind_core_to_vm(core, context.vm_id)

    def vm_of_block(self, block: int) -> int:
        """VM owning a physical block, or -1 (for analysis code)."""
        for vm in self.vms:
            if vm.owns_block(block):
                return vm.vm_id
        return -1

    def check_isolation(self) -> None:
        """Assert that no two VM partitions overlap."""
        spans = sorted(
            (vm.base_block, vm.base_block + vm.partition_blocks, vm.vm_id)
            for vm in self.vms
        )
        for (start_a, end_a, id_a), (start_b, _end_b, id_b) in zip(spans, spans[1:]):
            if start_b < end_a:
                raise ConfigurationError(
                    f"VM {id_a} and VM {id_b} partitions overlap"
                )

"""Virtualization layer: the hypervisor and virtual machines."""

from .hypervisor import Hypervisor, VirtualMachine

__all__ = ["Hypervisor", "VirtualMachine"]

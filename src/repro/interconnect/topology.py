"""2-D mesh topology and dimension-order routing.

Table III's interconnect is a 2-D packet-switched mesh; for the 16-core
chip this is a 4x4 mesh with one router per tile.  Routing is
dimension-order (X then Y), which is deadlock-free and deterministic —
a property the routing tests assert.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..errors import ConfigurationError

__all__ = ["MeshTopology"]


class MeshTopology:
    """A ``width x height`` mesh of tiles numbered row-major.

    Tile ``t`` sits at ``(x, y) = (t % width, t // width)``.  Links are
    unidirectional and identified by ``(src_tile, dst_tile)`` pairs of
    adjacent tiles.
    """

    def __init__(self, width: int, height: int):
        if width <= 0 or height <= 0:
            raise ConfigurationError(
                f"mesh dimensions must be positive, got {width}x{height}"
            )
        self.width = width
        self.height = height
        self.num_tiles = width * height
        self._links: Dict[Tuple[int, int], int] = {}
        for src in range(self.num_tiles):
            for dst in self._neighbors(src):
                self._links[(src, dst)] = len(self._links)

    @classmethod
    def square_for(cls, num_tiles: int) -> "MeshTopology":
        """Smallest square-ish mesh holding ``num_tiles`` tiles."""
        side = 1
        while side * side < num_tiles:
            side += 1
        if side * side != num_tiles:
            raise ConfigurationError(
                f"{num_tiles} tiles do not form a square mesh; "
                "construct MeshTopology(width, height) explicitly"
            )
        return cls(side, side)

    # ------------------------------------------------------------------

    def coords(self, tile: int) -> Tuple[int, int]:
        self._check_tile(tile)
        return tile % self.width, tile // self.width

    def tile_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ConfigurationError(f"coordinates ({x}, {y}) outside mesh")
        return y * self.width + x

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two tiles."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src: int, dst: int) -> List[int]:
        """Dimension-order (X-then-Y) route: tiles visited, inclusive."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [src]
        x, y = sx, sy
        step_x = 1 if dx > x else -1
        while x != dx:
            x += step_x
            path.append(self.tile_at(x, y))
        step_y = 1 if dy > y else -1
        while y != dy:
            y += step_y
            path.append(self.tile_at(x, y))
        return path

    def route_links(self, src: int, dst: int) -> List[int]:
        """Link ids traversed by the DOR route from src to dst."""
        path = self.route(src, dst)
        return [self._links[(a, b)] for a, b in zip(path, path[1:])]

    def link_id(self, src: int, dst: int) -> int:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise ConfigurationError(
                f"tiles {src} and {dst} are not adjacent"
            ) from None

    @property
    def num_links(self) -> int:
        return len(self._links)

    def links(self) -> Iterator[Tuple[int, int]]:
        """All (src, dst) adjacent pairs."""
        return iter(self._links)

    def centroid_tile(self, tiles: List[int]) -> int:
        """Tile closest to the centroid of a tile group.

        Used to place the home bank of an L2 domain amid its member
        cores.
        """
        if not tiles:
            raise ConfigurationError("centroid of empty tile set")
        xs = [self.coords(t)[0] for t in tiles]
        ys = [self.coords(t)[1] for t in tiles]
        cx = sum(xs) / len(xs)
        cy = sum(ys) / len(ys)
        best = min(tiles, key=lambda t: (abs(self.coords(t)[0] - cx)
                                         + abs(self.coords(t)[1] - cy), t))
        return best

    def _neighbors(self, tile: int) -> List[int]:
        x, y = self.coords(tile)
        out = []
        if x + 1 < self.width:
            out.append(self.tile_at(x + 1, y))
        if x - 1 >= 0:
            out.append(self.tile_at(x - 1, y))
        if y + 1 < self.height:
            out.append(self.tile_at(x, y + 1))
        if y - 1 >= 0:
            out.append(self.tile_at(x, y - 1))
        return out

    def _check_tile(self, tile: int) -> None:
        if not (0 <= tile < self.num_tiles):
            raise ConfigurationError(
                f"tile {tile} out of range [0, {self.num_tiles})"
            )

    def __repr__(self) -> str:
        return f"MeshTopology({self.width}x{self.height})"

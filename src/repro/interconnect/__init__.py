"""On-chip network substrate: mesh topology, flit-level and analytical models."""

from .analytical import HOP_CYCLES, AnalyticalMesh, TraversalResult
from .network import FlitNetwork
from .packet import FLIT_BYTES, Flit, MessageClass, Packet, flits_for
from .router import PORTS, Port, Router
from .topology import MeshTopology

__all__ = [
    "HOP_CYCLES",
    "AnalyticalMesh",
    "TraversalResult",
    "FlitNetwork",
    "FLIT_BYTES",
    "Flit",
    "MessageClass",
    "Packet",
    "flits_for",
    "PORTS",
    "Port",
    "Router",
    "MeshTopology",
]

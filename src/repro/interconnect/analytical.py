"""Fast contention-aware mesh latency model.

This is the interconnect model on the simulator's hot path.  Each
unidirectional mesh link is a FIFO server with a one-cycle-per-flit
service time; a message's head flit pays the 3-stage router pipeline
plus one link-traversal cycle per hop, queueing behind earlier traffic
on every link it crosses, and the tail adds ``flits - 1`` serialization
cycles at the destination.

The model reproduces the congestion phenomena the paper attributes to
scheduling policy — affinity concentrating a workload's coherence
traffic on a few links (hotspots) versus round robin spreading it — at
a tiny fraction of the cost of flit-level simulation.  The flit-level
model in :mod:`repro.interconnect.network` is used to calibrate the
per-hop constants (see ``benchmarks/test_noc_calibration.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..sim.server import FifoServer
from .topology import MeshTopology

__all__ = ["AnalyticalMesh", "TraversalResult"]

#: head-flit latency per hop: 3 router pipeline stages + 1 link cycle.
#: The paper's routers are 3-stage with speculative VC/switch allocation,
#: so under low load a hop costs the full pipeline plus the link.
HOP_CYCLES = 4


@dataclass(frozen=True)
class TraversalResult:
    """Latency decomposition of one message traversal."""

    latency: int
    hops: int
    queueing: int

    @property
    def zero_load(self) -> int:
        return self.latency - self.queueing


class AnalyticalMesh:
    """Per-link FIFO queueing model over a :class:`MeshTopology`.

    Parameters
    ----------
    topology:
        The mesh.
    hop_cycles:
        Head latency per hop (router pipeline + link).
    track_tile_traffic:
        When True, per-source/destination traffic counters are kept for
        hotspot analysis (cheap; on by default).
    """

    def __init__(
        self,
        topology: MeshTopology,
        hop_cycles: int = HOP_CYCLES,
        track_tile_traffic: bool = True,
    ):
        self.topology = topology
        self.hop_cycles = hop_cycles
        self._links = [
            FifoServer(name=f"link/{src}->{dst}", service_time=1)
            for (src, dst) in topology.links()
        ]
        self.messages = 0
        self.total_latency = 0
        self.total_queueing = 0
        self.total_hops = 0
        self.track_tile_traffic = track_tile_traffic
        self.tile_traffic: Dict[int, int] = {}
        # DOR routes are static; cache the link lists per (src, dst)
        self._route_cache: Dict[int, List[int]] = {}
        self._route_key_shift = max(1, topology.num_tiles).bit_length()

    def traverse(self, src: int, dst: int, flits: int, now: int) -> TraversalResult:
        """Send a ``flits``-flit message from ``src`` to ``dst`` at ``now``.

        Returns the traversal latency including queueing.  ``src == dst``
        costs nothing (same-tile communication stays inside the tile).
        """
        if src == dst:
            return TraversalResult(latency=0, hops=0, queueing=0)
        key = (src << self._route_key_shift) | dst
        links = self._route_cache.get(key)
        if links is None:
            links = self.topology.route_links(src, dst)
            self._route_cache[key] = links
        head_time = now
        queueing = 0
        hop_cycles = self.hop_cycles
        servers = self._links
        for link_id in links:
            wait = servers[link_id].request(head_time, service_time=flits)
            queueing += wait
            head_time += wait + hop_cycles
        latency = (head_time - now) + (flits - 1)
        self.messages += 1
        self.total_latency += latency
        self.total_queueing += queueing
        self.total_hops += len(links)
        if self.track_tile_traffic:
            tt = self.tile_traffic
            tt[src] = tt.get(src, 0) + flits
            tt[dst] = tt.get(dst, 0) + flits
        return TraversalResult(latency=latency, hops=len(links), queueing=queueing)

    def zero_load_latency(self, src: int, dst: int, flits: int) -> int:
        """Latency with no contention (for tests and calibration)."""
        if src == dst:
            return 0
        return self.topology.hops(src, dst) * self.hop_cycles + (flits - 1)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.messages if self.messages else 0.0

    @property
    def mean_queueing(self) -> float:
        return self.total_queueing / self.messages if self.messages else 0.0

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.messages if self.messages else 0.0

    def link_utilizations(self, horizon: int) -> List[float]:
        """Per-link busy fraction over ``horizon`` cycles."""
        return [link.stats.utilization(horizon) for link in self._links]

    def link_queue_depths(self, now: int) -> List[float]:
        """Per-link backlog at ``now`` in service times (telemetry)."""
        return [link.queue_depth(now) for link in self._links]

    def mean_link_queue_depth(self, now: int) -> float:
        """Mean link backlog at ``now`` across every mesh link."""
        depths = self.link_queue_depths(now)
        return sum(depths) / len(depths) if depths else 0.0

    def hottest_links(self, horizon: int, top: int = 5) -> List[tuple]:
        """The ``top`` busiest links as ``((src, dst), utilization)``."""
        pairs = list(self.topology.links())
        utils = self.link_utilizations(horizon)
        ranked = sorted(zip(pairs, utils), key=lambda item: -item[1])
        return ranked[:top]

    def reset(self) -> None:
        for link in self._links:
            link.reset()
        self.messages = 0
        self.total_latency = 0
        self.total_queueing = 0
        self.total_hops = 0
        self.tile_traffic.clear()

"""Flit-level virtual-channel router.

Implements the router of Table III: a 3-stage pipeline (route
computation; speculative virtual-channel + switch allocation; switch
and link traversal) with credit-based virtual-channel flow control and
dimension-order routing.  Five ports: North, South, East, West, Local.

The router is cycle-stepped by :class:`repro.interconnect.network.FlitNetwork`;
this module holds the per-router state machines.  Speculation is
modelled the way it affects timing: a head flit performs VC allocation
and switch allocation in the same cycle, so the minimum per-hop latency
is 3 router cycles + 1 link cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from .packet import Flit

__all__ = ["PORTS", "Port", "VirtualChannel", "InputPort", "Router"]


class Port:
    """Port indices; LOCAL is the injection/ejection port."""

    EAST = 0
    WEST = 1
    NORTH = 2
    SOUTH = 3
    LOCAL = 4


PORTS = 5

#: pipeline depth before a flit may compete for the switch:
#: cycle 0 = buffer write + route computation, cycle 1 = VA/SA
#: (speculative, single cycle), cycle 2 = switch+link traversal.
PIPELINE_STAGES = 2


class VirtualChannel:
    """One input virtual channel: a flit FIFO plus routing state."""

    __slots__ = ("buffer", "ready_times", "out_port", "out_vc", "capacity")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.buffer: Deque[Flit] = deque()
        self.ready_times: Deque[int] = deque()
        self.out_port: Optional[int] = None  # route of current packet
        self.out_vc: Optional[int] = None  # downstream VC held by packet

    @property
    def occupancy(self) -> int:
        return len(self.buffer)

    @property
    def has_credit_space(self) -> bool:
        return len(self.buffer) < self.capacity

    def head_ready(self, cycle: int) -> bool:
        return bool(self.buffer) and self.ready_times[0] <= cycle

    def push(self, flit: Flit, cycle: int) -> None:
        self.buffer.append(flit)
        self.ready_times.append(cycle + PIPELINE_STAGES)

    def pop(self) -> Flit:
        self.ready_times.popleft()
        return self.buffer.popleft()


class InputPort:
    """All virtual channels of one router input port."""

    __slots__ = ("vcs",)

    def __init__(self, num_vcs: int, vc_capacity: int):
        self.vcs = [VirtualChannel(vc_capacity) for _ in range(num_vcs)]


class Router:
    """One mesh router: input buffers, allocators, and credit state."""

    def __init__(self, tile: int, num_vcs: int = 4, vc_capacity: int = 4):
        self.tile = tile
        self.num_vcs = num_vcs
        self.vc_capacity = vc_capacity
        self.inputs = [InputPort(num_vcs, vc_capacity) for _ in range(PORTS)]
        # credits[port][vc]: free slots in the *downstream* buffer the
        # output port feeds.  LOCAL output is an infinite sink.
        self.credits: List[List[int]] = [
            [vc_capacity] * num_vcs for _ in range(PORTS)
        ]
        # which downstream VC is held by an in-flight packet, per output
        self.vc_busy: List[List[bool]] = [
            [False] * num_vcs for _ in range(PORTS)
        ]
        self._rr_priority: Dict[int, int] = {p: 0 for p in range(PORTS)}
        self.flits_routed = 0

    # ------------------------------------------------------------------

    def accept(self, port: int, vc: int, flit: Flit, cycle: int) -> None:
        """A flit arrives from the upstream link into input ``port``."""
        self.inputs[port].vcs[vc].push(flit, cycle)

    def free_downstream_vc(self, out_port: int, out_vc: int) -> None:
        self.vc_busy[out_port][out_vc] = False

    def return_credit(self, out_port: int, out_vc: int) -> None:
        self.credits[out_port][out_vc] += 1

    def allocate(self, cycle: int, route_fn) -> List[Tuple[int, int, Flit, int, int]]:
        """Run one cycle of (speculative) VC + switch allocation.

        Parameters
        ----------
        cycle:
            Current network cycle.
        route_fn:
            ``route_fn(tile, dst) -> output port`` implementing DOR.

        Returns
        -------
        list of ``(out_port, out_vc, flit, in_port, in_vc)`` winners;
        the network moves each winner across the link.  At most one
        winner per output port and one per input port per cycle
        (a crossbar with single-flit ports).
        """
        winners: List[Tuple[int, int, Flit, int, int]] = []
        used_inputs: set = set()
        for out_port in range(PORTS):
            start = self._rr_priority[out_port]
            chosen = None
            for offset in range(PORTS * self.num_vcs):
                idx = (start + offset) % (PORTS * self.num_vcs)
                in_port, in_vc = divmod(idx, self.num_vcs)
                if in_port in used_inputs:
                    continue
                vc = self.inputs[in_port].vcs[in_vc]
                if not vc.head_ready(cycle):
                    continue
                flit = vc.buffer[0]
                if vc.out_port is None:
                    vc.out_port = route_fn(self.tile, flit.packet.dst)
                if vc.out_port != out_port:
                    continue
                if out_port == Port.LOCAL:
                    chosen = (in_port, in_vc, vc, flit, 0)
                    break
                # speculative VA+SA: heads grab a free downstream VC in
                # the same cycle they win the switch
                if flit.is_head and vc.out_vc is None:
                    free_vc = self._free_downstream_vc(out_port)
                    if free_vc is None:
                        continue
                    down_vc = free_vc
                else:
                    down_vc = vc.out_vc
                    if down_vc is None:
                        continue
                if self.credits[out_port][down_vc] <= 0:
                    continue
                chosen = (in_port, in_vc, vc, flit, down_vc)
                break
            if chosen is None:
                continue
            in_port, in_vc, vc, flit, down_vc = chosen
            used_inputs.add(in_port)
            if out_port != Port.LOCAL:
                if flit.is_head:
                    self.vc_busy[out_port][down_vc] = True
                vc.out_vc = down_vc
                self.credits[out_port][down_vc] -= 1
            vc.pop()
            if flit.is_tail:
                vc.out_port = None
                vc.out_vc = None
            winners.append((out_port, down_vc, flit, in_port, in_vc))
            self._rr_priority[out_port] = (
                in_port * self.num_vcs + in_vc + 1
            ) % (PORTS * self.num_vcs)
            self.flits_routed += 1
        return winners

    def _free_downstream_vc(self, out_port: int) -> Optional[int]:
        for vc in range(self.num_vcs):
            if not self.vc_busy[out_port][vc] and self.credits[out_port][vc] > 0:
                return vc
        return None

    def buffered_flits(self) -> int:
        return sum(
            vc.occupancy for port in self.inputs for vc in port.vcs
        )

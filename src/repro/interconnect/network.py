"""Cycle-stepped flit-level mesh network.

Connects the routers of :mod:`repro.interconnect.router` over a
:class:`~repro.interconnect.topology.MeshTopology`.  Used to calibrate
the fast analytical model and for NoC-focused studies; the main
consolidation simulations use :class:`~repro.interconnect.analytical.AnalyticalMesh`
for speed.

Flow control is credit-based: a flit may only cross a link when the
downstream input VC has a free slot; the credit returns when the flit
later leaves that buffer.  Link traversal takes one cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import SimulationError
from .packet import Flit, Packet, packet_flits
from .router import Port, Router
from .topology import MeshTopology

__all__ = ["FlitNetwork"]


class FlitNetwork:
    """A mesh of flit-level routers.

    Parameters
    ----------
    topology:
        The mesh shape.
    num_vcs, vc_capacity:
        Virtual channels per input port and flits per VC buffer.
    """

    def __init__(self, topology: MeshTopology, num_vcs: int = 4, vc_capacity: int = 4):
        self.topology = topology
        self.routers = [
            Router(tile, num_vcs=num_vcs, vc_capacity=vc_capacity)
            for tile in range(topology.num_tiles)
        ]
        self.cycle = 0
        self.delivered: List[Packet] = []
        self._inject_queues: List[Deque[Flit]] = [
            deque() for _ in range(topology.num_tiles)
        ]
        # per-tile map of packet_id -> local-port VC index, alive while
        # the packet's flits are being injected
        self._local_vc_assignment: List[Dict[int, int]] = [
            {} for _ in range(topology.num_tiles)
        ]
        self._in_flight = 0
        # map (tile, output port) -> (neighbor tile, neighbor input port)
        self._wiring: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for tile in range(topology.num_tiles):
            x, y = topology.coords(tile)
            if x + 1 < topology.width:
                self._wire(tile, Port.EAST, topology.tile_at(x + 1, y), Port.WEST)
            if x - 1 >= 0:
                self._wire(tile, Port.WEST, topology.tile_at(x - 1, y), Port.EAST)
            if y + 1 < topology.height:
                self._wire(tile, Port.SOUTH, topology.tile_at(x, y + 1), Port.NORTH)
            if y - 1 >= 0:
                self._wire(tile, Port.NORTH, topology.tile_at(x, y - 1), Port.SOUTH)

    def _wire(self, tile: int, out_port: int, neighbor: int, in_port: int) -> None:
        self._wiring[(tile, out_port)] = (neighbor, in_port)

    # ------------------------------------------------------------------
    # traffic interface
    # ------------------------------------------------------------------

    def inject(self, packet: Packet) -> None:
        """Queue a packet for injection at its source tile."""
        if not (0 <= packet.src < self.topology.num_tiles):
            raise SimulationError(f"bad source tile {packet.src}")
        if not (0 <= packet.dst < self.topology.num_tiles):
            raise SimulationError(f"bad destination tile {packet.dst}")
        packet.inject_time = max(packet.inject_time, self.cycle)
        self._inject_queues[packet.src].extend(packet_flits(packet))
        self._in_flight += 1

    def route_port(self, tile: int, dst: int) -> int:
        """Dimension-order output port selection at ``tile`` toward ``dst``."""
        if tile == dst:
            return Port.LOCAL
        tx, ty = self.topology.coords(tile)
        dx, dy = self.topology.coords(dst)
        if tx < dx:
            return Port.EAST
        if tx > dx:
            return Port.WEST
        if ty < dy:
            return Port.SOUTH
        return Port.NORTH

    def step(self) -> None:
        """Advance the network by one cycle."""
        cycle = self.cycle
        moves: List[Tuple[int, int, int, Flit, int, int]] = []
        for router in self.routers:
            for out_port, out_vc, flit, in_port, in_vc in router.allocate(
                cycle, self.route_port
            ):
                moves.append((router.tile, out_port, out_vc, flit, in_port, in_vc))
        # apply movements after all routers allocated (synchronous update)
        for tile, out_port, out_vc, flit, in_port, in_vc in moves:
            router = self.routers[tile]
            if out_port == Port.LOCAL:
                self._eject(flit)
            else:
                neighbor, neighbor_port = self._wiring[(tile, out_port)]
                # flit crosses the link this cycle, lands next cycle
                self.routers[neighbor].accept(neighbor_port, out_vc, flit, cycle + 1)
                if flit.is_tail:
                    router.free_downstream_vc(out_port, out_vc)
            # return the credit for the buffer slot the flit vacated
            if in_port != Port.LOCAL:
                up_tile, up_out = self._upstream_of(tile, in_port)
                self.routers[up_tile].return_credit(up_out, in_vc)
        # inject new flits into local input VCs with space
        for tile, queue in enumerate(self._inject_queues):
            router = self.routers[tile]
            while queue:
                flit = queue[0]
                vc_idx = self._local_vc_for(router, flit)
                if vc_idx is None:
                    break
                router.accept(Port.LOCAL, vc_idx, flit, cycle)
                queue.popleft()
        self.cycle += 1

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    def drain(self, max_cycles: int = 1_000_000) -> None:
        """Step until every injected packet has been delivered."""
        start = self.cycle
        while self._in_flight > 0:
            if self.cycle - start > max_cycles:
                raise SimulationError(
                    f"network failed to drain within {max_cycles} cycles; "
                    f"{self._in_flight} packet(s) still in flight"
                )
            self.step()

    # ------------------------------------------------------------------

    def _eject(self, flit: Flit) -> None:
        if flit.is_tail:
            flit.packet.arrival_time = self.cycle
            self.delivered.append(flit.packet)
            self._in_flight -= 1

    def _local_vc_for(self, router: Router, flit: Flit) -> Optional[int]:
        """Pick a local-port VC for an injected flit.

        A packet occupies one local VC from its head entering to its
        tail entering; the assignment is tracked explicitly per tile so
        body flits always follow their head even after it drained.
        """
        assignments = self._local_vc_assignment[router.tile]
        vcs = router.inputs[Port.LOCAL].vcs
        packet_id = flit.packet.packet_id
        if flit.is_head:
            claimed = set(assignments.values())
            for idx, vc in enumerate(vcs):
                if idx in claimed:
                    continue
                if vc.occupancy == 0 and vc.out_port is None and vc.has_credit_space:
                    if not flit.is_tail:
                        assignments[packet_id] = idx
                    return idx
            return None
        idx = assignments.get(packet_id)
        if idx is None or not vcs[idx].has_credit_space:
            return None
        if flit.is_tail:
            del assignments[packet_id]
        return idx

    def _upstream_of(self, tile: int, in_port: int) -> Tuple[int, int]:
        """The (neighbor tile, neighbor output port) feeding ``in_port``."""
        opposite = {
            Port.EAST: Port.WEST,
            Port.WEST: Port.EAST,
            Port.NORTH: Port.SOUTH,
            Port.SOUTH: Port.NORTH,
        }
        out_port = opposite[in_port]
        x, y = self.topology.coords(tile)
        if in_port == Port.WEST:
            neighbor = self.topology.tile_at(x - 1, y)
        elif in_port == Port.EAST:
            neighbor = self.topology.tile_at(x + 1, y)
        elif in_port == Port.NORTH:
            neighbor = self.topology.tile_at(x, y - 1)
        else:
            neighbor = self.topology.tile_at(x, y + 1)
        return neighbor, out_port

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def buffered_flits(self) -> int:
        """Flits currently occupying router input buffers (all tiles)."""
        return sum(self.router_queue_depths())

    def router_queue_depths(self) -> List[int]:
        """Per-router buffered-flit counts — the NoC's queue-depth
        snapshot used by telemetry probes (injection queues included)."""
        depths = []
        for router in self.routers:
            buffered = sum(
                vc.occupancy for port in router.inputs for vc in port.vcs
            )
            depths.append(buffered + len(self._inject_queues[router.tile]))
        return depths

    @property
    def mean_packet_latency(self) -> float:
        if not self.delivered:
            return 0.0
        return sum(p.latency for p in self.delivered) / len(self.delivered)

    def latency_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for packet in self.delivered:
            hist[packet.latency] = hist.get(packet.latency, 0) + 1
        return hist

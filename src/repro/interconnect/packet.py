"""Packet and flit definitions for the on-chip network.

Message classes match a directory protocol's needs: short control
messages (requests, invalidations, acks) are a single flit; data
messages carry a 64-byte cache block and span five 16-byte flits
(header + 4 data flits).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["FLIT_BYTES", "MessageClass", "Packet", "Flit", "flits_for"]

FLIT_BYTES = 16
"""Flit width in bytes (a common choice for 2-D mesh NoCs of the era)."""

CONTROL_FLITS = 1
DATA_FLITS = 1 + 64 // FLIT_BYTES  # header + cache block


class MessageClass(enum.IntEnum):
    """Protocol message classes mapped onto virtual networks.

    Separate virtual networks for requests and responses prevent
    protocol deadlock in the directory protocol.
    """

    REQUEST = 0
    RESPONSE = 1
    CONTROL = 2  # invalidations, acks, writeback notifications


def flits_for(message_class: MessageClass, carries_data: bool) -> int:
    """Number of flits for a message of the given class."""
    return DATA_FLITS if carries_data else CONTROL_FLITS


_packet_ids = itertools.count()


@dataclass
class Packet:
    """One network packet (a protocol message)."""

    src: int
    dst: int
    num_flits: int
    message_class: MessageClass = MessageClass.REQUEST
    inject_time: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    arrival_time: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_flits <= 0:
            raise ValueError("packets need at least one flit")

    @property
    def latency(self) -> Optional[int]:
        if self.arrival_time is None:
            return None
        return self.arrival_time - self.inject_time


@dataclass
class Flit:
    """One flow-control unit of a packet."""

    packet: Packet
    index: int

    @property
    def is_head(self) -> bool:
        return self.index == 0

    @property
    def is_tail(self) -> bool:
        return self.index == self.packet.num_flits - 1


def packet_flits(packet: Packet) -> List[Flit]:
    """Materialize the flits of a packet."""
    return [Flit(packet, i) for i in range(packet.num_flits)]

"""Distributed job tracing: W3C-traceparent contexts, durable span logs.

A job crosses many processes — client, fleet front end, worker HTTP
server, scheduler, executor subprocesses — and the per-process
:mod:`repro.obs.trace` ring cannot follow it.  This module adds the
cross-process layer:

* :class:`SpanContext` — a ``(trace_id, span_id)`` pair serialised in
  the W3C ``traceparent`` header format
  (``00-<32 hex trace id>-<16 hex span id>-<2 hex flags>``) so context
  survives HTTP hops and pickled multiprocessing payloads.
* :class:`Tracer` — a thread-safe per-process span recorder with a
  bounded in-memory ring, flushed (append-only JSONL) to a durable
  per-process span log under a shared trace directory.  Tracing must
  never be able to OOM or corrupt the system it observes: the ring is
  fixed-capacity, log writes are line-buffered appends, and readers
  tolerate torn trailing lines.
* A collector — :func:`collect_spans`, :func:`align_clocks`,
  :func:`trace_for_job`, :func:`validate_trace` — that merges the
  per-process logs into one timeline, aligns cross-process clock skew
  against each span's parent, and exports Chrome-trace/Perfetto JSON
  with real OS pid lanes (:func:`spans_to_chrome`).
* :func:`critical_path` — a deepest-covering-span sweep that attributes
  every microsecond of a job's makespan to exactly one category
  (route, queue wait, replay, simulation, store I/O, …), so the
  segment sum always equals the end-to-end span by construction.

Span timestamps are epoch microseconds (``time.time_ns() // 1000``) so
logs from different processes on one host share a clock; durations are
measured with ``perf_counter`` for resolution.
"""

from __future__ import annotations

import glob
import json
import os
import re
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "TRACEPARENT_HEADER",
    "SpanContext",
    "Span",
    "Tracer",
    "process_tracer",
    "read_span_log",
    "collect_spans",
    "align_clocks",
    "validate_trace",
    "trace_for_job",
    "spans_to_chrome",
    "critical_path",
    "CriticalPath",
    "CATEGORY_LABELS",
]

TRACEPARENT_HEADER = "traceparent"

_TRACEPARENT_RE = re.compile(r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")

#: Human labels for span categories, in critical-path display order.
CATEGORY_LABELS = {
    "route": "route",
    "queue": "queue wait",
    "replay": "replay",
    "sim": "simulation",
    "store": "store I/O",
    "run": "dispatch",
    "job": "scheduler",
    "idle": "idle/poll",
}


def _new_trace_id() -> str:
    return uuid.uuid4().hex


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


def _now_us() -> int:
    """Epoch microseconds — shared across processes on one host."""
    return time.time_ns() // 1000


@dataclass(frozen=True)
class SpanContext:
    """Immutable (trace, span) identity propagated across processes."""

    trace_id: str
    span_id: str

    def to_traceparent(self) -> str:
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def parse(cls, header: Optional[str]) -> Optional["SpanContext"]:
        """Parse a ``traceparent`` header; None/invalid -> ``None``."""
        if not header:
            return None
        match = _TRACEPARENT_RE.match(header.strip().lower())
        if not match:
            return None
        return cls(trace_id=match.group(1), span_id=match.group(2))

    @classmethod
    def mint(cls) -> "SpanContext":
        """A fresh root context (new trace id)."""
        return cls(trace_id=_new_trace_id(), span_id=_new_span_id())

    def child(self) -> "SpanContext":
        """A new context in the same trace (caller records the edge)."""
        return SpanContext(trace_id=self.trace_id, span_id=_new_span_id())


@dataclass
class Span:
    """One finished span.  ``ts`` is epoch us, ``dur`` is us."""

    name: str
    cat: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    ts: int
    dur: int
    process: str
    pid: int
    tid: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)
    status: str = "ok"

    @property
    def end(self) -> int:
        return self.ts + self.dur

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_json_dict(self) -> dict:
        out = {
            "name": self.name,
            "cat": self.cat,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "ts": self.ts,
            "dur": self.dur,
            "process": self.process,
            "pid": self.pid,
            "tid": self.tid,
            "status": self.status,
        }
        if self.parent_id:
            out["parent_id"] = self.parent_id
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @classmethod
    def from_json_dict(cls, data: dict) -> "Span":
        return cls(
            name=data["name"],
            cat=data.get("cat", ""),
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            ts=int(data["ts"]),
            dur=int(data["dur"]),
            process=data.get("process", "?"),
            pid=int(data.get("pid", 0)),
            tid=int(data.get("tid", 0)),
            attrs=data.get("attrs", {}) or {},
            status=data.get("status", "ok"),
        )


class _ActiveSpan:
    """Context manager for an in-flight span.

    Duration comes from ``perf_counter`` (monotonic, high resolution);
    the start timestamp is stamped once from the epoch clock.  Leaving
    the block via an exception marks the span ``status="error"`` and
    re-raises.
    """

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 context: SpanContext, parent_id: Optional[str],
                 attrs: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.context = context
        self.parent_id = parent_id
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.status = "ok"
        self._ts = _now_us()
        self._t0 = time.perf_counter()

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            if exc is not None and "error" not in self.attrs:
                self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        self.finish()
        return False

    def finish(self) -> Span:
        dur_us = int((time.perf_counter() - self._t0) * 1e6)
        return self._tracer._finish(self, self._ts, dur_us)


class Tracer:
    """Thread-safe per-process span recorder with a durable JSONL log.

    Finished spans land in a bounded ring (oldest evicted, eviction
    counted) and, when ``log_dir`` is set, are appended to a
    per-process ``<service>-<pid>-<nonce>.spans.jsonl`` file.  The log
    file is created lazily on the first flushed span so an idle tracer
    leaves no artifacts.
    """

    def __init__(self, service: str, log_dir: Optional[Union[str, Path]] = None,
                 capacity: int = 4096, flush_every: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.service = service
        self.log_dir = Path(log_dir) if log_dir is not None else None
        self.capacity = capacity
        self.flush_every = max(1, int(flush_every))
        self.dropped = 0
        self._spans: List[Span] = []
        self._pending: List[Span] = []
        self._lock = threading.Lock()
        self._log_path: Optional[Path] = None

    @property
    def log_path(self) -> Optional[Path]:
        return self._log_path

    # -- recording ---------------------------------------------------

    def start_span(self, name: str, parent: Optional[SpanContext] = None,
                   cat: str = "job",
                   attrs: Optional[Dict[str, Any]] = None) -> _ActiveSpan:
        """Open a span; use as a context manager or call ``finish()``."""
        context = parent.child() if parent else SpanContext.mint()
        parent_id = parent.span_id if parent else None
        return _ActiveSpan(self, name, cat, context, parent_id, attrs)

    def new_context(self, parent: Optional[SpanContext] = None) -> SpanContext:
        """Mint a context without opening a span yet (pre-allocated ids
        let a span's children be recorded before the span itself)."""
        return parent.child() if parent else SpanContext.mint()

    def record_span(self, name: str, cat: str, duration_s: float,
                    parent: Optional[SpanContext] = None,
                    context: Optional[SpanContext] = None,
                    ts_us: Optional[int] = None,
                    attrs: Optional[Dict[str, Any]] = None,
                    status: str = "ok") -> Span:
        """Record an already-measured span in one call.

        ``context`` pins the span's own identity (when children were
        recorded against a pre-minted context); ``ts_us`` backdates the
        start (defaults to now - duration).
        """
        dur_us = max(0, int(duration_s * 1e6))
        if ts_us is None:
            ts_us = _now_us() - dur_us
        if context is None:
            context = parent.child() if parent else SpanContext.mint()
        span = Span(
            name=name,
            cat=cat,
            trace_id=context.trace_id,
            span_id=context.span_id,
            parent_id=parent.span_id if parent else None,
            ts=int(ts_us),
            dur=dur_us,
            process=self.service,
            pid=os.getpid(),
            attrs=dict(attrs) if attrs else {},
            status=status,
        )
        self._store(span)
        return span

    def _finish(self, active: _ActiveSpan, ts_us: int, dur_us: int) -> Span:
        span = Span(
            name=active.name,
            cat=active.cat,
            trace_id=active.context.trace_id,
            span_id=active.context.span_id,
            parent_id=active.parent_id,
            ts=ts_us,
            dur=dur_us,
            process=self.service,
            pid=os.getpid(),
            attrs=active.attrs,
            status=active.status,
        )
        self._store(span)
        return span

    def _store(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if len(self._spans) > self.capacity:
                del self._spans[0]
                self.dropped += 1
            if self.log_dir is not None:
                self._pending.append(span)
                if len(self._pending) >= self.flush_every:
                    self._flush_locked()

    # -- durability --------------------------------------------------

    def flush(self) -> None:
        """Append any unflushed spans to the durable log."""
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._pending or self.log_dir is None:
            return
        if self._log_path is None:
            self.log_dir.mkdir(parents=True, exist_ok=True)
            nonce = uuid.uuid4().hex[:6]
            self._log_path = self.log_dir / (
                f"{self.service}-{os.getpid()}-{nonce}.spans.jsonl"
            )
        lines = "".join(
            json.dumps(span.to_json_dict(), sort_keys=True) + "\n"
            for span in self._pending
        )
        with open(self._log_path, "a", encoding="utf-8") as handle:
            handle.write(lines)
        self._pending.clear()

    def spans(self) -> List[Span]:
        """Snapshot of the in-memory ring, oldest first."""
        with self._lock:
            return list(self._spans)


_PROCESS_TRACERS: Dict[Tuple[str, str], Tracer] = {}
_PROCESS_TRACERS_LOCK = threading.Lock()


def process_tracer(log_dir: Union[str, Path], service: str) -> Tracer:
    """Per-process singleton tracer keyed by (log_dir, service).

    Pool worker processes call this from pickled payloads so each
    spawned process opens exactly one span log no matter how many cells
    it simulates.
    """
    key = (str(log_dir), service)
    with _PROCESS_TRACERS_LOCK:
        tracer = _PROCESS_TRACERS.get(key)
        if tracer is None:
            tracer = Tracer(service, log_dir=log_dir)
            _PROCESS_TRACERS[key] = tracer
        return tracer


# -- collector -------------------------------------------------------


def read_span_log(path: Union[str, Path]) -> Tuple[List[Span], int]:
    """Read one span log; returns ``(spans, torn_lines)``.

    A process killed mid-append leaves a torn trailing line; readers
    count and skip malformed lines instead of failing the collection.
    """
    spans: List[Span] = []
    torn = 0
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return spans, torn
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            spans.append(Span.from_json_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError):
            torn += 1
    return spans, torn


def collect_spans(trace_dir: Union[str, Path]) -> Tuple[List[Span], int]:
    """Merge every ``*.spans.jsonl`` under ``trace_dir``, ts-sorted."""
    spans: List[Span] = []
    torn = 0
    for path in sorted(glob.glob(str(Path(trace_dir) / "*.spans.jsonl"))):
        got, bad = read_span_log(path)
        spans.extend(got)
        torn += bad
    spans.sort(key=lambda s: (s.ts, s.dur))
    return spans, torn


def align_clocks(spans: List[Span]) -> List[Span]:
    """Shift per-(process, pid) clock groups so children never start
    before their cross-process parents.

    On one host the epoch clock is shared and this is a no-op; across
    hosts (or under clock steps) each group is shifted forward by the
    largest observed ``parent.ts - child.ts`` violation on edges into
    the group.  Parents are aligned transitively root-first.
    """
    by_id = {s.span_id: s for s in spans}
    groups: Dict[Tuple[str, int], List[Span]] = {}
    for span in spans:
        groups.setdefault((span.process, span.pid), []).append(span)
    shift: Dict[Tuple[str, int], int] = {key: 0 for key in groups}
    # Iterate to a fixed point: a shifted parent can re-violate its
    # children's groups.  Bounded by group count; traces are small.
    for _ in range(len(groups) + 1):
        changed = False
        for span in spans:
            parent = by_id.get(span.parent_id) if span.parent_id else None
            if parent is None:
                continue
            child_key = (span.process, span.pid)
            parent_key = (parent.process, parent.pid)
            if child_key == parent_key:
                continue
            lag = (parent.ts + shift[parent_key]) - (span.ts + shift[child_key])
            if lag > 0:
                shift[child_key] += lag
                changed = True
        if not changed:
            break
    if all(value == 0 for value in shift.values()):
        return spans
    out: List[Span] = []
    for span in spans:
        delta = shift[(span.process, span.pid)]
        if delta:
            span = Span(**{**span.__dict__, "ts": span.ts + delta})
        out.append(span)
    out.sort(key=lambda s: (s.ts, s.dur))
    return out


def validate_trace(spans: List[Span]) -> Dict[str, List[Span]]:
    """Split ``spans`` into roots (no parent) and orphans (parent id
    set but missing from the span set)."""
    ids = {s.span_id for s in spans}
    roots = [s for s in spans if not s.parent_id]
    orphans = [s for s in spans if s.parent_id and s.parent_id not in ids]
    return {"roots": roots, "orphans": orphans}


def trace_for_job(spans: List[Span], job_id: str) -> List[Span]:
    """All spans in the trace(s) that mention ``job_id``.

    A span "mentions" the job when ``attrs.job_id`` matches; every span
    sharing a matching trace id is included so the full tree survives.
    """
    trace_ids = {
        s.trace_id for s in spans if s.attrs.get("job_id") == job_id
    }
    return [s for s in spans if s.trace_id in trace_ids]


def _chrome_tid(span: Span) -> int:
    # One lane per trace within a process so concurrent jobs don't
    # stack on a single row; +1 keeps lane 0 for metadata.
    return (int(span.trace_id[:8], 16) % 997) + 1


def spans_to_chrome(spans: List[Span]) -> dict:
    """Chrome Trace Event JSON with real OS pid lanes.

    Timestamps are normalised to the earliest span so traces load near
    t=0; each process gets a ``process_name`` metadata event.
    """
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    origin = min(s.ts for s in spans)
    names: Dict[int, str] = {}
    events: List[dict] = []
    for span in spans:
        names.setdefault(span.pid, f"{span.process} (pid {span.pid})")
        args: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id:
            args["parent_id"] = span.parent_id
        if span.status != "ok":
            args["status"] = span.status
        args.update(span.attrs)
        events.append({
            "name": span.name,
            "cat": span.cat or "span",
            "ph": "X",
            "ts": span.ts - origin,
            "dur": max(span.dur, 1),
            "pid": span.pid,
            "tid": _chrome_tid(span),
            "args": args,
        })
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
        for pid, label in sorted(names.items())
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


@dataclass
class CriticalPath:
    """Per-category attribution of a trace's makespan (microseconds).

    ``sum(segments.values()) == total_us`` by construction: every
    interval between span boundaries is attributed to the deepest span
    covering it, and uncovered gaps count as ``idle``.
    """

    total_us: int
    segments: Dict[str, int]


def critical_path(spans: List[Span]) -> CriticalPath:
    """Deepest-covering-span attribution over the span set."""
    if not spans:
        return CriticalPath(total_us=0, segments={})
    depth: Dict[str, int] = {}
    by_id = {s.span_id: s for s in spans}

    def depth_of(span: Span) -> int:
        if span.span_id in depth:
            return depth[span.span_id]
        seen = set()
        d = 0
        node = span
        while node.parent_id and node.parent_id in by_id:
            if node.span_id in seen:  # cycle guard
                break
            seen.add(node.span_id)
            node = by_id[node.parent_id]
            d += 1
        depth[span.span_id] = d
        return d

    start = min(s.ts for s in spans)
    end = max(s.end for s in spans)
    bounds = sorted({s.ts for s in spans} | {s.end for s in spans})
    segments: Dict[str, int] = {}
    for t0, t1 in zip(bounds, bounds[1:]):
        if t1 <= t0:
            continue
        mid = (t0 + t1) / 2
        best: Optional[Span] = None
        best_depth = -1
        for span in spans:
            if span.ts <= mid < span.end:
                d = depth_of(span)
                if d > best_depth:
                    best, best_depth = span, d
        cat = best.cat if best is not None else "idle"
        segments[cat] = segments.get(cat, 0) + (t1 - t0)
    return CriticalPath(total_us=end - start, segments=segments)

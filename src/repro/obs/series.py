"""Time-series records produced by epoch probes.

A :class:`TimeSeries` is a named list of ``(t, value)`` points, ``t`` in
simulated cycles.  Series are cheap append-only structures on the
simulator's sampling path and serialize to plain JSON lists so they can
be stored alongside :class:`~repro.core.store.ResultStore` records and
reloaded without the simulator (``analysis/timeline.py`` renders either
form).

Naming convention used by :class:`~repro.obs.probes.EpochProbe`:

``vm<j>.miss_rate``
    Per-epoch L2 miss rate seen by VM ``j``.
``vm<j>.miss_latency``
    Per-epoch mean L1-miss latency of VM ``j`` (cycles).
``vm<j>.l2_share``
    VM ``j``'s share of all resident L2 lines at the sample instant.
``queue.l2`` / ``queue.memory`` / ``queue.link``
    Mean resource-server queue depth (outstanding service times) across
    the chip's L2 banks, memory channels, and mesh links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

__all__ = ["TimeSeries", "series_to_dict", "series_from_dict"]


@dataclass
class TimeSeries:
    """One named sampled quantity over simulated time."""

    name: str
    points: List[Tuple[int, float]] = field(default_factory=list)

    def append(self, t: int, value: float) -> None:
        self.points.append((int(t), float(value)))

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def times(self) -> List[int]:
        return [t for t, _v in self.points]

    @property
    def values(self) -> List[float]:
        return [v for _t, v in self.points]

    def last(self) -> float:
        """Most recent value (0.0 when empty)."""
        return self.points[-1][1] if self.points else 0.0


def series_to_dict(series: Mapping[str, TimeSeries]) -> Dict[str, list]:
    """JSON-serializable form: ``{name: [[t, value], ...]}``."""
    return {
        name: [[t, v] for t, v in s.points] for name, s in sorted(series.items())
    }


def series_from_dict(payload: Mapping[str, list]) -> Dict[str, TimeSeries]:
    """Rebuild :func:`series_to_dict` output."""
    out: Dict[str, TimeSeries] = {}
    for name, points in payload.items():
        out[name] = TimeSeries(
            name, [(int(t), float(v)) for t, v in points]
        )
    return out

"""Epoch-based sampling probes for the simulation engine.

An :class:`EpochProbe` rides along the engine's event loop: every
``epoch`` simulated cycles it snapshots per-VM behaviour (miss rate,
mean miss latency, L2 occupancy share) and the chip's shared-resource
queue depths into :class:`~repro.obs.series.TimeSeries` records and
Chrome-trace counter events.

The probe is strictly *read-only* with respect to the machine: it
derives epoch deltas from the cumulative
:class:`~repro.sim.engine.ThreadStats` counters the engine maintains
anyway, and pulls occupancy / queue-depth snapshots through inspection
methods (:meth:`repro.machine.chip.Chip.queue_depths`,
:meth:`~repro.machine.chip.Chip.l2_occupancy_share`).  It therefore
cannot perturb simulation results — the determinism guard in
``tests/obs/test_determinism.py`` holds by construction.

Per-VM statistics cover the thread's *measured window* (the same window
the paper measures): epochs that fall entirely inside warm-up, or after
a VM completed, show zero activity for that VM — itself a useful phase
signal.

The probe works against any :class:`~repro.sim.engine.MachineModel`;
machines that lack the inspection methods (e.g. the trivial fakes in
the engine tests) simply produce no occupancy/queue series.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .telemetry import Telemetry
from .trace import SIM_PID, TraceEvent

__all__ = ["VmDeltaTracker", "VmDelta", "EpochProbe"]


class VmDelta:
    """Per-VM activity inside one sampling window.

    All counts are *deltas* over the window, derived from the engine's
    cumulative :class:`~repro.sim.engine.ThreadStats`; ``issued`` is the
    cumulative mean references issued per thread (warm-up included),
    which feedback controllers use as a progress signal.
    """

    __slots__ = ("l1_misses", "l2_misses", "refs", "miss_latency_cycles",
                 "issued")

    def __init__(self, l1_misses: int, l2_misses: int, refs: int,
                 miss_latency_cycles: int, issued: float):
        self.l1_misses = l1_misses
        self.l2_misses = l2_misses
        self.refs = refs
        self.miss_latency_cycles = miss_latency_cycles
        self.issued = issued

    @property
    def miss_rate(self) -> float:
        """L2 misses per L2 access (L1 miss) inside the window."""
        return self.l2_misses / self.l1_misses if self.l1_misses else 0.0

    @property
    def mean_miss_latency(self) -> float:
        return (self.miss_latency_cycles / self.l1_misses
                if self.l1_misses else 0.0)


class VmDeltaTracker:
    """Turns cumulative per-thread counters into per-VM window deltas.

    Shared by the :class:`EpochProbe` (telemetry sampling) and the QoS
    control loop (:mod:`repro.qos.sensors`): both observe the same
    read-only :class:`~repro.sim.engine.ThreadStats` counters, so
    extracting the delta bookkeeping keeps the two consumers consistent
    by construction.
    """

    def __init__(self, threads):
        self.threads = list(threads)
        self.vm_ids = sorted({t.vm_id for t in self.threads})
        self.by_vm: Dict[int, List] = {}
        for thread in self.threads:
            self.by_vm.setdefault(thread.vm_id, []).append(thread)
        self._prev: Dict[int, tuple] = {
            vm: (0, 0, 0, 0) for vm in self.vm_ids
        }

    def snapshot(self) -> Dict[int, VmDelta]:
        """Deltas since the previous snapshot, keyed by VM id."""
        out: Dict[int, VmDelta] = {}
        for vm in self.vm_ids:
            l1 = l2 = refs = miss_lat = issued = 0
            for thread in self.by_vm[vm]:
                stats = thread.stats
                l1 += stats.l1_misses
                l2 += stats.l2_misses
                refs += stats.refs
                miss_lat += stats.miss_latency_cycles
                issued += thread.issued
            p_l1, p_l2, p_refs, p_lat = self._prev[vm]
            self._prev[vm] = (l1, l2, refs, miss_lat)
            out[vm] = VmDelta(
                l1_misses=l1 - p_l1,
                l2_misses=l2 - p_l2,
                refs=refs - p_refs,
                miss_latency_cycles=miss_lat - p_lat,
                issued=issued / len(self.by_vm[vm]),
            )
        return out


class EpochProbe:
    """Samples per-VM and chip-level time series every ``epoch`` cycles.

    Parameters
    ----------
    machine:
        The machine model being driven; queue depths and L2 occupancy
        are pulled from it when it exposes ``queue_depths(now)`` /
        ``l2_occupancy_share()`` (duck-typed, see module docstring).
    threads:
        The engine's thread contexts (the probe reads their
        ``stats`` / ``vm_id`` attributes, never writes them).
    epoch:
        Sampling period in simulated cycles.
    telemetry:
        The hub receiving series and trace events.
    """

    def __init__(self, machine, threads, epoch: int, telemetry: Telemetry):
        if epoch <= 0:
            raise ValueError("epoch must be positive")
        self.machine = machine
        self.threads = list(threads)
        self.epoch = epoch
        self.telemetry = telemetry
        self.next_due = epoch
        self.samples = 0
        self._tracker = VmDeltaTracker(self.threads)
        self._vm_ids = self._tracker.vm_ids
        self._queue_depths = getattr(machine, "queue_depths", None)
        self._l2_share = getattr(machine, "l2_occupancy_share", None)

    # -- engine hooks ---------------------------------------------------

    def on_step(self, now: int) -> None:
        """Called once per engine step with the current issue time."""
        if now >= self.next_due:
            self.sample(now)
            # Schedule relative to the *actual* sample time, not the
            # epoch grid: grid realignment after an off-grid sample
            # (e.g. sampling at 250 with epoch=100 and arming 300)
            # produces a sub-epoch window whose deltas are biased low.
            # Relative arming guarantees every window spans at least
            # one full epoch.
            self.next_due = now + self.epoch

    def on_vm_complete(self, vm_id: int, finish: int) -> None:
        """Mark a VM's completion instant in the trace."""
        self.telemetry.emit(TraceEvent(
            name=f"vm{vm_id} complete", cat="sim", ph="i",
            ts=float(finish), pid=SIM_PID, tid=vm_id,
        ))

    def finish(self, final_time: int) -> None:
        """Take a closing sample at the end of the run."""
        self.sample(final_time)

    # -- sampling -------------------------------------------------------

    def sample(self, now: int) -> None:
        """Record one sample of every tracked quantity at ``now``."""
        telemetry = self.telemetry
        self.samples += 1
        shares = self._l2_share() if self._l2_share is not None else {}
        deltas = self._tracker.snapshot()
        miss_rate_args: Dict[str, float] = {}
        latency_args: Dict[str, float] = {}
        share_args: Dict[str, float] = {}
        for vm in self._vm_ids:
            delta = deltas[vm]
            miss_rate = delta.miss_rate
            miss_latency = delta.mean_miss_latency
            share = float(shares.get(vm, 0.0))
            telemetry.series_for(f"vm{vm}.miss_rate").append(now, miss_rate)
            telemetry.series_for(f"vm{vm}.miss_latency").append(
                now, miss_latency
            )
            telemetry.series_for(f"vm{vm}.l2_share").append(now, share)
            key = f"vm{vm}"
            miss_rate_args[key] = round(miss_rate, 6)
            latency_args[key] = round(miss_latency, 3)
            share_args[key] = round(share, 6)

        queue_args: Optional[Dict[str, float]] = None
        if self._queue_depths is not None:
            depths = self._queue_depths(now)
            queue_args = {}
            for resource, depth in sorted(depths.items()):
                telemetry.series_for(f"queue.{resource}").append(now, depth)
                queue_args[resource] = round(float(depth), 4)

        ts = float(now)
        telemetry.emit(TraceEvent(
            name="miss_rate", cat="epoch", ph="C", ts=ts,
            pid=SIM_PID, args=miss_rate_args,
        ))
        telemetry.emit(TraceEvent(
            name="miss_latency", cat="epoch", ph="C", ts=ts,
            pid=SIM_PID, args=latency_args,
        ))
        telemetry.emit(TraceEvent(
            name="l2_share", cat="epoch", ph="C", ts=ts,
            pid=SIM_PID, args=share_args,
        ))
        if queue_args is not None:
            telemetry.emit(TraceEvent(
                name="queue_depth", cat="epoch", ph="C", ts=ts,
                pid=SIM_PID, args=queue_args,
            ))

"""Rolling SLO tracking: windowed latency percentiles and error burn.

The telemetry histograms are cumulative-over-process-lifetime; an SLO
wants *recent* behaviour.  :class:`SloTracker` keeps a sliding time
window of (latency, error) observations and exports exact percentiles
plus an error-rate burn gauge (observed error rate over the error
budget — burn > 1 means the budget is being spent faster than allowed).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Tuple

__all__ = ["SloTracker"]


class SloTracker:
    """Sliding-window request tracker.

    ``observe()`` is O(1) amortised; ``snapshot()`` sorts the window
    (bounded by ``max_samples``) for exact percentiles.
    """

    def __init__(self, window_s: float = 60.0, error_budget: float = 0.01,
                 max_samples: int = 4096) -> None:
        if window_s <= 0:
            raise ValueError("SLO window must be positive")
        if not 0 < error_budget <= 1:
            raise ValueError("error budget must be in (0, 1]")
        self.window_s = window_s
        self.error_budget = error_budget
        self.max_samples = max_samples
        self._samples: Deque[Tuple[float, float, bool]] = deque(maxlen=max_samples)
        self._lock = threading.Lock()

    def observe(self, latency_s: float, error: bool = False,
                now: float = None) -> None:
        if now is None:
            now = time.monotonic()
        with self._lock:
            self._samples.append((now, float(latency_s), bool(error)))
            self._prune(now)

    def _prune(self, now: float) -> None:
        cutoff = now - self.window_s
        while self._samples and self._samples[0][0] < cutoff:
            self._samples.popleft()

    def _percentile(self, latencies, q: float) -> float:
        if not latencies:
            return 0.0
        if len(latencies) == 1:
            return latencies[0]
        pos = (q / 100.0) * (len(latencies) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(latencies) - 1)
        frac = pos - lo
        return latencies[lo] * (1 - frac) + latencies[hi] * frac

    def snapshot(self, now: float = None) -> Dict[str, float]:
        """Current SLO gauges: p50/p99 latency, error rate, burn rate."""
        if now is None:
            now = time.monotonic()
        with self._lock:
            self._prune(now)
            samples = list(self._samples)
        if not samples:
            return {
                "p50_seconds": 0.0,
                "p99_seconds": 0.0,
                "error_rate": 0.0,
                "burn_rate": 0.0,
                "window_requests": 0.0,
            }
        latencies = sorted(lat for _, lat, _ in samples)
        errors = sum(1 for _, _, err in samples if err)
        error_rate = errors / len(samples)
        return {
            "p50_seconds": self._percentile(latencies, 50.0),
            "p99_seconds": self._percentile(latencies, 99.0),
            "error_rate": error_rate,
            "burn_rate": error_rate / self.error_budget,
            "window_requests": float(len(samples)),
        }

    def export(self, telemetry, prefix: str) -> Dict[str, float]:
        """Set ``<prefix>.<gauge>`` on ``telemetry`` and return them."""
        gauges = self.snapshot()
        for key, value in gauges.items():
            telemetry.gauge(f"{prefix}.{key}").set(value)
        return gauges

"""repro.obs — run-time telemetry: probes, tracing, and exporters.

The observability layer of the simulator.  It is strictly additive:
with the default :data:`~repro.obs.telemetry.NULL_TELEMETRY` hub no
series, events, or counters are recorded and the simulation executes
exactly as before; with a live :class:`~repro.obs.telemetry.Telemetry`
hub the engine samples epoch time-series, the executor records
wall-clock spans, and everything exports to Chrome-trace JSON
(loadable in Perfetto).  See ``docs/observability.md``.
"""

from .probes import EpochProbe, VmDelta, VmDeltaTracker
from .series import TimeSeries, series_from_dict, series_to_dict
from .slo import SloTracker
from .telemetry import (
    NULL_TELEMETRY,
    Counter,
    Gauge,
    Histogram,
    NullTelemetry,
    Telemetry,
    histogram_percentile,
    merge_snapshots,
    render_prometheus,
)
from .tracing import (
    CATEGORY_LABELS,
    TRACEPARENT_HEADER,
    CriticalPath,
    Span,
    SpanContext,
    Tracer,
    align_clocks,
    collect_spans,
    critical_path,
    process_tracer,
    spans_to_chrome,
    trace_for_job,
    validate_trace,
)
from .trace import (
    SIM_PID,
    WALL_PID,
    TraceBuffer,
    TraceEvent,
    chrome_trace_dict,
    export_chrome_trace,
)

__all__ = [
    "CATEGORY_LABELS",
    "TRACEPARENT_HEADER",
    "CriticalPath",
    "Span",
    "SpanContext",
    "SloTracker",
    "Tracer",
    "align_clocks",
    "collect_spans",
    "critical_path",
    "histogram_percentile",
    "merge_snapshots",
    "process_tracer",
    "spans_to_chrome",
    "trace_for_job",
    "validate_trace",
    "EpochProbe",
    "VmDelta",
    "VmDeltaTracker",
    "TimeSeries",
    "series_from_dict",
    "series_to_dict",
    "NULL_TELEMETRY",
    "Counter",
    "Gauge",
    "Histogram",
    "NullTelemetry",
    "Telemetry",
    "render_prometheus",
    "SIM_PID",
    "WALL_PID",
    "TraceBuffer",
    "TraceEvent",
    "chrome_trace_dict",
    "export_chrome_trace",
]

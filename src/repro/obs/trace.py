"""Event tracing: a bounded ring buffer plus a Chrome-trace exporter.

Two clock domains share one buffer, distinguished by the trace *process*
id:

:data:`SIM_PID`
    Simulated time.  Timestamps are simulation cycles; the exporter maps
    one cycle to one microsecond so Perfetto / ``chrome://tracing``
    render cycle counts directly.
:data:`WALL_PID`
    Real wall-clock time of the host process (executor cell spans,
    experiment phases).  Timestamps are microseconds since an arbitrary
    per-process origin.

The buffer is a fixed-capacity ring (:class:`TraceBuffer`): recording is
O(1), memory is bounded, and when the buffer overflows the *oldest*
events are dropped (and counted) — a tracing layer must never be able to
OOM the simulation it observes.

The export format is the Chrome Trace Event JSON array format, which
both ``chrome://tracing`` and https://ui.perfetto.dev load natively.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

__all__ = [
    "SIM_PID",
    "WALL_PID",
    "TraceEvent",
    "TraceBuffer",
    "chrome_trace_dict",
    "export_chrome_trace",
    "wall_now_us",
]

SIM_PID = 1
"""Trace process id of simulated-time events (1 cycle = 1 us)."""

WALL_PID = 2
"""Trace process id of wall-clock host events."""

_WALL_ORIGIN = time.perf_counter()


def wall_now_us() -> float:
    """Wall-clock microseconds since the process trace origin."""
    return (time.perf_counter() - _WALL_ORIGIN) * 1e6


@dataclass(frozen=True)
class TraceEvent:
    """One Chrome-trace event.

    Attributes mirror the Trace Event Format: ``ph`` is the phase
    (``"X"`` complete span, ``"C"`` counter, ``"i"`` instant, ``"M"``
    metadata), ``ts``/``dur`` are in microseconds (or cycles for
    :data:`SIM_PID` events), ``pid``/``tid`` pick the row.
    """

    name: str
    cat: str
    ph: str
    ts: float
    dur: float = 0.0
    pid: int = SIM_PID
    tid: int = 0
    args: Optional[dict] = None

    def to_json_dict(self) -> dict:
        out = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.ph == "X":
            out["dur"] = self.dur
        if self.args is not None:
            out["args"] = self.args
        if self.ph == "i":
            out["s"] = "t"  # instant scope: thread
        return out


@dataclass
class TraceBuffer:
    """Fixed-capacity ring of :class:`TraceEvent` records.

    Appending past ``capacity`` silently evicts the oldest event and
    increments :attr:`dropped` — the telemetry layer is bounded by
    construction.
    """

    capacity: int = 65536
    dropped: int = 0
    _events: deque = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("trace buffer capacity must be positive")
        self._events = deque(maxlen=self.capacity)

    def append(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def events(self) -> List[TraceEvent]:
        """Snapshot of the buffer contents, oldest first."""
        return list(self._events)


def chrome_trace_dict(
    events: Iterable[TraceEvent],
    process_names: Optional[Dict[int, str]] = None,
) -> dict:
    """Build the Chrome Trace Event JSON object for ``events``.

    ``process_names`` labels the trace rows; by default the two clock
    domains are named so a loaded trace is self-describing.
    """
    labels = {
        SIM_PID: "simulated time (1 cycle = 1 us)",
        WALL_PID: "wall clock",
    }
    if process_names is not None:
        labels.update(process_names)
    trace_events: List[dict] = []
    seen_pids = set()
    for event in events:
        seen_pids.add(event.pid)
        trace_events.append(event.to_json_dict())
    # Every pid present in the event stream gets a metadata lane label,
    # so merged multi-process traces render distinct rows in Perfetto
    # instead of colliding on bare tids.
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": labels.get(pid, f"process {pid}")},
        }
        for pid in sorted(seen_pids)
    ]
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
    }


def export_chrome_trace(
    events: Iterable[TraceEvent],
    path: Union[str, Path],
    process_names: Optional[Dict[int, str]] = None,
) -> Path:
    """Write ``events`` as a Chrome-trace JSON file; returns the path."""
    path = Path(path)
    payload = chrome_trace_dict(events, process_names=process_names)
    path.write_text(json.dumps(payload, indent=1))
    return path

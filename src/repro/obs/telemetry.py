"""The telemetry hub and its zero-overhead null twin.

A :class:`Telemetry` instance owns every observable artifact of one run
or sweep: named counters / gauges / histograms, the bounded trace ring
(:class:`~repro.obs.trace.TraceBuffer`), and the epoch time-series
(:class:`~repro.obs.series.TimeSeries`).  Instrumented code receives a
hub (never creates one) and records through it:

>>> hub = Telemetry()
>>> hub.counter("store.memory_hits").inc()
>>> with hub.span("simulate", cat="experiment"):
...     pass
>>> hub.counter("store.memory_hits").value
1

:class:`NullTelemetry` implements the same surface as no-ops.  It is
the default hub everywhere, which gives the *zero-perturbation
guarantee*: a run without telemetry executes the same instruction
stream the pre-telemetry code did (one attribute test or ``None`` check
on the hot path), and a run *with* telemetry only ever reads simulator
state — it never writes it — so simulation results are bit-identical
either way (``tests/obs/test_determinism.py`` enforces this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .series import TimeSeries, series_to_dict
from .trace import (
    WALL_PID,
    TraceBuffer,
    TraceEvent,
    wall_now_us,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "render_prometheus",
    "histogram_percentile",
    "merge_snapshots",
]


@dataclass
class Counter:
    """A monotonically increasing named count."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A named instantaneous value (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Fixed-bound bucketed distribution of observed values.

    ``bounds`` are the inclusive upper edges of each bucket; one
    overflow bucket catches everything beyond the last bound.
    """

    name: str
    bounds: Tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    observations: int = 0

    def __post_init__(self) -> None:
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.observations += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.observations if self.observations else 0.0

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile (0 < q <= 100) from the buckets."""
        return histogram_percentile(
            {"bounds": self.bounds, "counts": self.counts,
             "observations": self.observations}, q)


class _Span:
    """Context manager recording one wall-clock ``"X"`` trace event."""

    __slots__ = ("_hub", "_name", "_cat", "_tid", "_args", "_start")

    def __init__(self, hub: "Telemetry", name: str, cat: str, tid: int,
                 args: Optional[dict]):
        self._hub = hub
        self._name = name
        self._cat = cat
        self._tid = tid
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = wall_now_us()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = wall_now_us()
        self._hub.trace.append(TraceEvent(
            name=self._name, cat=self._cat, ph="X",
            ts=self._start, dur=end - self._start,
            pid=WALL_PID, tid=self._tid, args=self._args,
        ))


class Telemetry:
    """The live hub: counters, gauges, histograms, trace, series.

    Parameters
    ----------
    trace_capacity:
        Ring-buffer size for trace events; the oldest events are
        dropped (and counted) past this bound.
    """

    enabled = True

    def __init__(self, trace_capacity: int = 65536):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.series: Dict[str, TimeSeries] = {}
        self.trace = TraceBuffer(capacity=trace_capacity)

    # -- instruments (create-on-first-use) -----------------------------

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            if bounds is not None:
                instrument = Histogram(name, bounds=tuple(bounds))
            else:
                instrument = Histogram(name)
            self.histograms[name] = instrument
        return instrument

    def series_for(self, name: str) -> TimeSeries:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = TimeSeries(name)
        return series

    # -- tracing -------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        self.trace.append(event)

    def span(self, name: str, cat: str = "span", tid: int = 0,
             args: Optional[dict] = None) -> _Span:
        """Wall-clock span context manager (records on exit)."""
        return _Span(self, name, cat, tid, args)

    def add_span(self, name: str, cat: str, duration_s: float,
                 tid: int = 0, args: Optional[dict] = None) -> None:
        """Record an already-measured wall-clock span ending now.

        Used when the duration was measured elsewhere (e.g. inside a
        worker process) and only the number crossed the process
        boundary.
        """
        end = wall_now_us()
        dur = max(0.0, duration_s * 1e6)
        self.trace.append(TraceEvent(
            name=name, cat=cat, ph="X", ts=end - dur, dur=dur,
            pid=WALL_PID, tid=tid, args=args,
        ))

    # -- inspection ----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable summary of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "mean": h.mean,
                    "total": h.total,
                    "observations": h.observations,
                }
                for n, h in sorted(self.histograms.items())
            },
            "series": series_to_dict(self.series),
            "trace_events": len(self.trace),
            "trace_dropped": self.trace.dropped,
        }


def _prometheus_name(name: str) -> str:
    """Map an instrument name to a legal Prometheus metric name."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{cleaned}"


def render_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition (v0.0.4) of a :meth:`Telemetry
    .snapshot`.

    Counters become ``repro_<name>_total``, gauges ``repro_<name>``,
    histograms the conventional ``_bucket``/``_sum``/``_count``
    triple with cumulative ``le`` buckets.  The service's ``/metrics``
    endpoint serves this under ``?format=prometheus``.
    """
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _prometheus_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, hist in snapshot.get("histograms", {}).items():
        metric = _prometheus_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        cumulative += hist["counts"][-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_hist_total(hist)}")
        lines.append(f"{metric}_count {hist['observations']}")
    return "\n".join(lines) + "\n"


def _hist_total(hist: dict) -> float:
    """Exact sum of a snapshot histogram's observations.

    Prefers the exact ``total`` field (added in the tracing PR); falls
    back to ``mean * observations`` for snapshots from older emitters,
    which round-trips the same value modulo float re-division.
    """
    total = hist.get("total")
    if total is not None:
        return float(total)
    return hist.get("mean", 0.0) * hist.get("observations", 0)


def histogram_percentile(hist: dict, q: float) -> float:
    """Estimated q-th percentile of a snapshot-shaped histogram.

    ``hist`` is the ``{"bounds", "counts", "observations"}`` dict a
    :meth:`Telemetry.snapshot` emits (or a live :class:`Histogram`'s
    fields).  The estimate interpolates linearly inside the bucket the
    rank lands in, treating the first bucket as spanning ``[0,
    bounds[0]]``; ranks in the overflow bucket clamp to the last bound
    (the histogram cannot know how far past it the tail reaches).
    Returns 0.0 for an empty histogram.
    """
    if not 0 < q <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    bounds = list(hist["bounds"])
    counts = list(hist["counts"])
    observations = hist.get("observations") or sum(counts)
    if not observations:
        return 0.0
    rank = q / 100.0 * observations
    cumulative = 0
    for index, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= rank:
            if index >= len(bounds):  # overflow bucket: clamp
                return float(bounds[-1]) if bounds else 0.0
            low = float(bounds[index - 1]) if index else 0.0
            high = float(bounds[index])
            if not count:
                return high
            return low + (high - low) * (rank - previous) / count
    return float(bounds[-1]) if bounds else 0.0


def merge_snapshots(snapshots: Sequence[dict]) -> dict:
    """Combine :meth:`Telemetry.snapshot` dicts from several hubs.

    Built for the fleet front-end: each worker process owns a private
    hub, and the aggregate over the fleet is well-defined
    instrument-by-instrument — counters and gauges sum (every gauge
    the service tier exports is a queue depth or worker count, where
    the fleet-wide value *is* the sum), and histograms with identical
    bounds merge bucket-wise, which preserves every percentile
    estimate exactly as if all observations had hit one hub.  A
    histogram whose bounds disagree with the first sighting of that
    name is skipped rather than silently mis-merged.  Series and trace
    data stay per-worker (they are ring buffers, not mergeable
    aggregates); only their event counts are summed.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    trace_events = 0
    trace_dropped = 0
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0) + value
        for name, hist in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "total": _hist_total(hist),
                    "observations": hist["observations"],
                }
                continue
            if list(hist["bounds"]) != merged["bounds"]:
                continue  # incompatible buckets: refuse to mis-merge
            merged["counts"] = [a + b for a, b in
                                zip(merged["counts"], hist["counts"])]
            merged["observations"] += hist["observations"]
            merged["total"] += _hist_total(hist)
        trace_events += snap.get("trace_events", 0)
        trace_dropped += snap.get("trace_dropped", 0)
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {
            name: {
                "bounds": h["bounds"],
                "counts": h["counts"],
                "mean": (h["total"] / h["observations"]
                         if h["observations"] else 0.0),
                "total": h["total"],
                "observations": h["observations"],
            }
            for name, h in sorted(histograms.items())
        },
        "series": {},
        "trace_events": trace_events,
        "trace_dropped": trace_dropped,
    }


class _NullInstrument:
    """Absorbs every instrument call; shared by all null handles."""

    __slots__ = ()
    value = 0
    total = 0.0
    observations = 0
    mean = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()
_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """API-compatible no-op hub; the default everywhere.

    Shared singletons make every call allocation-free, so leaving
    instrumentation points compiled-in costs a method dispatch at most
    — and the hot simulation loop avoids even that by testing
    ``probe is not None`` once per step.
    """

    enabled = False

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.series: Dict[str, TimeSeries] = {}
        self.trace = TraceBuffer(capacity=1)

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def series_for(self, name: str) -> TimeSeries:
        # a fresh throwaway series: appends land nowhere persistent
        return TimeSeries(name)

    def emit(self, event: TraceEvent) -> None:
        pass

    def span(self, name: str, cat: str = "span", tid: int = 0,
             args: Optional[dict] = None) -> _NullSpan:
        return _NULL_SPAN

    def add_span(self, name: str, cat: str, duration_s: float,
                 tid: int = 0, args: Optional[dict] = None) -> None:
        pass

    def snapshot(self) -> dict:
        return {
            "counters": {}, "gauges": {}, "histograms": {},
            "series": {}, "trace_events": 0, "trace_dropped": 0,
        }


NULL_TELEMETRY = NullTelemetry()
"""The process-wide shared null hub (safe: it holds no state)."""

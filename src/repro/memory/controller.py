"""Memory controllers and the off-chip memory system.

Table III fixes uncontended memory latency at 150 cycles.  The paper
stresses that cache thrashing "spills over ... and puts additional
pressure on the memory controllers", so contention matters.  Each
controller models two queueing stages:

* **banks** — DRAM bank groups interleaved by block address; a bank is
  occupied for a row cycle per access, so same-bank bursts serialize
  while different-bank accesses overlap (bank-level parallelism);
* **channel** — the shared data bus; occupied for one 64-byte burst
  per transfer.

Controllers are placed at mesh tiles so distance is part of observed
latency, and blocks interleave across controllers so load spreads the
way a real physical address map would spread it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError
from ..sim.server import FifoServer

__all__ = [
    "MemoryController",
    "MemorySystem",
    "DEFAULT_MEMORY_LATENCY",
    "DEFAULT_BANKS",
]

DEFAULT_MEMORY_LATENCY = 150
"""Uncontended access latency in cycles (Table III)."""

DEFAULT_BANKS = 8
"""DRAM banks per controller."""

#: cycles a bank is occupied per access (row activate + column + precharge)
DEFAULT_BANK_OCCUPANCY = 36

#: cycles the channel is occupied per 64-byte burst
DEFAULT_CHANNEL_OCCUPANCY = 8


@dataclass
class MemoryAccessResult:
    """Latency decomposition of one memory access."""

    latency: int
    queueing: int

    @property
    def base(self) -> int:
        return self.latency - self.queueing


class MemoryController:
    """One memory channel (with banked DRAM behind it) at a mesh tile."""

    def __init__(
        self,
        controller_id: int,
        tile: int,
        base_latency: int = DEFAULT_MEMORY_LATENCY,
        num_banks: int = DEFAULT_BANKS,
        bank_occupancy: int = DEFAULT_BANK_OCCUPANCY,
        channel_occupancy: int = DEFAULT_CHANNEL_OCCUPANCY,
    ):
        if base_latency <= 0:
            raise ConfigurationError("memory latency must be positive")
        if num_banks <= 0:
            raise ConfigurationError("need at least one bank")
        self.controller_id = controller_id
        self.tile = tile
        self.base_latency = base_latency
        self.num_banks = num_banks
        self.banks = [
            FifoServer(name=f"mc{controller_id}/bank{b}",
                       service_time=bank_occupancy)
            for b in range(num_banks)
        ]
        self.channel = FifoServer(
            name=f"mc{controller_id}/channel", service_time=channel_occupancy
        )
        self.reads = 0
        self.writebacks = 0

    def _bank_for(self, block: int) -> FifoServer:
        return self.banks[(block >> 4) % self.num_banks]

    def access(self, now: int, block: int = 0) -> MemoryAccessResult:
        """A demand read/fetch: pays bank + channel queueing + latency."""
        bank_wait = self._bank_for(block).request(now)
        channel_wait = self.channel.request(now + bank_wait)
        wait = bank_wait + channel_wait
        self.reads += 1
        return MemoryAccessResult(latency=wait + self.base_latency,
                                  queueing=wait)

    def writeback(self, now: int, block: int = 0) -> None:
        """A dirty eviction: consumes bank and channel bandwidth, off
        the requester's critical path (no latency returned)."""
        bank_wait = self._bank_for(block).request(now)
        self.channel.request(now + bank_wait)
        self.writebacks += 1

    @property
    def accesses(self) -> int:
        return self.reads + self.writebacks

    def queue_depth(self, now: int) -> float:
        """Backlog at ``now``: channel depth plus the mean bank depth.

        Expressed in service times (see
        :meth:`repro.sim.server.FifoServer.queue_depth`); read-only,
        used by telemetry probes.
        """
        bank_depth = sum(b.queue_depth(now) for b in self.banks)
        return self.channel.queue_depth(now) + bank_depth / len(self.banks)

    def utilization(self, horizon: int) -> float:
        """Channel busy fraction (the bandwidth bottleneck)."""
        return self.channel.stats.utilization(horizon)

    def bank_utilizations(self, horizon: int) -> List[float]:
        return [bank.stats.utilization(horizon) for bank in self.banks]


class MemorySystem:
    """All memory controllers of the chip, block-interleaved."""

    def __init__(self, controllers: List[MemoryController]):
        if not controllers:
            raise ConfigurationError("need at least one memory controller")
        self.controllers = controllers

    @classmethod
    def at_tiles(
        cls,
        tiles: List[int],
        base_latency: int = DEFAULT_MEMORY_LATENCY,
        num_banks: int = DEFAULT_BANKS,
        bank_occupancy: int = DEFAULT_BANK_OCCUPANCY,
        channel_occupancy: int = DEFAULT_CHANNEL_OCCUPANCY,
    ) -> "MemorySystem":
        return cls(
            [
                MemoryController(
                    idx,
                    tile,
                    base_latency=base_latency,
                    num_banks=num_banks,
                    bank_occupancy=bank_occupancy,
                    channel_occupancy=channel_occupancy,
                )
                for idx, tile in enumerate(tiles)
            ]
        )

    def controller_for(self, block: int) -> MemoryController:
        """Controller owning ``block`` (simple block interleaving)."""
        return self.controllers[block % len(self.controllers)]

    @property
    def total_reads(self) -> int:
        return sum(mc.reads for mc in self.controllers)

    @property
    def total_writebacks(self) -> int:
        return sum(mc.writebacks for mc in self.controllers)

    def utilizations(self, horizon: int) -> List[float]:
        return [mc.utilization(horizon) for mc in self.controllers]

    def queue_depths(self, now: int) -> List[float]:
        """Per-controller backlog at ``now`` (telemetry probes)."""
        return [mc.queue_depth(now) for mc in self.controllers]

    def mean_queue_depth(self, now: int) -> float:
        """Mean controller backlog at ``now``."""
        depths = self.queue_depths(now)
        return sum(depths) / len(depths)

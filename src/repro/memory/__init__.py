"""Off-chip memory substrate."""

from .controller import (
    DEFAULT_MEMORY_LATENCY,
    MemoryController,
    MemorySystem,
)

__all__ = ["DEFAULT_MEMORY_LATENCY", "MemoryController", "MemorySystem"]

"""Set-associative cache array with pluggable replacement.

The array stores arbitrary per-line metadata objects (see
:mod:`repro.caches.line`).  Sets are backed by insertion-ordered dicts:
hit promotion (for LRU) deletes and re-inserts the key, victim selection
delegates to the replacement policy.  All operations are O(1) for LRU
and FIFO.

This class is purely *functional* cache state — it knows nothing about
latency, coherence, or the interconnect.  Timing composition happens in
:mod:`repro.machine.chip`.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from .geometry import CacheGeometry
from .replacement import LruPolicy, ReplacementPolicy
from .stats import CacheStats

__all__ = ["SetAssocCache"]


class SetAssocCache:
    """A set-associative cache mapping block numbers to line objects.

    Parameters
    ----------
    geometry:
        Shape of the array (capacity, associativity, block size).
    policy:
        Replacement policy; defaults to LRU, matching the paper.
    name:
        Diagnostic label, e.g. ``"core3/L1"`` or ``"l2/domain0"``.
    """

    __slots__ = ("geometry", "policy", "name", "stats", "_sets", "_set_mask")

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: Optional[ReplacementPolicy] = None,
        name: str = "cache",
    ):
        self.geometry = geometry
        self.policy = (policy or LruPolicy()).clone()
        self.name = name
        self.stats = CacheStats()
        self._sets: list = [{} for _ in range(geometry.num_sets)]
        self._set_mask = geometry.num_sets - 1

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------

    def lookup(self, block: int) -> Optional[object]:
        """Return the line object for ``block``, updating recency.

        Counts as an access; returns ``None`` on miss.
        """
        cache_set = self._sets[block & self._set_mask]
        stats = self.stats
        stats.accesses += 1
        line = cache_set.get(block)
        if line is None:
            stats.misses += 1
            return None
        stats.hits += 1
        if self.policy.promotes_on_hit:
            del cache_set[block]
            cache_set[block] = line
        return line

    def peek(self, block: int) -> Optional[object]:
        """Return the line object without affecting recency or stats."""
        return self._sets[block & self._set_mask].get(block)

    def insert(
        self,
        block: int,
        line: object,
        victim_selector=None,
    ) -> Optional[Tuple[int, object]]:
        """Install ``block``; return ``(victim_block, victim_line)`` if one
        was evicted, else ``None``.

        Inserting a block that is already present replaces its line
        object (and refreshes recency) without eviction.

        Parameters
        ----------
        victim_selector:
            Optional ``f(cache_set) -> victim block`` overriding the
            replacement policy for this insertion (used by way-quota
            partitioning); it may return ``None`` to defer to the
            policy.  The set dict iterates in LRU→MRU order.
        """
        cache_set = self._sets[block & self._set_mask]
        stats = self.stats
        if block in cache_set:
            del cache_set[block]
            cache_set[block] = line
            return None
        evicted = None
        if len(cache_set) >= self.geometry.assoc:
            victim = None
            if victim_selector is not None:
                victim = victim_selector(cache_set)
            if victim is None:
                victim = self.policy.victim(cache_set)
            victim_line = cache_set.pop(victim)
            stats.evictions += 1
            if getattr(victim_line, "dirty", False):
                stats.dirty_evictions += 1
            evicted = (victim, victim_line)
        cache_set[block] = line
        stats.insertions += 1
        return evicted

    def invalidate(self, block: int) -> Optional[object]:
        """Remove ``block`` if present; return its line object."""
        cache_set = self._sets[block & self._set_mask]
        line = cache_set.pop(block, None)
        if line is not None:
            self.stats.invalidations += 1
        return line

    def touch(self, block: int) -> bool:
        """Refresh recency without counting an access.  True if present."""
        cache_set = self._sets[block & self._set_mask]
        line = cache_set.get(block)
        if line is None:
            return False
        if self.policy.promotes_on_hit:
            del cache_set[block]
            cache_set[block] = line
        return True

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def __contains__(self, block: int) -> bool:
        return block in self._sets[block & self._set_mask]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def occupancy(self) -> float:
        """Fraction of the array currently holding valid lines."""
        return len(self) / self.geometry.num_lines

    def contents(self) -> Iterator[Tuple[int, object]]:
        """Iterate ``(block, line)`` over every resident line."""
        for cache_set in self._sets:
            yield from cache_set.items()

    def set_occupancies(self) -> list:
        """Number of valid lines in each set (for conflict analysis)."""
        return [len(s) for s in self._sets]

    def clear(self) -> None:
        """Drop all lines; statistics are preserved."""
        for cache_set in self._sets:
            cache_set.clear()

    def __repr__(self) -> str:
        return f"SetAssocCache({self.name!r}, {self.geometry.describe()})"

"""The three-level cache hierarchy of Table III.

Two cooperating classes implement the *functional* hierarchy state:

* :class:`CoreCacheStack` — the private L0 (8 KB) and L1 (64 KB) of one
  core.  L1 is inclusive of L0; dirty data propagates downward on
  eviction.
* :class:`L2Domain` — one last-level-cache partition shared by N cores
  (N in {1, 2, 4, 8, 16} per the paper's private / shared-N-way / fully
  shared design points).  The domain is inclusive of its member cores'
  private caches and tracks, per line, which member L1s hold copies and
  which (if any) holds the line modified.  Inclusion is what makes the
  "last private level" (L1) miss path well defined: any block cached by
  a core in the domain is guaranteed present in the domain's L2.

Cross-domain coherence (cache-to-cache transfers, invalidation of
remote domains) is the directory protocol's job —
:mod:`repro.coherence` — these classes only manage state *within* one
domain.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ConfigurationError, SimulationError
from .geometry import CacheGeometry
from .line import L2Line, PrivateLine
from .replacement import ReplacementPolicy
from .setassoc import SetAssocCache

__all__ = ["CoreCacheStack", "L2Domain"]


class CoreCacheStack:
    """Private L0 + L1 of one core.

    The stack must be attached to an :class:`L2Domain` (via
    :meth:`L2Domain.attach`) before use so that private-cache evictions
    can maintain the domain's inclusion vector.
    """

    def __init__(
        self,
        core_id: int,
        l0_geometry: CacheGeometry,
        l1_geometry: CacheGeometry,
    ):
        self.core_id = core_id
        self.l0 = SetAssocCache(l0_geometry, name=f"core{core_id}/L0")
        self.l1 = SetAssocCache(l1_geometry, name=f"core{core_id}/L1")
        self.domain: Optional["L2Domain"] = None
        self.slot: int = -1

    # ------------------------------------------------------------------

    def probe(self, block: int) -> Optional[int]:
        """Look the block up in L0 then L1 (pure lookup).

        Returns 0 on an L0 hit, 1 on an L1 hit (the line is promoted
        into L0), or ``None`` on a private miss.  Writes call
        :meth:`mark_dirty` separately, *after* the machine model has
        obtained write permission from the directory.
        """
        line = self.l0.lookup(block)
        if line is not None:
            return 0
        line = self.l1.lookup(block)
        if line is not None:
            self._fill_l0(block, line.dirty)
            return 1
        return None

    def mark_dirty(self, block: int) -> None:
        """Mark a privately-cached block modified and claim ownership
        of it inside the domain.  Call only after a successful probe."""
        line = self.l0.peek(block)
        if line is not None:
            line.dirty = True
        line = self.l1.peek(block)
        if line is not None:
            line.dirty = True
        self._claim_ownership(block)

    def fill(self, block: int, dirty: bool) -> None:
        """Install a block into L1 and L0 after a miss was satisfied."""
        evicted = self.l1.insert(block, PrivateLine(dirty))
        if evicted is not None:
            self._spill_l1_victim(*evicted)
        self._fill_l0(block, dirty)
        if self.domain is not None:
            self.domain.note_private_fill(block, self.slot)
        if dirty:
            self._claim_ownership(block)

    def invalidate(self, block: int) -> bool:
        """Drop the block from L0 and L1; True if a dirty copy existed."""
        dirty = False
        line = self.l0.invalidate(block)
        if line is not None and line.dirty:
            dirty = True
        line = self.l1.invalidate(block)
        if line is not None and line.dirty:
            dirty = True
        return dirty

    def holds(self, block: int) -> bool:
        return block in self.l1 or block in self.l0

    def holds_dirty(self, block: int) -> bool:
        l0 = self.l0.peek(block)
        if l0 is not None and l0.dirty:
            return True
        l1 = self.l1.peek(block)
        return l1 is not None and l1.dirty

    # ------------------------------------------------------------------

    def _fill_l0(self, block: int, dirty: bool) -> None:
        evicted = self.l0.insert(block, PrivateLine(dirty))
        if evicted is None:
            return
        victim, victim_line = evicted
        if victim_line.dirty:
            # merge dirtiness down into L1 (inclusive)
            l1_line = self.l1.peek(victim)
            if l1_line is not None:
                l1_line.dirty = True
            elif self.domain is not None:
                # L1 lost the line already (race with back-invalidation
                # ordering); push dirtiness to the domain directly.
                self.domain.writeback(victim, self.slot)

    def _spill_l1_victim(self, victim: int, victim_line: PrivateLine) -> None:
        """Handle an L1 capacity eviction: merge L0 state, notify domain."""
        l0_line = self.l0.invalidate(victim)
        dirty = victim_line.dirty or (l0_line is not None and l0_line.dirty)
        if self.domain is None:
            raise SimulationError(
                f"core {self.core_id} evicted from L1 before being attached "
                "to an L2 domain"
            )
        if dirty:
            self.domain.writeback(victim, self.slot)
        self.domain.note_private_eviction(victim, self.slot)

    def _claim_ownership(self, block: int) -> None:
        if self.domain is not None:
            self.domain.note_private_write(block, self.slot)


class L2Domain:
    """One last-level-cache partition and its member cores.

    Parameters
    ----------
    domain_id:
        Index of the domain on the chip.
    geometry:
        Array shape (capacity set by the sharing degree).
    core_ids:
        Global ids of the cores sharing this partition.
    policy:
        Replacement policy for the L2 array.
    """

    def __init__(
        self,
        domain_id: int,
        geometry: CacheGeometry,
        core_ids: List[int],
        policy: Optional[ReplacementPolicy] = None,
    ):
        if not core_ids:
            raise ConfigurationError("an L2 domain needs at least one core")
        self.domain_id = domain_id
        self.cache = SetAssocCache(geometry, policy=policy, name=f"l2/domain{domain_id}")
        self.core_ids = list(core_ids)
        self.slot_of = {cid: slot for slot, cid in enumerate(self.core_ids)}
        self.stacks: List[Optional[CoreCacheStack]] = [None] * len(core_ids)
        self.writebacks_to_memory: List[int] = []
        self.dirty_writebacks = 0
        self.quota = None  # optional WayQuota (performance isolation)

    def set_quota(self, quota) -> None:
        """Enable way-quota partitioning for this domain (see
        :mod:`repro.caches.partitioning`)."""
        self.quota = quota

    def attach(self, stack: CoreCacheStack) -> None:
        """Register a member core's private stack with this domain."""
        try:
            slot = self.slot_of[stack.core_id]
        except KeyError:
            raise ConfigurationError(
                f"core {stack.core_id} is not a member of domain {self.domain_id}"
            ) from None
        stack.domain = self
        stack.slot = slot
        self.stacks[slot] = stack

    # ------------------------------------------------------------------
    # lookups and fills
    # ------------------------------------------------------------------

    def lookup(self, block: int) -> Optional[L2Line]:
        """Access the L2 array (counts in stats, promotes recency)."""
        return self.cache.lookup(block)

    def peek(self, block: int) -> Optional[L2Line]:
        return self.cache.peek(block)

    def fill(
        self, block: int, dirty: bool, vm_id: int, requester_slot: int
    ) -> List[Tuple[int, bool]]:
        """Install a block brought in from outside the domain.

        Returns the list of ``(victim_block, victim_was_dirty)`` evicted
        to make room.  Victims are back-invalidated from member private
        caches to preserve inclusion; a dirty private copy makes the
        victim dirty regardless of the L2 line's own state.
        """
        line = L2Line(dirty=dirty, vm_id=vm_id)
        line.add_sharer(requester_slot)
        if dirty:
            line.l1_owner = requester_slot
        selector = (
            self.quota.victim_selector(vm_id) if self.quota is not None else None
        )
        evicted = self.cache.insert(block, line, victim_selector=selector)
        if evicted is None:
            return []
        victim, victim_line = evicted
        victim_dirty = self._back_invalidate(victim, victim_line)
        if victim_dirty:
            self.dirty_writebacks += 1
            self.writebacks_to_memory.append(victim)
        return [(victim, victim_dirty)]

    def invalidate(self, block: int) -> bool:
        """Remove the block (directory-initiated); True if dirty anywhere."""
        line = self.cache.invalidate(block)
        if line is None:
            return False
        return self._back_invalidate(block, line)

    # ------------------------------------------------------------------
    # intra-domain bookkeeping (called by member stacks)
    # ------------------------------------------------------------------

    def note_private_fill(self, block: int, slot: int) -> None:
        line = self.cache.peek(block)
        if line is not None:
            line.add_sharer(slot)

    def note_private_eviction(self, block: int, slot: int) -> None:
        line = self.cache.peek(block)
        if line is not None:
            line.drop_sharer(slot)

    def note_private_write(self, block: int, slot: int) -> None:
        """A member core wrote the block in its private cache."""
        line = self.cache.peek(block)
        if line is not None:
            line.l1_owner = slot
            line.add_sharer(slot)

    def writeback(self, block: int, slot: int) -> None:
        """A member core pushed dirty data down into the L2."""
        line = self.cache.peek(block)
        if line is not None:
            line.dirty = True
            if line.l1_owner == slot:
                line.l1_owner = -1
        else:
            # inclusion victim already left the L2; data goes to memory
            self.dirty_writebacks += 1
            self.writebacks_to_memory.append(block)

    def dirty_private_holder(self, block: int, exclude_slot: int) -> Optional[int]:
        """Slot of a member core holding the block modified in its L1.

        Used to detect intra-domain dirty cache-to-cache transfers: the
        requesting core's miss must be satisfied by the owning core's
        private cache rather than the (stale) L2 copy.
        """
        line = self.cache.peek(block)
        if line is None:
            return None
        owner = line.l1_owner
        if owner == -1 or owner == exclude_slot:
            return None
        stack = self.stacks[owner]
        if stack is not None and stack.holds_dirty(block):
            return owner
        # stale owner hint (the private copy was silently evicted);
        # clear it so later lookups take the fast path
        line.l1_owner = -1
        return None

    def downgrade_owner(self, block: int, owner_slot: int) -> None:
        """Pull dirty data from a member L1 into the L2 (owner keeps a
        clean copy); used when another core reads the block."""
        line = self.cache.peek(block)
        if line is None:
            return
        stack = self.stacks[owner_slot]
        if stack is not None:
            l0_line = stack.l0.peek(block)
            if l0_line is not None:
                l0_line.dirty = False
            l1_line = stack.l1.peek(block)
            if l1_line is not None:
                l1_line.dirty = False
        line.dirty = True
        line.l1_owner = -1

    # ------------------------------------------------------------------

    def _back_invalidate(self, block: int, line: L2Line) -> bool:
        """Remove private copies of an evicted/invalidated L2 line."""
        dirty = line.dirty
        for slot in line.sharers():
            stack = self.stacks[slot]
            if stack is not None and stack.invalidate(block):
                dirty = True
        return dirty

    def occupancy_by_vm(self) -> dict:
        """Resident line counts per VM id (Figure 13's raw data)."""
        counts: dict = {}
        for _, line in self.cache.contents():
            counts[line.vm_id] = counts.get(line.vm_id, 0) + 1
        return counts

    def resident_blocks(self) -> set:
        """Set of block numbers currently resident (Figure 12's raw data)."""
        return {block for block, _ in self.cache.contents()}

    def __repr__(self) -> str:
        return (
            f"L2Domain(id={self.domain_id}, cores={self.core_ids}, "
            f"{self.cache.geometry.describe()})"
        )

"""Replacement policies for set-associative caches.

The paper evaluates vanilla LRU ("With a vanilla-LRU block replacement
policy, there are no guarantees on any core's allocation in the cache",
Section III-B) — LRU is therefore the default everywhere.  Random and
FIFO are provided for the ablation benchmarks: they let us test how
sensitive the consolidation interference results are to the replacement
policy, one of the design choices DESIGN.md calls out.

A policy operates on the ordered ``dict`` that backs one cache set.  The
dict's insertion order encodes recency for LRU (lookup re-inserts on
hit); FIFO simply never re-inserts; random ignores order entirely.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["ReplacementPolicy", "LruPolicy", "FifoPolicy", "RandomPolicy", "make_policy"]


class ReplacementPolicy:
    """Interface for victim selection and hit promotion."""

    #: whether a hit should move the line to most-recently-used position
    promotes_on_hit: bool = False

    def victim(self, cache_set: Dict[int, object]) -> int:
        """Pick the block to evict from a full set."""
        raise NotImplementedError

    def clone(self) -> "ReplacementPolicy":
        """Fresh policy instance with identical configuration.

        Stateless policies may return ``self``; stateful ones (seeded
        random) must return an independent copy so two caches never
        share a random stream.
        """
        return self


class LruPolicy(ReplacementPolicy):
    """Least-recently-used: evict the head of the recency order."""

    promotes_on_hit = True

    def victim(self, cache_set: Dict[int, object]) -> int:
        return next(iter(cache_set))

    def __repr__(self) -> str:
        return "LruPolicy()"


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: like LRU but hits do not refresh recency."""

    promotes_on_hit = False

    def victim(self, cache_set: Dict[int, object]) -> int:
        return next(iter(cache_set))

    def __repr__(self) -> str:
        return "FifoPolicy()"


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim selection.

    Parameters
    ----------
    seed:
        Seed for the policy's private random stream; required so runs
        stay reproducible.
    """

    promotes_on_hit = False

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def victim(self, cache_set: Dict[int, object]) -> int:
        keys = list(cache_set)
        return keys[int(self._rng.integers(len(keys)))]

    def clone(self) -> "RandomPolicy":
        return RandomPolicy(self._seed)

    def __repr__(self) -> str:
        return f"RandomPolicy(seed={self._seed})"


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, seed: Optional[int] = None) -> ReplacementPolicy:
    """Construct a policy by name: ``"lru"``, ``"fifo"``, or ``"random"``."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return RandomPolicy(seed=0 if seed is None else seed)
    return cls()

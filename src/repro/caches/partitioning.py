"""Way-quota cache partitioning (performance isolation).

The paper closes by arguing that consolidation's *functional* isolation
should "feasibly extend ... into performance isolation": one VM's cache
appetite measurably slows its neighbours (Figures 8-13).  This module
implements the classic remedy the paper's related-work section points
at (fair cache sharing/partitioning, Kim et al., PACT 2004): per-VM
**way quotas** in each shared L2 set.

Mechanism — at insertion into a full set:

1. if the inserting VM is at/above its quota in this set, it victimizes
   its own LRU line (it cannot grow at a neighbour's expense);
2. otherwise, if some other VM is over *its* quota, that VM's LRU line
   is the victim (quotas are reclaimed lazily);
3. otherwise vanilla LRU decides.

Quotas bound only *growth*; unused ways remain usable by everyone,
preserving most of the utilization benefit of sharing.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import ConfigurationError

__all__ = ["WayQuota", "equal_quotas"]


class WayQuota:
    """Per-VM way quotas for one L2 domain.

    Parameters
    ----------
    quotas:
        ``vm_id -> ways`` the VM may occupy per set.  VMs not listed
        are unconstrained (useful for the hypervisor's own traffic).
    assoc:
        The domain's set associativity (for validation).
    """

    def __init__(self, quotas: Dict[int, int], assoc: int):
        if not quotas:
            raise ConfigurationError("way quotas need at least one VM")
        for vm, ways in quotas.items():
            self._validate(vm, ways, assoc)
        self.quotas = dict(quotas)
        self.assoc = assoc
        self.self_evictions = 0
        self.reclaims = 0
        self.adjustments = 0

    @staticmethod
    def _validate(vm: int, ways: int, assoc: int) -> None:
        if ways <= 0:
            raise ConfigurationError(
                f"VM {vm} quota must be positive, got {ways}"
            )
        if ways > assoc:
            raise ConfigurationError(
                f"VM {vm} quota {ways} exceeds associativity {assoc}"
            )

    def set_quota(self, vm_id: int, ways: int) -> None:
        """Rewrite one VM's quota live (QoS controller actuation).

        Only VMs present at construction may be adjusted: quotas define
        *which* VMs the partition governs, controllers only move ways
        between them.  The same associativity bounds as construction
        apply.  No-op rewrites (same value) are not counted as
        adjustments, so a static controller leaves the counters — and
        the victim-selection behaviour — untouched.
        """
        if vm_id not in self.quotas:
            raise ConfigurationError(
                f"VM {vm_id} has no way quota in this domain; known VMs: "
                f"{sorted(self.quotas)} (quotas can be adjusted, not added)"
            )
        self._validate(vm_id, ways, self.assoc)
        if self.quotas[vm_id] != ways:
            self.quotas[vm_id] = ways
            self.adjustments += 1

    def update(self, quotas: Dict[int, int]) -> int:
        """Apply many :meth:`set_quota` rewrites; returns how many
        actually changed a value."""
        before = self.adjustments
        for vm_id, ways in sorted(quotas.items()):
            self.set_quota(vm_id, ways)
        return self.adjustments - before

    def victim_selector(self, vm_id: int):
        """A per-insertion victim selector for
        :meth:`repro.caches.setassoc.SetAssocCache.insert`."""
        quotas = self.quotas
        my_quota = quotas.get(vm_id)

        def select(cache_set) -> Optional[int]:
            counts: Dict[int, int] = {}
            for line in cache_set.values():
                owner = line.vm_id
                counts[owner] = counts.get(owner, 0) + 1
            if my_quota is not None and counts.get(vm_id, 0) >= my_quota:
                # rule 1: evict own LRU line
                for block, line in cache_set.items():
                    if line.vm_id == vm_id:
                        self.self_evictions += 1
                        return block
            # rule 2: reclaim from an over-quota neighbour
            for block, line in cache_set.items():
                owner = line.vm_id
                quota = quotas.get(owner)
                if quota is not None and owner != vm_id and counts[owner] > quota:
                    self.reclaims += 1
                    return block
            return None  # rule 3: fall back to vanilla LRU

        return select


def equal_quotas(vm_ids, assoc: int) -> Dict[int, int]:
    """An equal split of ``assoc`` ways among ``vm_ids`` (at least one
    way each) — the fair-share configuration used by the fairness
    ablation."""
    vm_ids = list(vm_ids)
    if not vm_ids:
        raise ConfigurationError("equal_quotas needs at least one VM")
    share = max(1, assoc // len(vm_ids))
    return {vm: share for vm in vm_ids}

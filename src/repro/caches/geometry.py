"""Cache geometry: sizes, associativity, and index/tag arithmetic.

Geometries are expressed in bytes and validated to be realizable
(power-of-two sets, block-aligned capacity).  Table III of the paper
fixes the hierarchy this library models by default:

========  ========  =======  ============
Level     Capacity  Latency  Shared by
========  ========  =======  ============
L0        8 KB      1 cycle  1 core
L1        64 KB     2 cycles 1 core
L2        16 MB     6 cycles 1..16 cores
========  ========  =======  ============
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim.records import BLOCK_BYTES

__all__ = ["CacheGeometry", "L0_GEOMETRY", "L1_GEOMETRY", "l2_domain_geometry"]


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Shape and timing of one cache array.

    Attributes
    ----------
    size_bytes:
        Total capacity.
    assoc:
        Ways per set.
    latency:
        Access latency in cycles.
    block_bytes:
        Line size; 64 bytes everywhere in this study.
    """

    size_bytes: int
    assoc: int
    latency: int
    block_bytes: int = BLOCK_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(f"cache size must be positive, got {self.size_bytes}")
        if self.assoc <= 0:
            raise ConfigurationError(f"associativity must be positive, got {self.assoc}")
        if self.latency < 0:
            raise ConfigurationError(f"latency must be non-negative, got {self.latency}")
        if not _is_pow2(self.block_bytes):
            raise ConfigurationError(
                f"block size must be a power of two, got {self.block_bytes}"
            )
        if self.size_bytes % (self.assoc * self.block_bytes):
            raise ConfigurationError(
                f"size {self.size_bytes} is not divisible by assoc*block "
                f"({self.assoc}*{self.block_bytes})"
            )
        if not _is_pow2(self.num_sets):
            raise ConfigurationError(
                f"derived set count {self.num_sets} is not a power of two "
                f"(size={self.size_bytes}, assoc={self.assoc})"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.block_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.block_bytes

    def set_index(self, block: int) -> int:
        """Set index for a block number (blocks are already byte>>6)."""
        return block & (self.num_sets - 1)

    def scaled(self, factor: float) -> "CacheGeometry":
        """A geometry with capacity scaled by ``factor``.

        Used by the scaled-simulation mode: shrinking caches and
        workload footprints by the same factor preserves the
        capacity ratios the paper's results depend on while keeping
        Python-speed runs in steady state.  Associativity is capped so
        the scaled cache keeps at least one set.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        new_size = int(self.size_bytes * factor)
        new_size = max(new_size, self.block_bytes)
        assoc = min(self.assoc, new_size // self.block_bytes)
        return CacheGeometry(
            size_bytes=new_size,
            assoc=assoc,
            latency=self.latency,
            block_bytes=self.block_bytes,
        )

    def describe(self) -> str:
        """Human-readable summary, e.g. ``"64KB 4-way, 256 sets, 2cyc"``."""
        size = self.size_bytes
        if size % (1024 * 1024) == 0:
            size_s = f"{size // (1024 * 1024)}MB"
        elif size % 1024 == 0:
            size_s = f"{size // 1024}KB"
        else:
            size_s = f"{size}B"
        return f"{size_s} {self.assoc}-way, {self.num_sets} sets, {self.latency}cyc"


L0_GEOMETRY = CacheGeometry(size_bytes=8 * 1024, assoc=4, latency=1)
"""Private L0 per Table III: 8 KB, 1 cycle."""

L1_GEOMETRY = CacheGeometry(size_bytes=64 * 1024, assoc=4, latency=2)
"""Private L1 per Table III: 64 KB, 2 cycles."""


def l2_domain_geometry(cores_per_domain: int, total_bytes: int = 16 * 1024 * 1024,
                       assoc: int = 16, latency: int = 6) -> CacheGeometry:
    """Geometry of one L2 domain when ``cores_per_domain`` cores share it.

    The paper holds aggregate L2 capacity at 16 MB and carves it into
    equal partitions: private (1 MB x 16), shared-2-way (2 MB x 8),
    shared-4-way (4 MB x 4), shared-8-way (8 MB x 2), fully shared
    (16 MB x 1).
    """
    if cores_per_domain <= 0:
        raise ConfigurationError(
            f"cores_per_domain must be positive, got {cores_per_domain}"
        )
    if total_bytes % 16:
        raise ConfigurationError("total L2 bytes must be divisible by 16")
    per_core = total_bytes // 16
    return CacheGeometry(
        size_bytes=per_core * cores_per_domain, assoc=assoc, latency=latency
    )

"""Cache-line metadata objects.

Two kinds of lines exist in the hierarchy:

* :class:`PrivateLine` — lines in the per-core L0/L1.  They only track
  dirtiness; coherence state lives at the L2/directory level.
* :class:`L2Line` — lines in a last-level-cache domain.  Besides
  dirtiness they track which cores *inside the domain* hold the line in
  their private caches (an inclusion vector) and which VM the line
  belongs to, which feeds the paper's occupancy and replication
  analyses (Figures 12 and 13).

Both classes use ``__slots__``: the simulator allocates millions of
lines and attribute dictionaries would dominate memory.
"""

from __future__ import annotations

__all__ = ["PrivateLine", "L2Line"]


class PrivateLine:
    """A line resident in a private (L0 or L1) cache."""

    __slots__ = ("dirty",)

    def __init__(self, dirty: bool = False):
        self.dirty = dirty

    def __repr__(self) -> str:
        return f"PrivateLine(dirty={self.dirty})"


class L2Line:
    """A line resident in a last-level-cache domain.

    Attributes
    ----------
    dirty:
        The domain's copy differs from memory (M or O at the directory).
    l1_mask:
        Bitmask over the domain's *local slot indices* (not global core
        ids) of private caches that may hold the line.  Used for
        inclusion back-invalidation and intra-domain dirty transfers.
    l1_owner:
        Local slot index of the core whose L1 holds the line modified,
        or -1.  A dirty private copy forces an intra-domain
        cache-to-cache transfer when another core in the domain misses.
    vm_id:
        Virtual machine that brought the line in; VMs never share data
        (the hypervisor gives each a private physical partition) so one
        id suffices.
    """

    __slots__ = ("dirty", "l1_mask", "l1_owner", "vm_id")

    def __init__(self, dirty: bool = False, vm_id: int = -1):
        self.dirty = dirty
        self.l1_mask = 0
        self.l1_owner = -1
        self.vm_id = vm_id

    def add_sharer(self, slot: int) -> None:
        self.l1_mask |= 1 << slot

    def drop_sharer(self, slot: int) -> None:
        self.l1_mask &= ~(1 << slot)
        if self.l1_owner == slot:
            self.l1_owner = -1

    def has_sharer(self, slot: int) -> bool:
        return bool(self.l1_mask & (1 << slot))

    def sharers(self) -> list:
        """Local slot indices with (possibly stale) private copies."""
        mask = self.l1_mask
        out = []
        slot = 0
        while mask:
            if mask & 1:
                out.append(slot)
            mask >>= 1
            slot += 1
        return out

    def __repr__(self) -> str:
        return (
            f"L2Line(dirty={self.dirty}, l1_mask={self.l1_mask:#x}, "
            f"l1_owner={self.l1_owner}, vm_id={self.vm_id})"
        )

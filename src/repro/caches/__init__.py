"""Cache substrate: geometries, arrays, replacement, and the hierarchy."""

from .geometry import L0_GEOMETRY, L1_GEOMETRY, CacheGeometry, l2_domain_geometry
from .hierarchy import CoreCacheStack, L2Domain
from .line import L2Line, PrivateLine
from .replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from .setassoc import SetAssocCache
from .stats import CacheStats

__all__ = [
    "L0_GEOMETRY",
    "L1_GEOMETRY",
    "CacheGeometry",
    "l2_domain_geometry",
    "CoreCacheStack",
    "L2Domain",
    "L2Line",
    "PrivateLine",
    "FifoPolicy",
    "LruPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "make_policy",
    "SetAssocCache",
    "CacheStats",
]

"""Per-cache statistics."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheStats"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache array."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        """Return the element-wise sum of two counter sets."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            insertions=self.insertions + other.insertions,
            evictions=self.evictions + other.evictions,
            dirty_evictions=self.dirty_evictions + other.dirty_evictions,
            invalidations=self.invalidations + other.invalidations,
        )

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.invalidations = 0

"""Legacy setup shim.

Allows ``pip install -e . --no-build-isolation --no-use-pep517`` on
offline machines that lack the ``wheel`` package; all real metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

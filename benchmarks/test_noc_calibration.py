"""NoC calibration — analytical mesh vs. flit-level router model.

Not a paper figure: this bench validates the substitution documented in
DESIGN.md.  The consolidation simulations use the fast analytical mesh
(per-link FIFO queues, 4-cycle hops); the flit-level 3-stage
speculative-VC router network is the reference.  Uniform-random traffic
is driven through both at matched injection rates and the zero-load and
loaded latencies are compared.
"""

import pytest

from _common import BENCH_SEED, emit, once
from repro.analysis.report import format_table
from repro.interconnect.analytical import AnalyticalMesh
from repro.interconnect.network import FlitNetwork
from repro.interconnect.packet import Packet
from repro.interconnect.topology import MeshTopology
from repro.sim.rng import RngFactory


def drive_flit_network(pairs, flits, gap):
    net = FlitNetwork(MeshTopology(4, 4))
    time = 0
    for src, dst in pairs:
        net.run(gap)
        time += gap
        net.inject(Packet(src=src, dst=dst, num_flits=flits,
                          inject_time=time))
    net.drain()
    return net.mean_packet_latency


def drive_analytical(pairs, flits, gap):
    mesh = AnalyticalMesh(MeshTopology(4, 4))
    total = 0
    time = 0
    for src, dst in pairs:
        time += gap
        total += mesh.traverse(src, dst, flits, time).latency
    return total / len(pairs)


@pytest.fixture(scope="module")
def traffic():
    rng = RngFactory(BENCH_SEED).stream("noc")
    pairs = []
    while len(pairs) < 400:
        src, dst = int(rng.integers(16)), int(rng.integers(16))
        if src != dst:
            pairs.append((src, dst))
    return pairs


def test_noc_calibration(benchmark, traffic):
    def build():
        rows = []
        for label, flits, gap in (("light/control", 1, 40),
                                  ("light/data", 5, 40),
                                  ("loaded/data", 5, 6)):
            flit_lat = drive_flit_network(traffic, flits, gap)
            ana_lat = drive_analytical(traffic, flits, gap)
            rows.append([label, flit_lat, ana_lat,
                         ana_lat / flit_lat if flit_lat else 0.0])
        return rows

    rows = once(benchmark, build)
    emit("noc_calibration", format_table(
        ["traffic", "flit-level (cyc)", "analytical (cyc)", "ratio"],
        rows, title="NoC calibration: analytical vs flit-level mesh"))

    for label, flit_lat, ana_lat, ratio in rows:
        # the fast model tracks the reference within 2x both ways
        assert 0.5 < ratio < 2.0, (label, ratio)

    # both models agree that load increases latency
    light = rows[1]
    loaded = rows[2]
    assert loaded[1] > light[1]


def test_noc_zero_load_agreement(benchmark):
    """Per-distance zero-load latency of both models, single packets."""
    def build():
        mesh = AnalyticalMesh(MeshTopology(4, 4))
        rows = []
        for dst, hops in ((1, 1), (3, 3), (15, 6)):
            net = FlitNetwork(MeshTopology(4, 4))
            packet = Packet(src=0, dst=dst, num_flits=5)
            net.inject(packet)
            net.drain()
            rows.append([hops, packet.latency,
                         mesh.zero_load_latency(0, dst, 5)])
        return rows

    rows = once(benchmark, build)
    emit("noc_zero_load", format_table(
        ["hops", "flit-level", "analytical"], rows,
        title="Zero-load latency by distance (5-flit data packets)"))

    for hops, flit_lat, ana_lat in rows:
        assert abs(flit_lat - ana_lat) <= max(4, 0.5 * flit_lat), (
            f"{hops} hops: {flit_lat} vs {ana_lat}")
    # latency grows with distance in both models
    assert rows[0][1] < rows[2][1]
    assert rows[0][2] < rows[2][2]

"""Figure 9 — single-workload miss rates of heterogeneous mixes.

Per-VM L2 miss rates of Mixes 1-9 normalized to isolation with the
fully shared 16 MB cache.

Paper shapes asserted:
* TPC-H with affinity sees almost no miss-rate increase with respect
  to the 16 MB cache;
* SPECjbb's miss rate balloons when caches are shared across workloads
  (round robin), its degradation driver in Figure 8;
* SPECjbb's increase is large in Mixes 7-9 (sharing with TPC-W, which
  pressures the cache hard).
"""

import pytest

from _common import HETEROGENEOUS, emit, isolation_baseline, mean, once, run
from repro.analysis.report import format_series

POLICIES = ["affinity", "rr"]


@pytest.fixture(scope="module")
def data():
    out = {}
    baselines = {w: isolation_baseline(w).miss_rate
                 for w in ("tpcw", "tpch", "specjbb")}
    for mix in HETEROGENEOUS:
        for policy in POLICIES:
            result = run(mix, policy=policy)
            for workload in dict.fromkeys(result.workloads):
                vms = result.metrics_for(workload)
                out[(mix, policy, workload)] = mean(
                    [vm.miss_rate for vm in vms]) / baselines[workload]
    return out


def test_fig9_heterogeneous_missrates(benchmark, data):
    def build():
        series = {}
        for mix in HETEROGENEOUS:
            for policy in POLICIES:
                row = {}
                for workload in ("tpcw", "tpch", "specjbb"):
                    if (mix, policy, workload) in data:
                        row[workload] = data[(mix, policy, workload)]
                series[f"{mix}/{policy}"] = row
        return format_series(
            "Figure 9: Heterogeneous-mix miss rates (normalized to "
            "isolation w/ 16MB shared)", series)

    emit("fig9_heterogeneous_missrates", once(benchmark, build))

    # TPC-H + affinity: almost no increase vs the 16MB cache
    for mix in ("mix1", "mix2", "mix3", "mix4", "mix5", "mix6"):
        assert data[(mix, "affinity", "tpch")] < 1.25, mix

    # SPECjbb + RR: the big miss-rate increase driving Figure 8
    for mix in ("mix7", "mix8", "mix9"):
        assert data[(mix, "rr", "specjbb")] > 1.5, mix

    # RR always at least as bad as affinity for SPECjbb
    for mix in ("mix4", "mix5", "mix6", "mix7", "mix8", "mix9"):
        assert (data[(mix, "rr", "specjbb")]
                >= data[(mix, "affinity", "specjbb")])

"""Directory-cache ablation.

The paper's methodology augments each core with a directory cache "to
reduce the number of off-chip references" (Section IV-A) but never
quantifies it.  This ablation sweeps the per-tile directory-cache
capacity and measures its effect on hit rate and miss latency — the
design-choice justification DESIGN.md calls out.
"""

import pytest

from _common import emit, mean, once, run
from repro.analysis.report import format_table

# entries per home tile (the default machine uses 16K)
SIZES = (64, 1024, 16 * 1024, 64 * 1024)


@pytest.fixture(scope="module")
def data():
    return {
        entries: run("mixA", policy="rr", dir_cache_entries=entries)
        for entries in SIZES
    }


def test_ablation_dircache(benchmark, data):
    def build():
        rows = []
        for entries in SIZES:
            result = data[entries]
            vms = result.vm_metrics
            rows.append([
                entries,
                result.chip_summary.directory_cache_hit_rate,
                mean([vm.mean_miss_latency for vm in vms]),
                mean([vm.cycles for vm in vms]),
            ])
        return rows

    rows = once(benchmark, build)
    emit("ablation_dircache", format_table(
        ["Entries/tile", "Dir-cache hit rate", "Miss latency", "Mean cycles"],
        rows, title="Directory-cache ablation (mixA, RR): why the paper "
                    "adds directory caches"))

    hit_rates = [row[1] for row in rows]
    latencies = [row[2] for row in rows]
    # bigger directory caches hit more and cut miss latency
    assert hit_rates == sorted(hit_rates)
    assert latencies == sorted(latencies, reverse=True)
    # an undersized directory cache costs real latency relative to a
    # footprint-covering one
    assert latencies[0] > latencies[-1] * 1.05

"""Figure 4 — miss latencies of workloads run in isolation.

Average latency of misses in the last private level, for three cache
configurations (shared, shared-4-way, private) under both schedulers,
in raw cycles (the paper presents absolute averages here).

Paper shapes asserted:
* private caches have the highest miss latency for the big-footprint
  workloads (more off-chip misses);
* affinity groups communicating cores, so dirty misses resolve faster
  than under round robin for TPC-H (the dirty-transfer workload) on
  partially shared caches.
"""

import pytest

from _common import emit, once, run
from repro.analysis.report import format_series

WORKLOADS = ["tpcw", "specjbb", "tpch", "specweb"]
CONFIGS = [("shared", "shared"), ("shared-4", "4-LL$"), ("private", "private")]
POLICIES = ["rr", "affinity"]


@pytest.fixture(scope="module")
def data():
    out = {}
    for workload in WORKLOADS:
        for sharing, label in CONFIGS:
            for policy in POLICIES:
                vm = run(f"iso-{workload}", sharing=sharing,
                         policy=policy).vm_metrics[0]
                out[(workload, label, policy)] = vm.mean_miss_latency
    return out


def test_fig4_isolated_misslatency(benchmark, data):
    def build():
        series = {}
        for workload in WORKLOADS:
            for _sharing, label in CONFIGS:
                row = series.setdefault(f"{workload}/{label}", {})
                for policy in POLICIES:
                    row[policy] = data[(workload, label, policy)]
        return format_series(
            "Figure 4: Isolated miss latencies (cycles per last-private-"
            "level miss)", series, precision=1)

    emit("fig4_isolated_misslatency", once(benchmark, build))

    # all latencies are physically plausible: above an L2 round trip,
    # below a couple of contended memory accesses
    for value in data.values():
        assert 10 < value < 600

    # big-footprint workloads: private config has the worst latency
    for workload in ("tpcw", "specweb"):
        assert (data[(workload, "private", "affinity")]
                > data[(workload, "shared", "affinity")])

    # TPC-H at shared-4-way: affinity's grouped cores resolve its dirty
    # transfers faster than round robin's spread
    assert (data[("tpch", "4-LL$", "affinity")]
            < data[("tpch", "4-LL$", "rr")])

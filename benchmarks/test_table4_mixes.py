"""Table IV — experimental runs (the mix matrix).

Regenerates the mix table and asserts it is exactly the paper's, and
that every mix fills (and never over-commits) the 16-core machine.
"""

from _common import emit, once
from repro.analysis.report import format_table
from repro.core.mixes import HETEROGENEOUS_MIXES, HOMOGENEOUS_MIXES, MIXES


def build_table():
    rows = []
    for name in sorted(HETEROGENEOUS_MIXES):
        rows.append([name, MIXES[name].describe()])
    for name in sorted(HOMOGENEOUS_MIXES):
        rows.append([name, MIXES[name].describe()])
    return format_table(["Mix", "Composition"], rows,
                        title="Table IV: Experimental Runs")


def test_table4_mixes(benchmark):
    table = once(benchmark, build_table)
    emit("table4_mixes", table)

    assert "TPC-W (3) & TPC-H (1)" in table    # Mix 1
    assert "SPECjbb (1) & TPC-W (3)" in table  # Mix 9
    assert "SPECweb (4)" in table              # Mix D
    assert len(HETEROGENEOUS_MIXES) == 9
    assert len(HOMOGENEOUS_MIXES) == 4
    for mix in MIXES.values():
        threads = sum(profile.threads for profile in mix.profiles())
        assert threads == 16, f"{mix.name} does not fill the machine"

"""Phase-alignment ablation (Section VII).

"It is possible that by doing some phase analysis and aligning
different combinations of phases from different workloads that one can
study the interactions in more depth.  Such an analysis would give ...
an indication of the range of interference."

Every VM runs the built-in 'burst' plan (alternating compute-heavy and
communication-heavy phases).  Sweeping the per-VM start stagger slides
the phases against each other: aligned starts put every VM's
communication burst on the chip simultaneously; a half-phase stagger
interleaves compute with communication.  The spread of miss rates
across alignments *is* the paper's "range of interference".
"""

import pytest

from _common import emit, mean, once, run
from repro.analysis.report import format_table

# phase length is 4000 refs; with ~tens of cycles per ref a half-phase
# offset is on the order of 100k cycles
STAGGERS = (0, 60_000, 120_000, 240_000)


@pytest.fixture(scope="module")
def data():
    out = {}
    for stagger in STAGGERS:
        out[stagger] = run("mixC", policy="rr", phase_plan="burst",
                           start_stagger=stagger)
    out["steady"] = run("mixC", policy="rr")
    return out


def test_ablation_phases(benchmark, data):
    def build():
        rows = []
        for stagger in STAGGERS:
            result = data[stagger]
            vms = result.vm_metrics
            rows.append([
                f"burst, stagger {stagger}",
                mean([vm.miss_rate for vm in vms]),
                mean([vm.mean_miss_latency for vm in vms]),
                mean([vm.cycles for vm in vms]),
            ])
        steady = data["steady"].vm_metrics
        rows.append([
            "steady (no phases)",
            mean([vm.miss_rate for vm in steady]),
            mean([vm.mean_miss_latency for vm in steady]),
            mean([vm.cycles for vm in steady]),
        ])
        return rows

    rows = once(benchmark, build)
    emit("ablation_phases", format_table(
        ["Configuration", "Miss rate", "Miss latency", "Mean cycles"],
        rows, title="Phase-alignment ablation (mixC, RR, 'burst' plan)"))

    phased = rows[:-1]
    miss_rates = [row[1] for row in phased]
    # the interference range: alignment shifts the measured miss rate;
    # report it and require the sweep to be non-degenerate
    spread = (max(miss_rates) - min(miss_rates)) / min(miss_rates)
    assert spread >= 0.0
    # phased behaviour is a perturbation, not a different workload:
    # every alignment stays within 40% of the steady-state miss rate
    steady_rate = rows[-1][1]
    for rate in miss_rates:
        assert abs(rate - steady_rate) / steady_rate < 0.4

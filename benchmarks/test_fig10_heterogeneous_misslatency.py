"""Figure 10 — miss latencies of heterogeneous mixes.

Average last-private-level miss latency per workload in Mixes 1-9,
normalized to the workload's latency in isolation with affinity
scheduling and a shared-4-way cache (the paper's stated basis).

Paper shapes asserted:
* consolidation raises relative miss latency;
* TPC-W's miss latency is the most sensitive to co-scheduled
  workloads; SPECjbb's is the least sensitive (its problem is miss
  *rate*, not per-miss latency);
* the spread across mixes is wide — workloads are highly sensitive to
  who they are consolidated with.
"""

import pytest

from _common import HETEROGENEOUS, emit, mean, once, run
from repro.analysis.report import format_series

POLICIES = ["affinity", "rr"]
WORKLOADS = ("tpcw", "tpch", "specjbb")


@pytest.fixture(scope="module")
def data():
    baselines = {
        w: run(f"iso-{w}", sharing="shared-4",
               policy="affinity").vm_metrics[0].mean_miss_latency
        for w in WORKLOADS
    }
    out = {}
    for mix in HETEROGENEOUS:
        for policy in POLICIES:
            result = run(mix, policy=policy)
            for workload in dict.fromkeys(result.workloads):
                vms = result.metrics_for(workload)
                out[(mix, policy, workload)] = mean(
                    [vm.mean_miss_latency for vm in vms]) / baselines[workload]
    return out


def test_fig10_heterogeneous_misslatency(benchmark, data):
    def build():
        series = {}
        for mix in HETEROGENEOUS:
            for policy in POLICIES:
                row = {}
                for workload in WORKLOADS:
                    if (mix, policy, workload) in data:
                        row[workload] = data[(mix, policy, workload)]
                series[f"{mix}/{policy}"] = row
        return format_series(
            "Figure 10: Heterogeneous-mix miss latency (normalized to "
            "isolation, affinity shared-4-way)", series)

    emit("fig10_heterogeneous_misslatency", once(benchmark, build))

    # consolidation does not shrink per-miss latency
    for key, value in data.items():
        assert value > 0.80, key

    # SPECjbb's degradation is miss-RATE-driven (the paper's causal
    # story): its normalized miss-rate growth exceeds its normalized
    # miss-latency growth wherever it shares caches with TPC-W
    from _common import isolation_baseline
    jbb_mr_base = isolation_baseline("specjbb").miss_rate
    for mix in ("mix7", "mix8", "mix9"):
        result = run(mix, policy="rr")
        rate_growth = mean([vm.miss_rate for vm in
                            result.metrics_for("specjbb")]) / jbb_mr_base
        assert rate_growth > data[(mix, "rr", "specjbb")], mix

    # the spread across mixes is wide (> 25% between min and max) —
    # "workloads are incredibly sensitive to the co-scheduled workloads"
    values = list(data.values())
    assert max(values) / min(values) > 1.25

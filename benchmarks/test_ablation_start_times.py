"""Start-time ablation.

Section VIII: "Other methodological considerations, such as workload
start times deserve further exploration."  This bench staggers VM
start times within a homogeneous mix and measures how much the paper's
aligned-start metrics shift — an estimate of the phase-alignment error
bar on the consolidated measurements.
"""

import pytest

from _common import emit, mean, once, run
from repro.analysis.report import format_table

STAGGERS = (0, 20_000, 80_000)


@pytest.fixture(scope="module")
def data():
    return {
        stagger: run("mixC", policy="rr", start_stagger=stagger)
        for stagger in STAGGERS
    }


def test_ablation_start_times(benchmark, data):
    def build():
        rows = []
        base = mean([vm.miss_rate for vm in data[0].vm_metrics])
        for stagger in STAGGERS:
            result = data[stagger]
            vms = result.vm_metrics
            cycles = [vm.cycles for vm in vms]
            rows.append([
                stagger,
                mean(cycles),
                max(cycles) - min(cycles),
                mean([vm.miss_rate for vm in vms]) / base,
            ])
        return rows

    rows = once(benchmark, build)
    emit("ablation_start_times", format_table(
        ["Stagger (cycles)", "Mean completion", "Completion spread",
         "Miss rate vs aligned"],
        rows, title="Start-time ablation (mixC, RR)"))

    aligned, small, large = rows
    # staggering spreads completions at least as wide as the stagger
    assert large[2] > aligned[2]
    # but the steady-state miss behaviour is robust to start times —
    # the paper's aligned-start methodology is not fragile
    for _stagger, _mean, _spread, rel_missrate in rows:
        assert 0.85 < rel_missrate < 1.15

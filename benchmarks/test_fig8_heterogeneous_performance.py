"""Figure 8 — single-workload performance of heterogeneous mixes.

Mixes 1-9 on shared-4-way L2s under affinity and round robin; cycle
counts per instance normalized to the run in isolation with a fully
shared 16 MB cache (the paper also plots the isolated shared-4-way
points as the interference-free reference).

Paper shapes asserted:
* TPC-H is largely unaffected by co-runners under affinity — its small
  footprint plus private-transfer-heavy behaviour isolate it;
* SPECjbb sees clear degradation when it must share caches with other
  workloads (round robin);
* interference under affinity stays near the isolated shared-4-way
  reference (cache capacity, not co-runners, dominates).
"""

import pytest

from _common import HETEROGENEOUS, emit, isolation_baseline, mean, once, run
from repro.analysis.report import format_series

POLICIES = ["affinity", "rr"]


@pytest.fixture(scope="module")
def data():
    out = {}
    baselines = {w: isolation_baseline(w).cycles
                 for w in ("tpcw", "tpch", "specjbb")}
    for mix in HETEROGENEOUS:
        for policy in POLICIES:
            result = run(mix, policy=policy)
            for workload in dict.fromkeys(result.workloads):
                vms = result.metrics_for(workload)
                out[(mix, policy, workload)] = mean(
                    [vm.cycles for vm in vms]) / baselines[workload]
    # isolated shared-4-way reference points
    for workload in ("tpcw", "tpch", "specjbb"):
        for policy in POLICIES:
            vm = run(f"iso-{workload}", policy=policy).vm_metrics[0]
            out[("isolated", policy, workload)] = (
                vm.cycles / baselines[workload])
    return out


def test_fig8_heterogeneous_performance(benchmark, data):
    def build():
        series = {}
        keys = sorted({k[0] for k in data} - {"isolated"}) + ["isolated"]
        for mix in keys:
            for policy in POLICIES:
                row = {}
                for workload in ("tpcw", "tpch", "specjbb"):
                    if (mix, policy, workload) in data:
                        row[workload] = data[(mix, policy, workload)]
                series[f"{mix}/{policy}"] = row
        return format_series(
            "Figure 8: Heterogeneous-mix performance (normalized runtime "
            "vs isolation w/ 16MB shared)", series)

    emit("fig8_heterogeneous_performance", once(benchmark, build))

    # TPC-H under affinity: immune to co-runners (within 20% of its
    # isolated fully-shared runtime) in every mix containing it
    for mix in ("mix1", "mix2", "mix3", "mix4", "mix5", "mix6"):
        assert data[(mix, "affinity", "tpch")] < 1.20, mix

    # SPECjbb under RR: clear degradation in every mix containing it
    for mix in ("mix4", "mix5", "mix6", "mix7", "mix8", "mix9"):
        assert data[(mix, "rr", "specjbb")] > 1.15, mix

    # affinity interference stays near the isolated 4-LL$ reference
    for mix in ("mix1", "mix2", "mix3"):
        iso = data[("isolated", "affinity", "tpcw")]
        assert abs(data[(mix, "affinity", "tpcw")] - iso) < 0.25

    # consolidation never speeds anything up
    for key, value in data.items():
        assert value > 0.90, key

"""Appendix: miss-latency composition.

Not a numbered figure — the decomposition behind the paper's
explanations: how much of each workload's stall time is cache access,
interconnect, directory, and memory, and how scheduling moves it.
Affinity converts SPECjbb/TPC-H interconnect+memory cycles into local
cache cycles; TPC-W stays memory-bound regardless.
"""

import pytest

from _common import emit, once, run
from repro.analysis.report import format_table

CASES = [("mixB", "tpch"), ("mixC", "specjbb"), ("mixA", "tpcw")]


@pytest.fixture(scope="module")
def data():
    out = {}
    for mix, workload in CASES:
        for policy in ("affinity", "rr"):
            result = run(mix, policy=policy)
            vms = result.metrics_for(workload)
            total = sum(vm.latency_cycles for vm in vms)
            out[(mix, policy)] = {
                "cache": sum(vm.cache_cycles for vm in vms) / total,
                "network": sum(vm.network_cycles for vm in vms) / total,
                "directory": sum(vm.directory_cycles for vm in vms) / total,
                "memory": sum(vm.memory_cycles for vm in vms) / total,
            }
    return out


def test_appendix_breakdown(benchmark, data):
    def build():
        rows = []
        for (mix, policy), shares in data.items():
            rows.append([
                f"{mix}/{policy}",
                shares["cache"], shares["network"],
                shares["directory"], shares["memory"],
            ])
        return rows

    rows = once(benchmark, build)
    emit("appendix_breakdown", format_table(
        ["Run", "cache", "network", "directory", "memory"],
        rows, title="Appendix: stall-cycle composition per workload "
                    "(fraction of total latency cycles)"))

    for (mix, policy), shares in data.items():
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-9)

    # TPC-W is memory-bound under both policies
    assert data[("mixA", "affinity")]["memory"] > 0.3
    assert data[("mixA", "rr")]["memory"] > 0.3

    # RR pushes the share-heavy workloads toward the network:
    # their interconnect share grows vs affinity
    for mix in ("mixB", "mixC"):
        assert (data[(mix, "rr")]["network"]
                > data[(mix, "affinity")]["network"])

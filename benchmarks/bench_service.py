#!/usr/bin/env python
"""Service-layer overhead micro-benchmark.

The job service wraps the same ``SweepExecutor`` + ``ResultStore``
machinery the library exposes directly, so its tax is everything in
between: HTTP round-trips, JSON codecs, the journal fsync per state
transition, and the scheduler hop.  The clean measurement is on a
*warm* store — both paths then execute zero cells, and the wall-clock
difference is purely service plumbing:

* ``direct``  — ``SweepExecutor.run`` over a warm store, in process;
* ``service`` — ``ServiceClient.submit`` + ``wait`` + one result
  fetch against an embedded server on a warm store (dedup path).

Absolute per-job latency matters more than the ratio here (the direct
path is microseconds — any HTTP hop is thousands of percent "slower"),
so the verdict checks the service round-trip against a latency budget
(default 250 ms/job) rather than a fraction.

Artifacts land next to the other bench outputs:
``benchmarks/results/bench_service.json`` holds per-path seconds and
the verdict; the rendered table also goes to stdout.

Run it directly (not part of the pytest bench suite — wall-clock
assertions are too machine-dependent for CI)::

    PYTHONPATH=src python benchmarks/bench_service.py [--refs N]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.analysis.report import format_table
from repro.core.executor import SweepExecutor
from repro.core.experiment import ExperimentSpec
from repro.core.store import ResultStore
from repro.service import ServiceClient, ServiceServer

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def grid(refs: int):
    return [
        ((sharing, policy),
         ExperimentSpec(mix="iso-tpch", sharing=sharing, policy=policy,
                        seed=1, measured_refs=refs,
                        warmup_refs=refs // 4))
        for sharing in ("private", "shared-4")
        for policy in ("rr", "affinity")
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--refs", type=int, default=1500,
                        help="measured references per thread")
    parser.add_argument("--repeats", type=int, default=20,
                        help="warm round-trips to time per path")
    parser.add_argument("--budget", type=float, default=0.25,
                        help="allowed service seconds per warm job")
    args = parser.parse_args(argv)

    store = ResultStore()
    cells = grid(args.refs)
    specs = [spec for _key, spec in cells]

    cold_start = time.perf_counter()
    SweepExecutor(store=store).run(cells)  # warm the store once
    cold = time.perf_counter() - cold_start

    direct = []
    for _ in range(args.repeats):
        start = time.perf_counter()
        outcomes = SweepExecutor(store=store).run(cells)
        direct.append(time.perf_counter() - start)
        assert all(o.from_cache for o in outcomes)

    server = ServiceServer(store=store).start_in_thread()
    try:
        client = ServiceClient(f"http://127.0.0.1:{server.port}",
                               client_id="bench")
        service = []
        for _ in range(args.repeats):
            start = time.perf_counter()
            job = client.submit(specs)
            job = client.wait(job["job_id"], poll=0.001)
            client.result(job["result_keys"][0])
            service.append(time.perf_counter() - start)
            assert job["cells_simulated"] == 0
        dedup_hits = client.metrics()["counters"]["service.dedup_hits"]
    finally:
        server.shutdown()
    assert dedup_hits >= args.repeats

    med_direct = statistics.median(direct)
    med_service = statistics.median(service)
    tax = med_service - med_direct
    ok = med_service < args.budget

    rows = [
        ["cold simulate (4 cells)", round(cold, 4), "-", "-"],
        ["direct warm run", round(med_direct, 4), "baseline", "-"],
        ["service warm round-trip", round(med_service, 4),
         f"+{tax * 1000:.1f} ms", "ok" if ok else "OVER"],
    ]
    print(format_table(
        ["Path", "Wall (s)", "Service tax",
         f"Budget {args.budget * 1000:.0f} ms"],
        rows, title=f"Service overhead, warm 2x2 grid @ {args.refs} "
                    f"refs ({args.repeats} round-trips)"))

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "refs": args.refs,
        "repeats": args.repeats,
        "budget_s": args.budget,
        "seconds": {
            "cold_simulate": round(cold, 4),
            "direct_warm": round(med_direct, 5),
            "service_warm": round(med_service, 5),
        },
        "service_tax_s": round(tax, 5),
        "dedup_hits": dedup_hits,
        "ok": ok,
    }
    (RESULTS_DIR / "bench_service.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {RESULTS_DIR / 'bench_service.json'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

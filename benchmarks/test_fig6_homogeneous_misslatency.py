"""Figure 6 — effect of thread scheduling on miss latency (homogeneous).

Average last-private-level miss latency of each homogeneous mix,
normalized to the workload running in isolation with affinity
scheduling (the paper's stated basis).

Paper shapes asserted:
* consolidation raises miss latency (competition spills into the
  interconnect and memory controllers);
* TPC-W shows the greatest miss-latency increase going from isolation
  to a homogeneous mix under affinity — its large footprint thrashes
  once it must compete for cache space.
"""

import pytest

from _common import HOMOGENEOUS, POLICIES, emit, mean, once, run
from repro.analysis.report import format_series


@pytest.fixture(scope="module")
def data():
    out = {}
    for mix, workload in HOMOGENEOUS:
        base = run(f"iso-{workload}", sharing="shared-4",
                   policy="affinity").vm_metrics[0].mean_miss_latency
        for policy in POLICIES:
            result = run(mix, policy=policy)
            out[(mix, policy)] = mean(
                [vm.mean_miss_latency for vm in result.vm_metrics]) / base
    return out


def test_fig6_homogeneous_misslatency(benchmark, data):
    def build():
        series = {}
        for mix, workload in HOMOGENEOUS:
            series[f"{mix}({workload})"] = {
                policy: data[(mix, policy)] for policy in POLICIES
            }
        return format_series(
            "Figure 6: Homogeneous-mix miss latency (normalized to "
            "isolation w/ affinity)", series)

    emit("fig6_homogeneous_misslatency", once(benchmark, build))

    # consolidation raises (or at best holds) miss latency
    for (mix, policy), value in data.items():
        assert value > 0.85, f"{mix}/{policy} latency dropped implausibly"

    # affinity keeps miss latency lowest for every mix
    for mix, _workload in HOMOGENEOUS:
        assert data[(mix, "affinity")] == min(
            data[(mix, policy)] for policy in POLICIES)

    # TPC-W suffers the largest affinity-policy latency increase
    tpcw = data[("mixA", "affinity")]
    for mix in ("mixB", "mixC", "mixD"):
        assert tpcw >= data[(mix, "affinity")] * 0.95

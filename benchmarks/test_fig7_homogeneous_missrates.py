"""Figure 7 — miss rates of homogeneous mixes relative to isolation.

Per-VM L2 miss rate of Mixes A-D, normalized to each workload running
in isolation (fully shared cache, affinity).

Paper shapes asserted:
* competing for cache resources raises every workload's miss rate;
* round robin (maximum replication) is the worst policy for the
  share-intensive workloads;
* the miss-rate growth explains the latency growth of Figure 6 (the
  two are positively associated across mixes/policies).
"""

import pytest

from _common import HOMOGENEOUS, POLICIES, emit, isolation_baseline, mean, once, run
from repro.analysis.report import format_series


@pytest.fixture(scope="module")
def data():
    out = {}
    for mix, workload in HOMOGENEOUS:
        base = isolation_baseline(workload).miss_rate
        for policy in POLICIES:
            result = run(mix, policy=policy)
            out[(mix, policy)] = mean(
                [vm.miss_rate for vm in result.vm_metrics]) / base
    return out


def test_fig7_homogeneous_missrates(benchmark, data):
    def build():
        series = {}
        for mix, workload in HOMOGENEOUS:
            series[f"{mix}({workload})"] = {
                policy: data[(mix, policy)] for policy in POLICIES
            }
        return format_series(
            "Figure 7: Homogeneous-mix miss rates (normalized to "
            "isolation)", series)

    emit("fig7_homogeneous_missrates", once(benchmark, build))

    # competition raises miss rates
    for (mix, policy), value in data.items():
        assert value >= 0.95, f"{mix}/{policy} miss rate dropped implausibly"

    # RR is the worst policy for the share-intensive workloads
    for mix in ("mixB", "mixC", "mixD"):
        assert data[(mix, "rr")] == max(
            data[(mix, policy)] for policy in POLICIES)

    # affinity minimizes the increase everywhere
    for mix, _workload in HOMOGENEOUS:
        assert data[(mix, "affinity")] == min(
            data[(mix, policy)] for policy in POLICIES)

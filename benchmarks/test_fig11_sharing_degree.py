"""Figure 11 — varying the degree of sharing for heterogeneous mixes.

Miss latency of Mixes 1-9 at shared-2-way, shared-4-way, and
shared-8-way caches under affinity scheduling, normalized to the
shared-4-way isolation latencies (the paper's basis).

Paper shapes asserted:
* TPC-H does best at shared-4-way — one cache per workload gives it
  zero replication and no interference from bigger-footprint
  co-runners; at shared-8-way it must share space and suffers;
* SPECjbb benefits from shared-8-way when combined with TPC-H (the
  flexible capacity helps; TPC-H pressures the cache little).
"""

import pytest

from _common import HETEROGENEOUS, emit, mean, once, run_grid, spec
from repro.analysis.report import format_series

SHARINGS = [("shared-2", "8-LL$"), ("shared-4", "4-LL$"), ("shared-8", "2-LL$")]
WORKLOADS = ("tpcw", "tpch", "specjbb")


@pytest.fixture(scope="module")
def data():
    # One executor grid for the whole figure: 3 isolation baselines plus
    # 9 mixes x 3 sharing degrees, parallel when REPRO_JOBS > 1.
    cells = [
        ((f"iso-{w}",), spec(f"iso-{w}", sharing="shared-4",
                             policy="affinity"))
        for w in WORKLOADS
    ]
    cells += [
        ((mix, label), spec(mix, sharing=sharing, policy="affinity"))
        for mix in HETEROGENEOUS
        for sharing, label in SHARINGS
    ]
    grid = run_grid(cells)
    baselines = {
        w: grid[(f"iso-{w}",)].vm_metrics[0].mean_miss_latency
        for w in WORKLOADS
    }
    out = {}
    for mix in HETEROGENEOUS:
        for _sharing, label in SHARINGS:
            result = grid[(mix, label)]
            for workload in dict.fromkeys(result.workloads):
                vms = result.metrics_for(workload)
                out[(mix, label, workload)] = mean(
                    [vm.mean_miss_latency for vm in vms]) / baselines[workload]
    return out


def test_fig11_sharing_degree(benchmark, data):
    def build():
        series = {}
        for mix in HETEROGENEOUS:
            for _sharing, label in SHARINGS:
                row = {}
                for workload in WORKLOADS:
                    if (mix, label, workload) in data:
                        row[workload] = data[(mix, label, workload)]
                series[f"{mix}/{label}"] = row
        return format_series(
            "Figure 11: Miss latency vs sharing degree (affinity, "
            "normalized to shared-4-way isolation)", series)

    emit("fig11_sharing_degree", once(benchmark, build))

    # TPC-H: shared-4-way (its own cache) beats shared-8-way (sharing
    # with a bigger-footprint workload), averaged over its mixes
    tpch_mixes = ("mix1", "mix2", "mix3", "mix4", "mix5", "mix6")
    own_cache = mean([data[(m, "4-LL$", "tpch")] for m in tpch_mixes])
    shared8 = mean([data[(m, "2-LL$", "tpch")] for m in tpch_mixes])
    assert own_cache < shared8

    # SPECjbb benefits from the flexible 8MB caches when its co-runner
    # is TPC-H (mixes 4-6): shared-8-way <= shared-2-way
    jbb_tpch = ("mix4", "mix5", "mix6")
    jbb8 = mean([data[(m, "2-LL$", "specjbb")] for m in jbb_tpch])
    jbb2 = mean([data[(m, "8-LL$", "specjbb")] for m in jbb_tpch])
    assert jbb8 < jbb2 * 1.05

    # everything stays within a plausible normalized band
    for key, value in data.items():
        assert 0.5 < value < 4.0, key

"""Scaling ablation (Section VII).

"Studying higher degrees of consolidation ... would allow researchers
to accurately forecast behavior even further into the future."  This
bench runs a 16-instance consolidation (64 threads) on a 64-core, 8x8
mesh with shared-4-way caches, alongside the paper's 16-core runs, and
checks whether the 16-core trends survive the 4x scale-up.
"""

import pytest

from _common import emit, mean, once, run
from repro.analysis.report import format_table
from repro.core.mixes import Mix, register_mix
from repro.errors import ConfigurationError

try:
    register_mix(Mix("scale64", (("specjbb", 8), ("tpch", 8))))
except ConfigurationError:
    pass  # already registered in this session


@pytest.fixture(scope="module")
def data():
    out = {}
    for policy in ("affinity", "rr"):
        out[("16-core", policy)] = run("mix5", policy=policy)
        out[("64-core", policy)] = run("scale64", policy=policy,
                                       num_cores=64)
    return out


def test_ablation_scaling(benchmark, data):
    def build():
        rows = []
        for machine in ("16-core", "64-core"):
            for policy in ("affinity", "rr"):
                result = data[(machine, policy)]
                jbb = result.metrics_for("specjbb")
                tpch = result.metrics_for("tpch")
                rows.append([
                    machine, policy,
                    mean([vm.miss_rate for vm in jbb]),
                    mean([vm.miss_rate for vm in tpch]),
                    mean([vm.mean_miss_latency for vm in jbb]),
                    result.chip_summary.mesh_mean_hops,
                ])
        return rows

    rows = once(benchmark, build)
    emit("ablation_scaling", format_table(
        ["Machine", "Policy", "SPECjbb miss rate", "TPC-H miss rate",
         "SPECjbb miss latency", "Mesh mean hops"],
        rows, title="Scaling ablation: 16-core mix5 vs 64-core "
                    "(8x SPECjbb + 8x TPC-H)"))

    by_key = {(r[0], r[1]): r for r in rows}
    # the affinity-beats-RR trend survives the scale-up, for both
    # workloads' miss rates
    for machine in ("16-core", "64-core"):
        assert (by_key[(machine, "rr")][2]
                > by_key[(machine, "affinity")][2]), machine
        assert (by_key[(machine, "rr")][3]
                > by_key[(machine, "affinity")][3]), machine
    # a bigger mesh means longer average routes
    assert (by_key[("64-core", "rr")][5]
            > by_key[("16-core", "rr")][5])

"""Dynamic-scheduling ablation (Section VII).

"We would like to study the effects of schedulers dynamically
adjusting assignments, in response to context-switches and changing
demands of the system."  Three schedulers on the same mix:

* static random (the paper's proxy for an over-committed VMM);
* dynamic random churn (threads re-dealt every interval — real churn);
* dynamic affinity healing (threads migrated back toward their VM's
  dominant cache).

The hypothesis the paper implies: churn costs performance through lost
cache affinity, and a dynamic policy that restores affinity recovers
most of static affinity's benefit.
"""

import pytest

from _common import emit, mean, once, run
from repro.analysis.report import format_table

INTERVAL = 60_000


@pytest.fixture(scope="module")
def data():
    return {
        "static affinity": run("mixC", policy="affinity"),
        "static random": run("mixC", policy="random"),
        "dynamic churn": run("mixC", policy="random", rebind="random",
                             rebind_interval=INTERVAL),
        "dynamic affinity": run("mixC", policy="random", rebind="affinity",
                                rebind_interval=INTERVAL),
    }


def test_ablation_dynamic(benchmark, data):
    def build():
        rows = []
        for label, result in data.items():
            vms = result.vm_metrics
            rows.append([
                label,
                mean([vm.cycles for vm in vms]),
                mean([vm.miss_rate for vm in vms]),
                mean([vm.mean_miss_latency for vm in vms]),
            ])
        return rows

    rows = once(benchmark, build)
    emit("ablation_dynamic", format_table(
        ["Scheduler", "Mean cycles", "Miss rate", "Miss latency"],
        rows, title=f"Dynamic scheduling ablation (mixC, rebalance every "
                    f"{INTERVAL} cycles)"))

    by_label = {row[0]: row for row in rows}
    # churn is the worst configuration: repeated cold caches
    assert by_label["dynamic churn"][1] >= by_label["static random"][1]
    # affinity healing beats continuous churn
    assert by_label["dynamic affinity"][1] < by_label["dynamic churn"][1]
    # and recovers most of the static-affinity benefit: it lands closer
    # to static affinity than churn does
    gap_heal = by_label["dynamic affinity"][1] - by_label["static affinity"][1]
    gap_churn = by_label["dynamic churn"][1] - by_label["static affinity"][1]
    assert gap_heal < gap_churn

"""Table III — machine configuration.

Regenerates the machine-description table from :class:`MachineConfig`
defaults and asserts it matches the paper's fixed parameters.
"""

from _common import emit, once
from repro.analysis.report import format_kv
from repro.machine.config import MachineConfig


def build_table():
    return format_kv("Table III: Machine Configuration",
                     MachineConfig().table3())


def test_table3_machine_config(benchmark):
    table = once(benchmark, build_table)
    emit("table3_machine_config", table)

    assert "16 in-order" in table
    assert "2-D Packet-Switched Mesh" in table
    assert "8KB/1 cycle" in table
    assert "64KB/2 cycles" in table
    assert "16MB/6 cycles" in table
    assert "150 cycles" in table
    assert "RR, Affinity" in table


def test_table3_l2_partitioning(benchmark):
    """The sharing degrees carve the 16 MB into the paper's partitions."""
    from repro.machine.config import SharingDegree

    def partitions():
        return {
            degree.label(): MachineConfig(sharing=degree).l2_geometry().size_bytes
            for degree in SharingDegree
        }

    sizes = once(benchmark, partitions)
    mb = 1024 * 1024
    assert sizes == {"private": mb, "8-LL$": 2 * mb, "4-LL$": 4 * mb,
                     "2-LL$": 8 * mb, "shared": 16 * mb}

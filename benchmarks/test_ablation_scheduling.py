"""Ablations beyond the paper's figures.

Two design-choice studies DESIGN.md calls out:

1. **L2 replacement policy** — the paper's results assume vanilla LRU
   (Section III-B).  How much of the consolidation interference story
   survives under FIFO or random replacement?
2. **Statistical-simulation variability** — per Alameldeen & Wood, the
   run-to-run coefficient of variation should be small relative to the
   effects the figures report (several tens of percent), otherwise the
   shapes would be noise.
"""

import pytest

from _common import emit, mean, once, run, spec
from repro.analysis.report import format_table
from repro.core.variability import replicate


def test_ablation_l2_replacement(benchmark):
    """LRU vs FIFO vs random under the paper's headline contrast
    (SPECjbb homogeneous, affinity vs round robin)."""

    def build():
        rows = []
        for repl in ("lru", "fifo", "random"):
            aff = run("mixC", policy="affinity", l2_replacement=repl)
            rr = run("mixC", policy="rr", l2_replacement=repl)
            aff_cycles = mean([vm.cycles for vm in aff.vm_metrics])
            rr_cycles = mean([vm.cycles for vm in rr.vm_metrics])
            rows.append([repl, aff_cycles, rr_cycles,
                         rr_cycles / aff_cycles])
        return rows

    rows = once(benchmark, build)
    emit("ablation_l2_replacement", format_table(
        ["replacement", "affinity cycles", "rr cycles", "rr/affinity"],
        rows, title="Ablation: L2 replacement policy (mixC)"))

    # the affinity advantage is not an artifact of LRU: it holds for
    # every replacement policy
    for repl, _aff, _rr, ratio in rows:
        assert ratio > 1.05, f"affinity advantage vanished under {repl}"


def test_ablation_variability(benchmark):
    """Alameldeen-Wood check: seed-to-seed variation is small compared
    to the scheduling effects the figures report."""

    def build():
        base = spec("mixC", policy="affinity")
        summary = replicate(base, lambda r: float(mean(
            [vm.cycles for vm in r.vm_metrics])), n=4)
        rr = run("mixC", policy="rr")
        rr_cycles = mean([vm.cycles for vm in rr.vm_metrics])
        return summary, rr_cycles

    summary, rr_cycles = once(benchmark, build)
    emit("ablation_variability", format_table(
        ["metric", "value"],
        [["mean cycles (affinity, 4 seeds)", summary.mean],
         ["std", summary.std],
         ["cov", summary.cov],
         ["95% CI halfwidth", summary.ci95_halfwidth],
         ["rr cycles (1 seed)", rr_cycles],
         ["rr vs affinity", rr_cycles / summary.mean]],
        title="Ablation: run-to-run variability (Alameldeen-Wood)"))

    assert summary.cov < 0.15, "seed noise too large for the methodology"
    # the scheduling effect dwarfs the noise band
    assert rr_cycles > summary.mean + 2 * summary.ci95_halfwidth

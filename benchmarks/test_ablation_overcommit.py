"""Over-commit ablation (Section VII).

The paper's random policy "strives to capture the assignment of
threads to shared-N-way caches that might be seen in an over-committed
virtual machine".  With the over-commit engine we can run the real
thing: two thread contexts per core, quantum-based switching, and
compare the resulting behaviour to the dedicated-core random policy.
"""

import pytest

from _common import emit, mean, once, run
from repro.analysis.report import format_table


@pytest.fixture(scope="module")
def data():
    # affinity packs each VM onto as few cores as the slot limit
    # allows, so raising slots_per_core monotonically raises the real
    # packing degree (random would just spread over the larger slot
    # pool and leave cores idle)
    dedicated = run("mixC", policy="affinity")
    packed2 = run("mixC", policy="affinity", slots_per_core=2)
    packed4 = run("mixC", policy="affinity", slots_per_core=4)
    return dedicated, packed2, packed4


def test_ablation_overcommit(benchmark, data):
    def build():
        rows = []
        for label, result in zip(
            ("dedicated (16 cores)", "2 threads/core", "4 threads/core"),
            data,
        ):
            vms = result.vm_metrics
            rows.append([
                label,
                mean([vm.cycles for vm in vms]),
                mean([vm.miss_rate for vm in vms]),
                mean([vm.mean_miss_latency for vm in vms]),
            ])
        return rows

    rows = once(benchmark, build)
    emit("ablation_overcommit", format_table(
        ["Configuration", "Mean cycles", "Miss rate", "Miss latency"],
        rows, title="Over-commit ablation (mixC, affinity packing)"))

    dedicated, packed2, packed4 = rows
    # time multiplexing costs wall-clock throughput, monotonically
    assert packed2[1] > dedicated[1]
    assert packed4[1] > packed2[1]
    # the miss behaviour stays in a sane band (threads still hit their
    # warm private data between switches)
    assert packed4[2] < dedicated[2] * 2.5

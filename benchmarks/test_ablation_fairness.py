"""Fairness ablation — way-quota partitioning (the conclusion's thesis).

The paper closes: "perhaps a guarantee of apparent workload isolation
... should feasibly extend from functional isolation into performance
isolation."  This bench implements that proposal — per-VM way quotas in
each shared L2 (fair cache partitioning, as in the paper's related
work) — and measures it on the worst interference case the paper
identifies: SPECjbb sharing caches with TPC-W under round robin
(Mixes 7-9).
"""

import pytest

from _common import emit, mean, once, run
from repro.analysis.report import format_table

MIXES = ("mix7", "mix8", "mix9")


@pytest.fixture(scope="module")
def data():
    out = {}
    for mix in MIXES:
        out[(mix, "shared-lru")] = run(mix, policy="rr")
        out[(mix, "vm-quota")] = run(mix, policy="rr", l2_vm_quota=True)
    return out


def _jbb_miss_rate(result):
    return mean([vm.miss_rate for vm in result.metrics_for("specjbb")])


def _jbb_cycles(result):
    return mean([vm.cycles for vm in result.metrics_for("specjbb")])


def _tpcw_cycles(result):
    return mean([vm.cycles for vm in result.metrics_for("tpcw")])


def test_ablation_fairness(benchmark, data):
    def build():
        rows = []
        for mix in MIXES:
            free = data[(mix, "shared-lru")]
            fair = data[(mix, "vm-quota")]
            rows.append([
                mix,
                _jbb_miss_rate(free), _jbb_miss_rate(fair),
                _jbb_cycles(fair) / _jbb_cycles(free),
                _tpcw_cycles(fair) / _tpcw_cycles(free),
            ])
        return rows

    rows = once(benchmark, build)
    emit("ablation_fairness", format_table(
        ["Mix", "SPECjbb miss rate (LRU)", "SPECjbb miss rate (quota)",
         "SPECjbb cycles quota/LRU", "TPC-W cycles quota/LRU"],
        rows, title="Fairness ablation: per-VM way quotas under RR "
                    "(SPECjbb + TPC-W mixes)"))

    for mix, mr_free, mr_fair, jbb_ratio, tpcw_ratio in rows:
        # quotas must not hurt the victim workload
        assert mr_fair <= mr_free * 1.03, mix
        assert jbb_ratio <= 1.03, mix
        # and the cost shifts to (at worst) the aggressor
        assert tpcw_ratio < 1.30, mix

"""Table II — workload statistics.

Reproduces the paper's characterization run: each workload alone on
private last-level caches, measuring the fraction of last-private-level
misses served by cache-to-cache transfers (split clean/dirty) and the
blocks touched.

Paper's values:

=========  =====  ======  ======  ===============
Workload   c2c%   clean%  dirty%  blocks accessed
=========  =====  ======  ======  ===============
TPC-W       15%    84%     16%    1,125 K
SPECjbb     52%    94%      6%      606 K
TPC-H       69%    43%     57%      172 K
SPECweb     37%    93%      7%      986 K
=========  =====  ======  ======  ===============
"""

import pytest

from _common import BENCH_REFS, BENCH_SEED, emit, once
from repro.analysis.report import format_table
from repro.workloads.calibrate import measure_workload_statistics

PAPER = {
    "tpcw": (15, 84, 16, 1_125_000),
    "specjbb": (52, 94, 6, 606_000),
    "tpch": (69, 43, 57, 172_000),
    "specweb": (37, 93, 7, 986_000),
}

ORDER = ["tpcw", "specjbb", "tpch", "specweb"]


@pytest.fixture(scope="module")
def stats():
    return {
        name: measure_workload_statistics(name, measured_refs=BENCH_REFS,
                                          seed=BENCH_SEED)
        for name in ORDER
    }


def test_table2_workload_stats(benchmark, stats):
    def build():
        headers = ["Workload", "c2c% (paper)", "clean% (paper)",
                   "dirty% (paper)", "blocks touched (paper)"]
        rows = []
        for name in ORDER:
            s = stats[name]
            p = PAPER[name]
            rows.append([
                name,
                f"{100 * s.c2c_fraction:.0f} ({p[0]})",
                f"{100 * s.clean_fraction:.0f} ({p[1]})",
                f"{100 * s.dirty_fraction:.0f} ({p[2]})",
                f"{s.blocks_touched_fullscale:,} ({p[3]:,})",
            ])
        return format_table(headers, rows, title="Table II: Workload Statistics")

    table = once(benchmark, build)
    emit("table2_workload_stats", table)

    # --- quantitative bands (±8 points on c2c, ±10 on clean/dirty) ---
    for name in ORDER:
        s, p = stats[name], PAPER[name]
        assert abs(100 * s.c2c_fraction - p[0]) <= 8, (
            f"{name} c2c {100 * s.c2c_fraction:.0f}% vs paper {p[0]}%")
        assert abs(100 * s.clean_fraction - p[1]) <= 10, (
            f"{name} clean {100 * s.clean_fraction:.0f}% vs paper {p[1]}%")


def test_table2_orderings(stats):
    """The contrasts the paper draws from Table II."""
    # c2c intensity: TPC-H > SPECjbb > SPECweb > TPC-W
    assert (stats["tpch"].c2c_fraction > stats["specjbb"].c2c_fraction
            > stats["specweb"].c2c_fraction > stats["tpcw"].c2c_fraction)
    # TPC-H is the only workload whose transfers are mostly dirty
    assert stats["tpch"].dirty_fraction > 0.4
    for name in ("tpcw", "specjbb", "specweb"):
        assert stats[name].dirty_fraction < 0.25
    # footprint ordering: TPC-W > SPECweb > SPECjbb > TPC-H
    touched = {name: stats[name].blocks_touched for name in ORDER}
    assert (touched["tpcw"] > touched["specweb"]
            > touched["specjbb"] > touched["tpch"])

"""Figure 3 — miss rates for workloads run in isolation.

Same sweep as Figure 2, reporting the per-VM L2 miss rate normalized to
the fully-shared affinity run.

Paper shapes asserted:
* misses grow as the last-level cache seen by each thread shrinks;
* at shared-4-way, round robin has the worst miss rate (it replicates
  read-shared data in every cache it spreads threads across);
* affinity minimizes the miss-rate growth for the share-intensive
  workloads (SPECjbb, TPC-H).
"""

import pytest

from _common import ISOLATION_SHARINGS, emit, isolation_baseline, once, run
from repro.analysis.report import format_series

WORKLOADS = ["tpcw", "specjbb", "tpch", "specweb"]
POLICIES = ["rr", "affinity"]


@pytest.fixture(scope="module")
def data():
    out = {}
    for workload in WORKLOADS:
        base = isolation_baseline(workload).miss_rate
        for sharing, label in ISOLATION_SHARINGS:
            for policy in POLICIES:
                vm = run(f"iso-{workload}", sharing=sharing,
                         policy=policy).vm_metrics[0]
                out[(workload, label, policy)] = vm.miss_rate / base
    return out


def test_fig3_isolated_missrates(benchmark, data):
    def build():
        series = {}
        for workload in WORKLOADS:
            for _sharing, label in ISOLATION_SHARINGS:
                row = series.setdefault(f"{workload}/{label}", {})
                for policy in POLICIES:
                    row[policy] = data[(workload, label, policy)]
        return format_series(
            "Figure 3: Isolated miss rates (normalized to fully shared "
            "16MB, affinity)", series)

    emit("fig3_isolated_missrates", once(benchmark, build))

    # capacity: private miss rate >= fully shared, every workload
    for workload in WORKLOADS:
        assert (data[(workload, "private", "affinity")]
                >= data[(workload, "shared", "affinity")])

    # replication: RR's miss rate at shared-4-way beats affinity's for
    # the share-intensive workloads
    for workload in ("specjbb", "tpch", "specweb"):
        assert (data[(workload, "4-LL$", "rr")]
                > data[(workload, "4-LL$", "affinity")])

    # TPC-H affinity at 4-LL$ is nearly flat vs the 16MB cache
    assert data[("tpch", "4-LL$", "affinity")] < 1.3

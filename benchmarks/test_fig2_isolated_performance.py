"""Figure 2 — performance of workloads run in isolation.

One 4-thread instance on the 16-core chip (12 cores idle), sweeping the
L2 sharing degree (shared, 2-LL$, 4-LL$, private) and the RR/affinity
schedulers.  Runtime is normalized to the fully-shared affinity run.

Paper shapes asserted:
* performance degrades as per-thread LLC capacity shrinks;
* round robin beats affinity for TPC-W at partial sharing (affinity
  concentrates its large footprint into a fraction of the cache);
* TPC-H with affinity stays near its fully-shared performance at
  shared-4-way (its working set fits one 4 MB partition).
"""

import pytest

from _common import ISOLATION_SHARINGS, emit, isolation_baseline, once, run
from repro.analysis.report import format_series

WORKLOADS = ["tpcw", "specjbb", "tpch", "specweb"]
POLICIES = ["rr", "affinity"]


@pytest.fixture(scope="module")
def data():
    out = {}
    for workload in WORKLOADS:
        base = isolation_baseline(workload).cycles
        for sharing, label in ISOLATION_SHARINGS:
            for policy in POLICIES:
                vm = run(f"iso-{workload}", sharing=sharing,
                         policy=policy).vm_metrics[0]
                out[(workload, label, policy)] = vm.cycles / base
    return out


def test_fig2_isolated_performance(benchmark, data):
    def build():
        series = {}
        for workload in WORKLOADS:
            for sharing, label in ISOLATION_SHARINGS:
                row = series.setdefault(f"{workload}/{label}", {})
                for policy in POLICIES:
                    row[policy] = data[(workload, label, policy)]
        return format_series(
            "Figure 2: Isolated performance (runtime normalized to fully "
            "shared 16MB, affinity)", series)

    emit("fig2_isolated_performance", once(benchmark, build))

    # capacity pressure: private is never faster than fully shared
    for workload in WORKLOADS:
        for policy in POLICIES:
            assert (data[(workload, "private", policy)]
                    >= data[(workload, "shared", policy)] * 0.98)

    # monotone degradation for the big-footprint workloads (affinity)
    for workload in ("tpcw", "specweb"):
        seq = [data[(workload, label, "affinity")]
               for _s, label in ISOLATION_SHARINGS]
        assert seq[-1] > seq[0], f"{workload} should degrade toward private"

    # TPC-W: affinity limits capacity -> RR is the better scheduler
    assert (data[("tpcw", "4-LL$", "rr")]
            < data[("tpcw", "4-LL$", "affinity")])

    # TPC-H: affinity at shared-4-way stays close to fully shared
    assert data[("tpch", "4-LL$", "affinity")] < 1.10

    # TPC-H: round robin wrecks its sharing at partial degrees
    assert (data[("tpch", "4-LL$", "rr")]
            > data[("tpch", "4-LL$", "affinity")] * 1.1)


def test_fig2_interconnect_claim(benchmark):
    """Section V-A's quantitative aside: "Interconnect latency is 20%
    lower for round robin scheduling than for affinity scheduling"
    (isolated TPC-W — affinity concentrates its traffic on one
    quadrant's links)."""

    def build():
        out = {}
        for policy in ("rr", "affinity"):
            vm = run("iso-tpcw", sharing="shared-4",
                     policy=policy).vm_metrics[0]
            out[policy] = vm.mean_network_per_miss
        return out

    net = once(benchmark, build)
    emit("fig2_interconnect_claim", format_series(
        "Isolated TPC-W: interconnect cycles per L1 miss",
        {"iso-tpcw/4-LL$": net}))
    # paper says ~20% lower under RR; accept 10-35%
    reduction = 1.0 - net["rr"] / net["affinity"]
    assert 0.10 < reduction < 0.35, f"measured reduction {reduction:.2f}"

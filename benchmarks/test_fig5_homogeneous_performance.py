"""Figure 5 — single-workload performance for homogeneous mixes.

Four copies of the same workload fill the chip (Mixes A-D, shared-4-way
L2s); runtime per instance is normalized to the workload running alone
with the fully shared 16 MB cache, for all four scheduling policies.

Paper shapes asserted:
* affinity is the best policy for every homogeneous mix;
* SPECjbb and SPECweb show significant degradation under round robin;
* the hybrid and random policies land between affinity and RR for the
  share-intensive workloads.
"""

import pytest

from _common import (
    HOMOGENEOUS,
    POLICIES,
    emit,
    isolation_baseline,
    mean,
    once,
    run,
)
from repro.analysis.report import format_series


@pytest.fixture(scope="module")
def data():
    out = {}
    for mix, workload in HOMOGENEOUS:
        base = isolation_baseline(workload).cycles
        for policy in POLICIES:
            result = run(mix, policy=policy)
            out[(mix, policy)] = mean(
                [vm.cycles for vm in result.vm_metrics]) / base
    return out


def test_fig5_homogeneous_performance(benchmark, data):
    def build():
        series = {}
        for mix, workload in HOMOGENEOUS:
            series[f"{mix}({workload})"] = {
                policy: data[(mix, policy)] for policy in POLICIES
            }
        return format_series(
            "Figure 5: Homogeneous-mix performance (normalized runtime vs "
            "isolation, shared-4-way)", series)

    emit("fig5_homogeneous_performance", once(benchmark, build))

    # consolidation never speeds a workload up
    for value in data.values():
        assert value > 0.95

    # affinity is the best policy for every mix
    for mix, _workload in HOMOGENEOUS:
        best = min(POLICIES, key=lambda policy: data[(mix, policy)])
        assert best == "affinity", f"{mix}: expected affinity, got {best}"

    # SPECjbb and SPECweb degrade significantly under round robin
    assert data[("mixC", "rr")] > data[("mixC", "affinity")] * 1.15
    assert data[("mixD", "rr")] > data[("mixD", "affinity")] * 1.10

    # hybrid sits between affinity and rr for the share-heavy mixes
    for mix in ("mixB", "mixC"):
        assert (data[(mix, "affinity")] < data[(mix, "rr-aff")]
                < data[(mix, "rr")])

"""Extension: the full pairwise interference matrix.

The paper's mix matrix omits every SPECweb pairing ("Due to issues
with the workload driver, SPECweb could not be combined in the
heterogeneous mixes") and samples the remaining pairs through Mixes
1-9.  With synthetic workload models there is no driver, so this bench
completes the picture: for every ordered pair (victim, aggressor) it
runs 2 victim + 2 aggressor instances under round robin on shared-4-way
caches and reports the victim's slowdown relative to isolation — the
paper's interference question in its purest form.
"""

import pytest

from _common import emit, isolation_baseline, mean, once, run, spec
from repro.analysis.report import format_table
from repro.core.experiment import run_experiment
from repro.core.mixes import Mix, register_mix
from repro.errors import ConfigurationError

WORKLOADS = ("tpcw", "tpch", "specjbb", "specweb")


def _pair_mix(a: str, b: str) -> str:
    if a == b:
        name = f"pair-{a}"
        components = ((a, 4),)
    else:
        first, second = sorted((a, b))
        name = f"pair-{first}-{second}"
        components = ((first, 2), (second, 2))
    try:
        register_mix(Mix(name, components))
    except ConfigurationError:
        pass  # already registered this session
    return name


@pytest.fixture(scope="module")
def matrix():
    baselines = {w: isolation_baseline(w).cycles for w in WORKLOADS}
    out = {}
    for victim in WORKLOADS:
        for aggressor in WORKLOADS:
            result = run(_pair_mix(victim, aggressor), policy="rr")
            vms = result.metrics_for(victim)
            out[(victim, aggressor)] = mean(
                [vm.cycles for vm in vms]) / baselines[victim]
    return out


def test_extension_interference_matrix(benchmark, matrix):
    def build():
        rows = []
        for victim in WORKLOADS:
            rows.append([victim] + [matrix[(victim, aggressor)]
                                    for aggressor in WORKLOADS])
        return rows

    rows = once(benchmark, build)
    emit("extension_interference_matrix", format_table(
        ["victim \\ aggressor"] + list(WORKLOADS), rows,
        title="Interference matrix: victim slowdown vs isolation "
              "(2+2 instances, RR, shared-4-way) — includes the "
              "SPECweb pairings the paper could not run"))

    # every pairing slows the victim down (consolidation never helps)
    for key, slowdown in matrix.items():
        assert slowdown > 0.95, key

    # TPC-H is the most fragile victim under RR (loses its sharing)
    worst_victims = {
        victim: max(matrix[(victim, aggressor)] for aggressor in WORKLOADS)
        for victim in WORKLOADS
    }
    assert worst_victims["tpch"] == max(worst_victims.values())

    # TPC-W is among the harsher aggressors for SPECjbb (capacity)
    jbb_row = {agg: matrix[("specjbb", agg)] for agg in WORKLOADS}
    assert jbb_row["tpcw"] >= jbb_row["tpch"] * 0.95

    # the new data: SPECweb pairings exist and are sane
    for aggressor in WORKLOADS:
        assert 0.95 < matrix[("specweb", aggressor)] < 3.0

#!/usr/bin/env python
"""QoS control-loop overhead micro-benchmark.

The QoS hook runs inside the engines' hot loop (one ``on_step`` per
event-loop step), so its cost must stay negligible next to the
simulation itself.  The clean measurement is ``static-equal`` vs. the
legacy ``l2_vm_quota`` static path: the two simulations are
byte-identical (enforced by ``tests/qos/test_determinism.py``), so any
wall-clock difference on the 2x2 smoke grid (two Table IV mixes x two
seeds, fully shared L2) is purely the sensing/decide/actuate loop.
That overhead is checked against a budget (default 5%).

The dynamic controllers (``missrate-prop``, ``ucp``) are timed too,
against the uncontrolled run, but only informationally: they *change*
the simulation (quota moves alter victim selection and miss patterns),
so their delta mixes control cost with simulated-behaviour drift.

Artifacts land next to the other bench outputs:
``benchmarks/results/bench_qos.json`` holds per-policy wall-clock
seconds, overhead fractions, and the pass/fail verdict; the rendered
table also goes to ``benchmarks/results/bench_qos.txt`` and stdout.

Run it directly (it is not part of the pytest bench suite — wall-clock
assertions are too machine-dependent for CI)::

    PYTHONPATH=src python benchmarks/bench_qos.py [--refs N] [--budget F]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.analysis.report import format_table
from repro.core.experiment import (
    ExperimentSpec,
    clear_result_cache,
    run_experiment,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: 2x2 smoke grid: a heterogeneous and a balanced mix, two seeds
GRID = [("mix7", 1), ("mix7", 2), ("mix5", 1), ("mix5", 2)]

#: (label, spec overrides) — the first two rows are the budgeted pair
CONFIGS = [
    ("static-quota", dict(l2_vm_quota=True)),
    ("static-equal", dict(qos_policy="static-equal")),
    ("uncontrolled", {}),
    ("missrate-prop", dict(qos_policy="missrate-prop")),
    ("ucp", dict(qos_policy="ucp")),
]


def time_cell(overrides: dict, mix: str, seed: int,
              refs: int, epoch: int) -> float:
    """Wall-clock seconds to simulate one grid cell once."""
    clear_result_cache()
    start = time.perf_counter()
    run_experiment(
        ExperimentSpec(mix=mix, sharing="shared", policy="rr",
                       seed=seed, measured_refs=refs,
                       warmup_refs=refs // 4, qos_epoch=epoch,
                       **overrides),
        use_cache=False,
    )
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--refs", type=int, default=1500,
                        help="measured references per thread")
    parser.add_argument("--epoch", type=int, default=10_000,
                        help="control period in simulated cycles")
    parser.add_argument("--budget", type=float, default=0.05,
                        help="allowed control-loop overhead fraction")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing rounds per grid cell")
    args = parser.parse_args(argv)

    # Pairing is at the finest granularity the bench allows: within one
    # (cell, round) all five configs run back-to-back, and the config
    # order reverses on alternating iterations so slow drift (load,
    # thermal) cancels instead of biasing one side.  Overheads are the
    # median over every per-(cell, round) ratio — 4 cells x repeats
    # samples — which is far more robust to load spikes than comparing
    # whole-grid aggregates.
    samples: list = []  # per (cell, round): {label: seconds}
    for rep in range(args.repeats):
        for index, (mix, seed) in enumerate(GRID):
            order = CONFIGS if (rep + index) % 2 == 0 else CONFIGS[::-1]
            timing = {
                label: time_cell(overrides, mix, seed, args.refs, args.epoch)
                for label, overrides in order
            }
            samples.append(timing)
    med = {label: statistics.median(s[label] for s in samples)
           for label, _ in CONFIGS}

    def ratio(label: str, baseline: str) -> float:
        return statistics.median(
            s[label] / s[baseline] for s in samples) - 1.0

    # the budgeted comparison: identical simulations, loop on vs. off
    overhead = ratio("static-equal", "static-quota")
    ok = overhead < args.budget

    rows = [
        ["static-quota", round(med["static-quota"], 3), "baseline", "-"],
        ["static-equal", round(med["static-equal"], 3),
         f"{overhead:+.1%}", "ok" if ok else "OVER"],
        ["uncontrolled", round(med["uncontrolled"], 3), "-", "-"],
    ]
    for label in ("missrate-prop", "ucp"):
        rows.append([label, round(med[label], 3),
                     f"{ratio(label, 'uncontrolled'):+.1%}", "info"])

    table = format_table(
        ["Policy", "Cell wall (s)", "Delta", f"Budget {args.budget:.0%}"],
        rows, title=f"QoS overhead, 2x2 grid @ {args.refs} refs "
                    f"({len(samples)} paired samples)")
    print(table)

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "grid": [list(cell) for cell in GRID],
        "refs": args.refs,
        "epoch": args.epoch,
        "budget": args.budget,
        "seconds": {label: round(t, 4) for label, t in med.items()},
        "control_loop_overhead": round(overhead, 4),
        "ok": ok,
    }
    (RESULTS_DIR / "bench_qos.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    (RESULTS_DIR / "bench_qos.txt").write_text(table + "\n")
    print(f"\nartifacts: {RESULTS_DIR / 'bench_qos.json'}")
    if not ok:
        print("error: control-loop overhead exceeds budget", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

"""Table I — workload descriptions.

Regenerates the paper's workload-description table from the profile
library and checks the prose fields match the paper's setup.
"""

from _common import emit, once
from repro.analysis.report import format_table
from repro.workloads.library import WORKLOADS


def build_table():
    headers = ["Workload", "Description", "Setup", "Execution"]
    order = ["specjbb", "specweb", "tpch", "tpcw"]
    rows = []
    for name in order:
        profile = WORKLOADS[name]
        rows.append([name, profile.description, profile.setup,
                     profile.execution])
    return format_table(headers, rows, title="Table I: Workload Descriptions")


def test_table1_descriptions(benchmark):
    table = once(benchmark, build_table)
    emit("table1_descriptions", table)

    assert "SPECjbb".lower() in table.lower()
    assert "Zeus" in table                      # SPECweb's server
    assert "DB2" in table                       # TPC-H / TPC-W database
    assert "six warehouses" in table            # SPECjbb setup
    assert "Query #12" in table                 # TPC-H execution
    assert "25 web transactions" in table       # TPC-W execution
    assert "300 HTTP requests" in table         # SPECweb execution

#!/usr/bin/env python3
"""Assemble benchmarks/results/*.txt into one REPORT.md.

Run after the benchmark suite:

    pytest benchmarks/ --benchmark-only
    python benchmarks/build_report.py          # writes benchmarks/REPORT.md

The report orders sections like the paper (tables, then figures, then
the extensions) so a reviewer can read the whole reproduction top to
bottom.
"""

from __future__ import annotations

import sys
from datetime import datetime, timezone
from pathlib import Path

RESULTS = Path(__file__).resolve().parent / "results"
REPORT = Path(__file__).resolve().parent / "REPORT.md"

ORDER = [
    ("Tables", ["table1_descriptions", "table2_workload_stats",
                "table3_machine_config", "table4_mixes"]),
    ("Isolation figures", ["fig2_isolated_performance",
                           "fig2_interconnect_claim",
                           "fig3_isolated_missrates",
                           "fig4_isolated_misslatency"]),
    ("Homogeneous mixes", ["fig5_homogeneous_performance",
                           "fig6_homogeneous_misslatency",
                           "fig7_homogeneous_missrates"]),
    ("Heterogeneous mixes", ["fig8_heterogeneous_performance",
                             "fig9_heterogeneous_missrates",
                             "fig10_heterogeneous_misslatency",
                             "fig11_sharing_degree"]),
    ("Snapshots", ["fig12_replication", "fig13_occupancy"]),
    ("Calibration & appendix", ["noc_calibration", "noc_zero_load",
                                "appendix_locality",
                                "appendix_breakdown"]),
    ("Ablations & extensions", ["ablation_scheduling",
                                "ablation_variability",
                                "ablation_overcommit",
                                "ablation_dynamic",
                                "ablation_start_times",
                                "ablation_phases",
                                "ablation_scaling",
                                "ablation_fairness",
                                "ablation_dircache",
                                "extension_interference_matrix"]),
]


def main() -> int:
    if not RESULTS.exists():
        print("no benchmarks/results directory; run the bench suite first",
              file=sys.stderr)
        return 1
    lines = [
        "# Reproduction report",
        "",
        f"Generated {datetime.now(timezone.utc).isoformat(timespec='seconds')} "
        "from benchmarks/results/.",
        "",
    ]
    seen = set()
    for section, names in ORDER:
        block = []
        for name in names:
            path = RESULTS / f"{name}.txt"
            if path.exists():
                seen.add(path.name)
                block.append("```")
                block.append(path.read_text().rstrip())
                block.append("```")
                block.append("")
        if block:
            lines.append(f"## {section}")
            lines.append("")
            lines.extend(block)
    leftovers = sorted(
        p.name for p in RESULTS.glob("*.txt") if p.name not in seen
    )
    if leftovers:
        lines.append("## Other results")
        lines.append("")
        for name in leftovers:
            lines.append("```")
            lines.append((RESULTS / name).read_text().rstrip())
            lines.append("```")
            lines.append("")
    REPORT.write_text("\n".join(lines) + "\n")
    print(f"wrote {REPORT} ({len(seen) + len(leftovers)} result blocks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

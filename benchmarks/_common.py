"""Shared infrastructure for the table/figure reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs
the experiments, renders the same rows/series the paper reports, writes
them to ``benchmarks/results/<name>.txt`` (and stdout), and asserts the
paper's qualitative shape.

Environment knobs
-----------------
``REPRO_REFS``
    Measured references per thread (default 12000 for benches — enough
    for stable shapes at the default 1/16 scale; raise it for smoother
    curves).
``REPRO_SEED``
    Base seed (default 1).
``REPRO_JOBS``
    Worker processes for grid helpers (default 1 = serial).
``REPRO_STORE``
    Directory for a persistent result store.  When set, every
    experiment the benches run is written there and re-runs (across
    processes and sessions) simulate nothing.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List

from repro.core.executor import SweepExecutor
from repro.core.experiment import ExperimentResult, ExperimentSpec, run_experiment
from repro.core.metrics import VMMetrics
from repro.core.store import ResultStore, set_default_store

BENCH_REFS = int(os.environ.get("REPRO_REFS", "12000"))
BENCH_WARMUP = BENCH_REFS // 2
BENCH_SEED = int(os.environ.get("REPRO_SEED", "1"))
BENCH_JOBS = int(os.environ.get("REPRO_JOBS", "1"))

if os.environ.get("REPRO_STORE"):
    # Give the whole bench session a persistent default store: every
    # run_experiment call (direct or via the executor) reads and
    # feeds the same disk tier.
    set_default_store(ResultStore(os.environ["REPRO_STORE"]))

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: canonical paper display names
PRETTY = {"tpcw": "TPC-W", "tpch": "TPC-H", "specjbb": "SPECjbb",
          "specweb": "SPECweb"}

#: the four sharing configurations of Figures 2-3, paper labels
ISOLATION_SHARINGS = [("shared", "shared"), ("shared-8", "2-LL$"),
                      ("shared-4", "4-LL$"), ("private", "private")]

HOMOGENEOUS = [("mixA", "tpcw"), ("mixB", "tpch"), ("mixC", "specjbb"),
               ("mixD", "specweb")]

HETEROGENEOUS = [f"mix{i}" for i in range(1, 10)]

POLICIES = ["rr", "affinity", "rr-aff", "random"]


def spec(mix: str, sharing: str = "shared-4", policy: str = "affinity",
         **overrides) -> ExperimentSpec:
    params = dict(mix=mix, sharing=sharing, policy=policy, seed=BENCH_SEED,
                  measured_refs=BENCH_REFS, warmup_refs=BENCH_WARMUP)
    params.update(overrides)
    return ExperimentSpec(**params)


def run(mix: str, sharing: str = "shared-4", policy: str = "affinity",
        **overrides) -> ExperimentResult:
    return run_experiment(spec(mix, sharing, policy, **overrides))


def run_grid(cells: List[tuple]) -> Dict[tuple, ExperimentResult]:
    """Run many ``(key, spec)`` cells through the sweep executor.

    Honours ``REPRO_JOBS`` (parallel fan-out) and the session store; a
    cell failure raises after the whole grid has been attempted, so one
    bad configuration doesn't waste the rest of an expensive grid.
    """
    from repro.errors import SweepError

    outcomes = SweepExecutor(jobs=BENCH_JOBS).run(cells)
    failures = {o.key: o.error for o in outcomes if not o.ok}
    if failures:
        raise SweepError(failures)
    return {o.key: o.result for o in outcomes}


def isolation_baseline(workload: str, sharing: str = "shared",
                       policy: str = "affinity") -> VMMetrics:
    """The paper's normalization run: one instance, 16 MB fully shared
    (or the stated sharing), affinity."""
    return run(f"iso-{workload}", sharing=sharing, policy=policy).vm_metrics[0]


def mean(values: List[float]) -> float:
    return sum(values) / len(values)


def workload_means(result: ExperimentResult) -> Dict[str, Dict[str, float]]:
    """Per-workload instance-averaged raw metrics of one run."""
    out: Dict[str, Dict[str, float]] = {}
    for workload in dict.fromkeys(result.workloads):
        vms = result.metrics_for(workload)
        out[workload] = {
            "cycles": mean([vm.cycles for vm in vms]),
            "miss_rate": mean([vm.miss_rate for vm in vms]),
            "miss_latency": mean([vm.mean_miss_latency for vm in vms]),
        }
    return out


def emit(name: str, text: str) -> Path:
    """Print a rendered table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
    return path


def once(benchmark, fn):
    """Run a figure-regeneration exactly once under pytest-benchmark.

    The experiment cache makes repeated rounds meaningless (they would
    time dict lookups), so every bench uses a single round.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)

"""Figure 12 — percentage of replicated lines in the last level cache.

End-of-run residency snapshots of the homogeneous mixes (the paper
samples at 500M instructions) on shared-4-way caches for round robin,
RR-affinity and random scheduling, plus the private configuration as
the maximum-replication reference.  Affinity is omitted, as in the
paper: with each workload owning one cache it cannot replicate.

Paper shapes asserted:
* round robin replicates the most among the shared-4-way policies;
* the hybrid and random policies replicate less than round robin;
* SPECjbb and SPECweb are the replication-heavy workloads;
* private caches give (near-)maximal replication.
"""

import pytest

from _common import HOMOGENEOUS, emit, once, run
from repro.analysis.replication import measure_replication
from repro.analysis.report import format_series

POLICIES = ["rr", "rr-aff", "random"]


@pytest.fixture(scope="module")
def data():
    out = {}
    for mix, _workload in HOMOGENEOUS:
        for policy in POLICIES:
            result = run(mix, policy=policy)
            out[(mix, policy)] = measure_replication(
                result.residency).replicated_fraction
        result = run(mix, sharing="private", policy="rr")
        out[(mix, "private")] = measure_replication(
            result.residency).replicated_fraction
    return out


def test_fig12_replication(benchmark, data):
    def build():
        series = {}
        for mix, workload in HOMOGENEOUS:
            series[f"{mix}({workload})"] = {
                policy: 100 * data[(mix, policy)]
                for policy in POLICIES + ["private"]
            }
        return format_series(
            "Figure 12: % replicated lines in the LLC (homogeneous "
            "mixes, snapshot at end of run)", series, precision=1)

    emit("fig12_replication", once(benchmark, build))

    for mix, _workload in HOMOGENEOUS:
        # RR replicates the most among the shared-4-way policies
        assert data[(mix, "rr")] >= data[(mix, "rr-aff")]
        assert data[(mix, "rr")] >= data[(mix, "random")] * 0.95
        # private is the maximum-replication reference
        assert data[(mix, "private")] >= data[(mix, "rr")] * 0.9

    # SPECjbb and SPECweb replicate more than TPC-W under RR
    assert data[("mixC", "rr")] > data[("mixA", "rr")]
    assert data[("mixD", "rr")] > data[("mixA", "rr")]

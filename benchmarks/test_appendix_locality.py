"""Appendix: workload locality characterization.

Not a numbered paper figure — a supplementary table in the spirit of
Table II: the miss-rate curve (fully-associative LRU, from exact reuse
distances) and working-set growth of each synthetic workload model.
This is the locality evidence behind the capacity results of Figures
2/3/11: TPC-H saturates at a fraction of the LLC while TPC-W's curve
is still falling at full capacity.
"""

import pytest

from _common import BENCH_SEED, emit, once
from repro.analysis.characterize import reuse_profile, working_set_curve
from repro.analysis.report import format_table
from repro.sim.rng import RngFactory
from repro.workloads.library import WORKLOADS

#: capacities as fractions of the scaled per-thread LLC share
CAPACITIES = (256, 1024, 4096, 16384)
REFS = 12_000


@pytest.fixture(scope="module")
def profiles():
    out = {}
    for name in sorted(WORKLOADS):
        from repro.workloads.generator import ThreadTrace

        trace = ThreadTrace(WORKLOADS[name].scaled(1 / 16), 0, 0,
                            RngFactory(BENCH_SEED).stream(f"loc/{name}"))
        blocks = [next(trace)[0] for _ in range(REFS)]
        out[name] = (reuse_profile(blocks),
                     working_set_curve(blocks, [1000, 4000]))
    return out


def test_appendix_locality(benchmark, profiles):
    def build():
        rows = []
        for name, (profile, ws_curve) in sorted(profiles.items()):
            ws = dict(ws_curve)
            rows.append(
                [name]
                + [profile.miss_rate(c) for c in CAPACITIES]
                + [profile.unique_blocks, ws.get(4000, 0.0)]
            )
        return rows

    rows = once(benchmark, build)
    emit("appendix_locality", format_table(
        ["Workload"] + [f"MR@{c}" for c in CAPACITIES]
        + ["Unique blocks", "WS(4000 refs)"],
        rows, title="Appendix: per-thread LRU miss-rate curves and "
                    "working sets (scaled models)"))

    by_name = {row[0]: row for row in rows}
    # miss-rate curves are monotone non-increasing in capacity
    for name, row in by_name.items():
        rates = row[1:1 + len(CAPACITIES)]
        assert list(rates) == sorted(rates, reverse=True), name
    # TPC-H's curve saturates earlier than TPC-W's
    assert by_name["tpch"][2] < by_name["tpcw"][2]
    # footprint ordering visible in unique blocks touched
    assert by_name["tpcw"][-2] > by_name["tpch"][-2]

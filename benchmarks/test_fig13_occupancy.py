"""Figure 13 — snapshot of cache utilization per workload.

End-of-run occupancy of each shared-4-way cache, split by workload,
for the heterogeneous mixes under round robin scheduling (the paper's
setup: RR exaggerates co-location, snapshot at 500M instructions).

Paper shapes asserted:
* TPC-H occupies less than its fair share (25%) in almost all caches;
* copies of the same workload share capacity equally;
* occupancies per domain sum to ~1 with the domain well utilized.
"""

import pytest

from _common import HETEROGENEOUS, emit, once, run
from repro.analysis.occupancy import measure_occupancy
from repro.analysis.report import format_table


@pytest.fixture(scope="module")
def data():
    out = {}
    for mix in HETEROGENEOUS:
        result = run(mix, policy="rr")
        snap = measure_occupancy(result.occupancy, result.domain_lines)
        names = [vm.workload for vm in result.vm_metrics]
        out[mix] = (snap, names)
    return out


def test_fig13_occupancy(benchmark, data):
    def build():
        rows = []
        for mix in HETEROGENEOUS:
            snap, names = data[mix]
            for vm_id, workload in enumerate(names):
                rows.append([mix, f"vm{vm_id}", workload,
                             snap.vm_mean_share(vm_id)])
        return format_table(
            ["Mix", "VM", "Workload", "mean LLC share"], rows,
            title="Figure 13: LLC occupancy per workload (RR, "
                  "shared-4-way, end-of-run snapshot)")

    emit("fig13_occupancy", once(benchmark, build))

    for mix in HETEROGENEOUS:
        snap, names = data[mix]
        # every domain's shares sum to ~1 and the cache is well used
        for domain in range(snap.num_domains):
            total = sum(snap.shares[domain].values())
            assert total == pytest.approx(1.0, abs=1e-9)
            assert snap.utilization(domain) > 0.85

        # copies of the same workload split capacity evenly (< 6 pts)
        by_workload = {}
        for vm_id, workload in enumerate(names):
            by_workload.setdefault(workload, []).append(
                snap.vm_mean_share(vm_id))
        for workload, shares in by_workload.items():
            assert max(shares) - min(shares) < 0.06, (mix, workload)

    # "TPC-H workloads occupy less than their fair share (25%)": our
    # model reproduces this against SPECjbb (mixes 4-6) and lands
    # at-or-near fair share against TPC-W (mixes 1-3) — see
    # EXPERIMENTS.md for the deviation note.  Assert the reproduced
    # part plus a never-a-hog bound everywhere.
    tpch_shares = []
    for mix in HETEROGENEOUS:
        snap, names = data[mix]
        tpch_shares.extend(
            snap.vm_mean_share(vm_id)
            for vm_id, workload in enumerate(names) if workload == "tpch"
        )
    assert tpch_shares, "no TPC-H instances found in the mixes"
    assert max(tpch_shares) < 0.30
    for mix in ("mix4", "mix5", "mix6"):
        snap, names = data[mix]
        for vm_id, workload in enumerate(names):
            if workload == "tpch":
                assert snap.vm_mean_share(vm_id) < 0.26, (mix, vm_id)

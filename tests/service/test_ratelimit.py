"""Tests for the per-client token-bucket rate limiter."""

import pytest

from repro.errors import ConfigurationError
from repro.service.ratelimit import TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_disabled_when_rate_nonpositive():
    bucket = TokenBucket(0.0)
    assert not bucket.enabled
    for _ in range(1000):
        allowed, retry = bucket.allow("anyone")
        assert allowed and retry == 0.0


def test_burst_then_reject():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
    assert all(bucket.allow("c")[0] for _ in range(3))
    allowed, retry = bucket.allow("c")
    assert not allowed
    assert retry == pytest.approx(1.0)


def test_refill_restores_tokens():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
    bucket.allow("c")
    bucket.allow("c")
    assert not bucket.allow("c")[0]
    clock.advance(0.5)  # one token at 2/s
    assert bucket.allow("c")[0]
    assert not bucket.allow("c")[0]


def test_clients_are_independent():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=1, clock=clock)
    assert bucket.allow("a")[0]
    assert not bucket.allow("a")[0]
    assert bucket.allow("b")[0]


def test_retry_after_shrinks_as_bucket_refills():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=1, clock=clock)
    bucket.allow("c")
    _, first = bucket.allow("c")
    clock.advance(0.25)
    _, second = bucket.allow("c")
    assert second < first


def test_tokens_cap_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
    clock.advance(100)
    assert bucket.allow("c")[0]
    assert bucket.allow("c")[0]
    assert not bucket.allow("c")[0]


def test_invalid_burst_rejected():
    with pytest.raises(ConfigurationError):
        TokenBucket(rate=1.0, burst=0)

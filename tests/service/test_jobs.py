"""Tests for the durable priority job queue and its journal."""

import json

import pytest

from repro.errors import ServiceError
from repro.service.jobs import Job, JobQueue, JobState, job_key_of

from .conftest import tiny_cells, tiny_spec


def make_job(priority=10, **overrides):
    return Job.create(tiny_cells(**overrides), priority=priority)


class TestJob:
    def test_create_assigns_id_and_key(self):
        job = make_job()
        assert job.job_id
        assert job.job_key == job_key_of(job.cells)
        assert job.state == JobState.SUBMITTED

    def test_job_key_ignores_order_and_labels(self):
        cells = tiny_cells()
        relabeled = [(("x", i), spec)
                     for i, (_key, spec) in enumerate(reversed(cells))]
        assert job_key_of(cells) == job_key_of(relabeled)

    def test_job_key_differs_for_different_specs(self):
        assert job_key_of(tiny_cells()) != job_key_of(tiny_cells(seed=2))

    def test_empty_job_rejected(self):
        with pytest.raises(ServiceError):
            Job.create([])

    def test_round_trip_codec(self):
        job = make_job(priority=3)
        job.state = JobState.DONE
        job.result_keys = ["abc"]
        clone = Job.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone.job_id == job.job_id
        assert clone.cells == job.cells
        assert clone.priority == 3
        assert clone.state == JobState.DONE
        assert clone.result_keys == ["abc"]

    def test_summary_hides_spec_payloads(self):
        summary = make_job().summary()
        assert summary["cells"] == 4


class TestQueueOrdering:
    def test_fifo_within_priority(self):
        queue = JobQueue()
        first = queue.submit(make_job())
        second = queue.submit(make_job(seed=2))
        assert queue.claim().job_id == first.job_id
        assert queue.claim().job_id == second.job_id
        assert queue.claim() is None

    def test_lower_priority_value_runs_first(self):
        queue = JobQueue()
        queue.submit(make_job(priority=10))
        urgent = queue.submit(Job.create(tiny_cells(seed=3), priority=1))
        assert queue.claim().job_id == urgent.job_id

    def test_claim_counts_attempts_and_marks_running(self):
        queue = JobQueue()
        queue.submit(make_job())
        job = queue.claim()
        assert job.state == JobState.RUNNING
        assert job.attempts == 1
        assert queue.running_count == 1
        assert queue.pending_count == 0

    def test_requeue_and_reclaim(self):
        queue = JobQueue()
        submitted = queue.submit(make_job())
        job = queue.claim()
        queue.mark_failed(job.job_id, "boom")
        queue.requeue(job.job_id)
        again = queue.claim()
        assert again.job_id == submitted.job_id
        assert again.attempts == 2

    def test_duplicate_id_rejected(self):
        queue = JobQueue()
        job = queue.submit(make_job())
        with pytest.raises(ServiceError):
            queue.submit(job)

    def test_unknown_job_rejected(self):
        with pytest.raises(ServiceError):
            JobQueue().mark_done("nope", [], 0, 0)


class TestJournalReplay:
    def test_done_jobs_replay_terminal(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        queue = JobQueue(journal)
        job = queue.submit(make_job())
        queue.claim()
        queue.mark_done(job.job_id, ["k1"], cells_cached=1,
                        cells_simulated=3)
        queue.close()

        replayed = JobQueue(journal)
        recovered = replayed.get(job.job_id)
        assert recovered.state == JobState.DONE
        assert recovered.result_keys == ["k1"]
        assert recovered.cells_simulated == 3
        assert replayed.recovered == 0
        assert replayed.claim() is None

    def test_running_jobs_reenqueue(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        queue = JobQueue(journal)
        pending = queue.submit(make_job())
        crashed = queue.submit(make_job(seed=2))
        queue.claim()  # `pending` starts running, then we "crash"
        queue.close()

        replayed = JobQueue(journal)
        assert replayed.recovered == 2
        ids = {replayed.claim().job_id, replayed.claim().job_id}
        assert ids == {pending.job_id, crashed.job_id}
        # the lost attempt is still on the books
        assert replayed.get(pending.job_id).attempts == 2

    def test_quarantined_jobs_stay_quarantined(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        queue = JobQueue(journal)
        job = queue.submit(make_job())
        queue.claim()
        queue.quarantine(job.job_id, "poison")
        queue.close()

        replayed = JobQueue(journal)
        assert replayed.get(job.job_id).state == JobState.QUARANTINED
        assert replayed.claim() is None

    def test_torn_trailing_line_skipped(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        queue = JobQueue(journal)
        job = queue.submit(make_job())
        queue.close()
        with open(journal, "a") as handle:
            handle.write('{"event": "update", "job_id": "' + job.job_id)

        replayed = JobQueue(journal)
        assert replayed.torn_lines == 1
        assert replayed.get(job.job_id).state == JobState.SUBMITTED
        assert replayed.claim().job_id == job.job_id

    def test_unknown_schema_line_skipped(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        journal.write_text(json.dumps({
            "schema": 999, "event": "submit", "job": {},
        }) + "\n")
        replayed = JobQueue(journal)
        assert replayed.torn_lines == 1
        assert replayed.jobs() == []

    def test_seq_continues_after_replay(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        queue = JobQueue(journal)
        first = queue.submit(make_job())
        queue.close()

        replayed = JobQueue(journal)
        second = replayed.submit(make_job(seed=2))
        assert second.seq > first.seq


class TestTelemetry:
    def test_queue_depth_gauge(self):
        from repro.obs import Telemetry

        telemetry = Telemetry()
        queue = JobQueue(telemetry=telemetry)
        queue.submit(make_job())
        assert telemetry.gauges["service.queue_depth"].value == 1
        queue.claim()
        assert telemetry.gauges["service.queue_depth"].value == 0


def test_memory_only_queue_survives_nothing(tmp_path):
    queue = JobQueue()
    queue.submit(make_job())
    assert queue.journal_path is None


def test_spec_payload_round_trips_exactly():
    spec = tiny_spec(sharing="shared-8", policy="rr-aff")
    job = Job.create([(("only",), spec)])
    clone = Job.from_dict(job.to_dict())
    assert clone.cells[0][1] == spec
    assert clone.cells[0][0] == ("only",)

"""Tests for the open-loop Poisson load generator."""

import pytest

from repro.bench.loadgen import (
    LoadgenConfig,
    LoadgenReport,
    _host_port,
    percentile,
    run_loadgen,
    saturation_sweep,
)
from repro.bench.records import load_bench_file
from repro.errors import ReproError
from repro.service import ServiceServer


class TestPercentile:
    def test_exact_on_known_samples(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 50) == 3.0
        assert percentile(values, 100) == 5.0
        assert percentile(values, 25) == 2.0

    def test_interpolates_between_samples(self):
        assert percentile([0.0, 1.0], 50) == pytest.approx(0.5)
        assert percentile([0.0, 10.0], 90) == pytest.approx(9.0)

    def test_order_does_not_matter(self):
        assert percentile([5.0, 1.0, 3.0], 50) == 3.0

    def test_degenerate_inputs(self):
        assert percentile([], 99) == 0.0
        assert percentile([7.0], 99) == 7.0

    def test_rejects_bad_q(self):
        with pytest.raises(ReproError):
            percentile([1.0], 0)
        with pytest.raises(ReproError):
            percentile([1.0], 101)


class TestConfig:
    def test_url_parsing(self):
        assert _host_port("http://127.0.0.1:8765") == ("127.0.0.1", 8765)
        assert _host_port("http://localhost:80/") == ("localhost", 80)
        with pytest.raises(ReproError):
            _host_port("localhost")  # no port

    @pytest.mark.parametrize("bad", [
        dict(rate=0.0), dict(rate=-1.0), dict(duration=0.0),
        dict(warm_fraction=1.5), dict(warm_fraction=-0.1), dict(pool=0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ReproError):
            LoadgenConfig(url="http://h:1", **bad)

    def test_report_metrics_and_record_shape(self):
        config = LoadgenConfig(url="http://h:1", rate=10.0, duration=1.0)
        report = LoadgenReport(config=config, submitted=10, completed=9,
                               shed=1, elapsed=1.0,
                               latencies=[0.01] * 9,
                               warm_latencies=[0.01] * 9)
        metrics = report.metrics()
        assert metrics["achieved_jobs_per_sec"] == pytest.approx(9.0)
        assert metrics["sustained"] == 1.0
        assert metrics["p99_ms"] == pytest.approx(10.0)
        record = report.to_record(extra_params={"workers": 3})
        assert record.target == "service"
        assert record.params["workers"] == 3
        assert record.metrics["shed"] == 1.0

    def test_not_sustained_below_ninety_percent(self):
        config = LoadgenConfig(url="http://h:1", rate=10.0, duration=1.0)
        report = LoadgenReport(config=config, submitted=10, completed=8,
                               elapsed=1.0, latencies=[0.01] * 8)
        assert not report.sustained


class TestLiveRuns:
    @pytest.fixture
    def server(self):
        server = ServiceServer(port=0, concurrency=2).start_in_thread()
        yield server
        server.shutdown()

    def test_warm_open_loop_run(self, server, tmp_path):
        config = LoadgenConfig(
            url=f"http://{server.host}:{server.port}",
            rate=25.0, duration=1.0, warm_fraction=1.0, pool=2,
            refs=300, seed=3, timeout=60.0)
        report = run_loadgen(config)
        assert report.submitted > 0
        assert report.completed == report.submitted
        assert report.failed == 0 and report.shed == 0
        assert len(report.latencies) == report.completed
        assert report.warm_latencies and not report.cold_latencies
        metrics = report.metrics()
        assert 0 < metrics["p50_ms"] <= metrics["p99_ms"]

        # the record validates against the bench schema on disk
        from repro.bench.records import append_records
        path, = append_records(tmp_path, [report.to_record(quick=True)])
        payload = load_bench_file(path)
        assert path.name == "BENCH_service.json"
        assert payload["records"][0]["bench"] == "service-loadgen"

    def test_mixed_run_simulates_cold_cells(self, server):
        config = LoadgenConfig(
            url=f"http://{server.host}:{server.port}",
            rate=10.0, duration=1.0, warm_fraction=0.5, pool=2,
            refs=300, seed=4, timeout=60.0)
        report = run_loadgen(config)
        assert report.completed == report.submitted
        assert report.cold_latencies  # seeded mix always draws cold

    def test_saturation_sweep_returns_one_report_per_rate(self, server):
        base = LoadgenConfig(
            url=f"http://{server.host}:{server.port}",
            rate=1.0, duration=0.6, warm_fraction=1.0, pool=2,
            refs=300, seed=5, timeout=60.0)
        reports = saturation_sweep(base.url, [10.0, 20.0], base=base)
        assert [r.config.rate for r in reports] == [10.0, 20.0]
        assert all(r.completed == r.submitted for r in reports)
        # priming happened once: the sweep's later runs reuse the pool
        assert reports[0].config.prime and not reports[1].config.prime

    def test_sweep_requires_rates(self, server):
        with pytest.raises(ReproError):
            saturation_sweep(f"http://{server.host}:{server.port}", [])

"""End-to-end acceptance tests for the simulation service.

The ISSUE's acceptance scenario, verbatim: start a server, submit the
same 2x2 sweep twice from two different clients — the first run
simulates, the second returns byte-identical results from the store
with zero cells executed and ``/metrics`` reports the dedup hit.  Then
kill the server without warning and check a restart recovers every
journaled job.
"""

import json

from repro.service import ServiceClient

from .conftest import tiny_cells


def sweep_specs():
    """A 2x2 sweep: {private, shared-4} x {rr, affinity}."""
    return [spec for _key, spec in tiny_cells()]


class TestDedupAcrossClients:
    def test_second_submission_is_served_from_the_store(self, make_server):
        server = make_server()
        url = f"http://127.0.0.1:{server.port}"
        alice = ServiceClient(url, client_id="alice")
        bob = ServiceClient(url, client_id="bob")

        first = alice.submit(sweep_specs(), priority=5)
        first = alice.wait(first["job_id"])
        assert first["state"] == "done"
        assert first["cells_simulated"] == 4
        assert len(first["result_keys"]) == 4

        second = bob.submit(sweep_specs(), priority=5)
        second = bob.wait(second["job_id"])
        assert second["state"] == "done"
        assert second["cells_simulated"] == 0
        assert sorted(second["result_keys"]) == sorted(
            first["result_keys"])

        # byte-identical payloads straight from the store
        for key in first["result_keys"]:
            alice_raw = json.dumps(alice.result(key, decode=False),
                                   sort_keys=True)
            bob_raw = json.dumps(bob.result(key, decode=False),
                                 sort_keys=True)
            assert alice_raw == bob_raw

        metrics = alice.metrics()
        assert metrics["counters"]["service.dedup_hits"] >= 1
        assert metrics["counters"]["executor.simulated"] == 4

    def test_decoded_results_are_equal_objects(self, make_server):
        server = make_server()
        url = f"http://127.0.0.1:{server.port}"
        client = ServiceClient(url)
        job = client.wait(client.submit(sweep_specs())["job_id"])
        again = client.wait(client.submit(sweep_specs())["job_id"])
        for key_a, key_b in zip(sorted(job["result_keys"]),
                                sorted(again["result_keys"])):
            assert client.result(key_a) == client.result(key_b)


class TestCrashRecovery:
    def test_kill_and_restart_recovers_journaled_jobs(self, tmp_path,
                                                      make_server):
        journal = tmp_path / "journal.jsonl"
        store_dir = tmp_path / "store"

        first = make_server(store=store_dir, journal=journal)
        first.scheduler.paused = True  # jobs are admitted but never run
        client = ServiceClient(f"http://127.0.0.1:{first.port}",
                               client_id="doomed")
        one = client.submit(sweep_specs())
        two = client.submit([spec for _key, spec in tiny_cells(seed=2)])
        first.abort()  # kill -9: no drain, no goodbye

        second = make_server(store=store_dir, journal=journal)
        assert second.queue.recovered == 2
        client = ServiceClient(f"http://127.0.0.1:{second.port}",
                               client_id="patient")
        done_one = client.wait(one["job_id"])
        done_two = client.wait(two["job_id"])
        assert done_one["state"] == "done"
        assert done_two["state"] == "done"
        assert len(done_one["result_keys"]) == 4
        assert client.result(done_one["result_keys"][0]) is not None

    def test_crash_mid_run_costs_only_the_lost_attempt(self, tmp_path,
                                                       make_server):
        journal = tmp_path / "journal.jsonl"
        store_dir = tmp_path / "store"

        first = make_server(store=store_dir, journal=journal)
        client = ServiceClient(f"http://127.0.0.1:{first.port}")
        job = client.submit(sweep_specs())
        done = client.wait(job["job_id"])
        first.abort()

        # restart: the finished job replays terminal, nothing re-runs
        second = make_server(store=store_dir, journal=journal)
        assert second.queue.recovered == 0
        client = ServiceClient(f"http://127.0.0.1:{second.port}")
        replayed = client.job(job["job_id"])
        assert replayed["state"] == "done"
        assert replayed["result_keys"] == done["result_keys"]
        # and the store still serves the results across the restart
        assert client.result(done["result_keys"][0]) is not None
